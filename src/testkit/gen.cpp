#include "rcr/testkit/gen.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rcr::testkit {

namespace {

void append_unique(std::vector<double>& out, double candidate, double original) {
  if (candidate == original) return;
  for (double v : out)
    if (v == candidate) return;
  out.push_back(candidate);
}

}  // namespace

// ---------------------------------------------------------------------------
// Rendering.

std::string show_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string show_vec(const Vec& v, std::size_t max_entries) {
  std::ostringstream os;
  os.precision(12);
  os << "vec[" << v.size() << "] {";
  const std::size_t n = std::min(v.size(), max_entries);
  for (std::size_t i = 0; i < n; ++i) os << (i == 0 ? "" : ", ") << v[i];
  if (v.size() > n) os << ", ...";
  os << "}";
  return os.str();
}

std::string show_cvec(const sig::CVec& v, std::size_t max_entries) {
  std::ostringstream os;
  os.precision(12);
  os << "cvec[" << v.size() << "] {";
  const std::size_t n = std::min(v.size(), max_entries);
  for (std::size_t i = 0; i < n; ++i)
    os << (i == 0 ? "" : ", ") << "(" << v[i].real() << ", " << v[i].imag()
       << ")";
  if (v.size() > n) os << ", ...";
  os << "}";
  return os.str();
}

std::string show_matrix(const num::Matrix& m, std::size_t max_dim) {
  std::ostringstream os;
  os.precision(12);
  os << "matrix " << m.rows() << "x" << m.cols() << " {";
  const std::size_t r = std::min(m.rows(), max_dim);
  const std::size_t c = std::min(m.cols(), max_dim);
  for (std::size_t i = 0; i < r; ++i) {
    os << (i == 0 ? "" : "; ") << "[";
    for (std::size_t j = 0; j < c; ++j)
      os << (j == 0 ? "" : ", ") << m(i, j);
    if (m.cols() > c) os << ", ...";
    os << "]";
  }
  if (m.rows() > r) os << "; ...";
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Shrink primitives.

std::vector<double> shrink_double(double v) {
  std::vector<double> out;
  if (v == 0.0) return out;
  append_unique(out, 0.0, v);
  if (!std::isfinite(v)) return out;  // NaN/inf: zero is the only candidate
  // Every further candidate has strictly smaller magnitude, so greedy
  // shrinking cannot cycle; halving stops proposing below 1e-3 so descents
  // terminate instead of crawling through denormals.
  if (std::fabs(v) > 1.0) {
    append_unique(out, v < 0.0 ? -1.0 : 1.0, v);
    if (std::fabs(std::trunc(v)) < std::fabs(v))
      append_unique(out, std::trunc(v), v);
    append_unique(out, v / 2.0, v);
  } else if (std::fabs(v) > 1e-3) {
    append_unique(out, v / 2.0, v);
  }
  return out;
}

std::vector<std::size_t> shrink_size(std::size_t n, std::size_t lo) {
  std::vector<std::size_t> out;
  if (n <= lo) return out;
  out.push_back(lo);
  const std::size_t half = std::max(lo, n / 2);
  if (half != lo && half != n) out.push_back(half);
  if (n - 1 != lo && n - 1 != half) out.push_back(n - 1);
  return out;
}

std::vector<Vec> shrink_vec(const Vec& v, std::size_t min_len,
                            std::size_t max_pointwise) {
  std::vector<Vec> out;
  if (v.size() > min_len) {
    const std::size_t keep = std::max(min_len, v.size() / 2);
    if (keep < v.size()) {
      out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(keep));
      out.emplace_back(v.end() - static_cast<std::ptrdiff_t>(keep), v.end());
      Vec drop_last(v.begin(), v.end() - 1);
      if (drop_last.size() >= min_len) out.push_back(std::move(drop_last));
    }
  }
  const std::size_t n = std::min(v.size(), max_pointwise);
  for (std::size_t i = 0; i < n; ++i) {
    for (double candidate : shrink_double(v[i])) {
      Vec simpler = v;
      simpler[i] = candidate;
      out.push_back(std::move(simpler));
    }
  }
  return out;
}

std::vector<num::Matrix> shrink_square_matrix(const num::Matrix& m,
                                              std::size_t min_dim,
                                              std::size_t max_pointwise) {
  std::vector<num::Matrix> out;
  const std::size_t n = m.rows();
  if (n > min_dim && n == m.cols()) {
    num::Matrix smaller(n - 1, n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i)
      for (std::size_t j = 0; j + 1 < n; ++j) smaller(i, j) = m(i, j);
    out.push_back(std::move(smaller));
  }
  std::size_t budget = max_pointwise;
  for (std::size_t i = 0; i < m.rows() && budget > 0; ++i) {
    for (std::size_t j = 0; j < m.cols() && budget > 0; ++j) {
      for (double candidate : shrink_double(m(i, j))) {
        num::Matrix simpler = m;
        simpler(i, j) = candidate;
        out.push_back(std::move(simpler));
      }
      if (!shrink_double(m(i, j)).empty()) --budget;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scalars and vectors.

Gen<double> gen_double(double lo, double hi) {
  Gen<double> g;
  g.sample = [lo, hi](num::Rng& rng) { return rng.uniform(lo, hi); };
  g.shrink = [lo, hi](const double& v) {
    std::vector<double> out;
    for (double c : shrink_double(v))
      if (c >= lo && c <= hi) out.push_back(c);
    return out;
  };
  g.show = [](const double& v) { return show_double(v); };
  return g;
}

Gen<double> gen_log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || !(lo <= hi))
    throw std::invalid_argument("gen_log_uniform: need 0 < lo <= hi");
  Gen<double> g;
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  g.sample = [log_lo, log_hi](num::Rng& rng) {
    return std::exp(rng.uniform(log_lo, log_hi));
  };
  g.shrink = [lo, hi](const double& v) {
    // Shrink toward lo in log space: each candidate halves the exponent
    // distance, so descents terminate and stay inside [lo, hi].
    std::vector<double> out;
    if (v > lo) {
      out.push_back(lo);
      const double mid = std::exp(0.5 * (std::log(lo) + std::log(v)));
      if (mid > lo && mid < v) out.push_back(mid);
    }
    (void)hi;
    return out;
  };
  g.show = [](const double& v) { return show_double(v); };
  return g;
}

Gen<std::size_t> gen_size(std::size_t lo, std::size_t hi) {
  Gen<std::size_t> g;
  g.sample = [lo, hi](num::Rng& rng) {
    return static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(lo), static_cast<int>(hi)));
  };
  g.shrink = [lo](const std::size_t& v) { return shrink_size(v, lo); };
  g.show = [](const std::size_t& v) { return std::to_string(v); };
  return g;
}

Gen<Vec> gen_vec(std::size_t min_len, std::size_t max_len, double lo,
                 double hi) {
  Gen<Vec> g;
  g.sample = [min_len, max_len, lo, hi](num::Rng& rng) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
        static_cast<int>(min_len), static_cast<int>(max_len)));
    return rng.uniform_vec(n, lo, hi);
  };
  g.shrink = [min_len](const Vec& v) { return shrink_vec(v, min_len); };
  g.show = [](const Vec& v) { return show_vec(v); };
  return g;
}

Gen<sig::CVec> gen_cvec(std::size_t min_len, std::size_t max_len,
                        double amplitude) {
  Gen<sig::CVec> g;
  g.sample = [min_len, max_len, amplitude](num::Rng& rng) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
        static_cast<int>(min_len), static_cast<int>(max_len)));
    sig::CVec out(n);
    for (auto& v : out)
      v = {rng.uniform(-amplitude, amplitude),
           rng.uniform(-amplitude, amplitude)};
    return out;
  };
  g.shrink = [min_len](const sig::CVec& v) {
    std::vector<sig::CVec> out;
    if (v.size() > min_len) {
      const std::size_t keep = std::max(min_len, v.size() / 2);
      if (keep < v.size()) {
        out.emplace_back(v.begin(),
                         v.begin() + static_cast<std::ptrdiff_t>(keep));
        out.emplace_back(v.end() - static_cast<std::ptrdiff_t>(keep), v.end());
      }
    }
    const std::size_t n = std::min<std::size_t>(v.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] != std::complex<double>(0.0, 0.0)) {
        sig::CVec simpler = v;
        simpler[i] = {0.0, 0.0};
        out.push_back(std::move(simpler));
      }
    }
    return out;
  };
  g.show = [](const sig::CVec& v) { return show_cvec(v); };
  return g;
}

// ---------------------------------------------------------------------------
// Matrices.

namespace {

num::Matrix random_dense(std::size_t rows, std::size_t cols, num::Rng& rng) {
  num::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  return m;
}

std::size_t draw_dim(std::size_t lo, std::size_t hi, num::Rng& rng) {
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<int>(lo), static_cast<int>(hi)));
}

}  // namespace

Gen<num::Matrix> gen_matrix(std::size_t min_dim, std::size_t max_dim) {
  Gen<num::Matrix> g;
  g.sample = [min_dim, max_dim](num::Rng& rng) {
    const std::size_t n = draw_dim(min_dim, max_dim, rng);
    return random_dense(n, n, rng);
  };
  g.shrink = [min_dim](const num::Matrix& m) {
    return shrink_square_matrix(m, min_dim);
  };
  g.show = [](const num::Matrix& m) { return show_matrix(m); };
  return g;
}

Gen<num::Matrix> gen_matrix_rect(std::size_t min_dim, std::size_t max_dim) {
  Gen<num::Matrix> g;
  g.sample = [min_dim, max_dim](num::Rng& rng) {
    const std::size_t r = draw_dim(min_dim, max_dim, rng);
    const std::size_t c = draw_dim(min_dim, max_dim, rng);
    return random_dense(r, c, rng);
  };
  g.shrink = [min_dim](const num::Matrix& m) {
    std::vector<num::Matrix> out;
    if (m.rows() > min_dim) {
      num::Matrix fewer_rows(m.rows() - 1, m.cols());
      for (std::size_t i = 0; i + 1 < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
          fewer_rows(i, j) = m(i, j);
      out.push_back(std::move(fewer_rows));
    }
    if (m.cols() > min_dim) {
      num::Matrix fewer_cols(m.rows(), m.cols() - 1);
      for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j + 1 < m.cols(); ++j)
          fewer_cols(i, j) = m(i, j);
      out.push_back(std::move(fewer_cols));
    }
    std::size_t budget = 16;
    for (std::size_t i = 0; i < m.rows() && budget > 0; ++i)
      for (std::size_t j = 0; j < m.cols() && budget > 0; ++j)
        if (m(i, j) != 0.0) {
          num::Matrix simpler = m;
          simpler(i, j) = 0.0;
          out.push_back(std::move(simpler));
          --budget;
        }
    return out;
  };
  g.show = [](const num::Matrix& m) { return show_matrix(m); };
  return g;
}

Gen<num::Matrix> gen_symmetric(std::size_t min_dim, std::size_t max_dim) {
  Gen<num::Matrix> g = gen_matrix(min_dim, max_dim);
  auto base_sample = g.sample;
  g.sample = [base_sample](num::Rng& rng) {
    num::Matrix m = base_sample(rng);
    m.symmetrize();
    return m;
  };
  auto base_shrink = g.shrink;
  g.shrink = [base_shrink](const num::Matrix& m) {
    std::vector<num::Matrix> out = base_shrink(m);
    for (num::Matrix& c : out)
      if (c.square()) c.symmetrize();
    return out;
  };
  return g;
}

Gen<num::Matrix> gen_psd(std::size_t min_dim, std::size_t max_dim) {
  Gen<num::Matrix> g;
  g.sample = [min_dim, max_dim](num::Rng& rng) {
    const std::size_t n = draw_dim(min_dim, max_dim, rng);
    const std::size_t rank = draw_dim(1, n, rng);
    num::Matrix m(n, n);
    for (std::size_t r = 0; r < rank; ++r) {
      const Vec u = rng.normal_vec(n);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) m(i, j) += u[i] * u[j];
    }
    m.symmetrize();  // remove the accumulated round-off asymmetry
    return m;
  };
  // Shrinking an arbitrary PSD matrix entry-wise breaks PSD-ness; only the
  // dimension shrink (principal submatrix -- still PSD) is sound.
  g.shrink = [min_dim](const num::Matrix& m) {
    std::vector<num::Matrix> out;
    if (m.rows() > min_dim) {
      num::Matrix smaller(m.rows() - 1, m.cols() - 1);
      for (std::size_t i = 0; i + 1 < m.rows(); ++i)
        for (std::size_t j = 0; j + 1 < m.cols(); ++j)
          smaller(i, j) = m(i, j);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  g.show = [](const num::Matrix& m) { return show_matrix(m); };
  return g;
}

Gen<num::Matrix> gen_spd_well_conditioned(std::size_t min_dim,
                                          std::size_t max_dim) {
  Gen<num::Matrix> g;
  g.sample = [min_dim, max_dim](num::Rng& rng) {
    const std::size_t n = draw_dim(min_dim, max_dim, rng);
    const num::Matrix a = random_dense(n, n, rng);
    num::Matrix m = num::multiply_abt(a, a);
    for (std::size_t i = 0; i < n; ++i)
      m(i, i) += static_cast<double>(n);
    return m;
  };
  g.shrink = [min_dim](const num::Matrix& m) {
    std::vector<num::Matrix> out;
    if (m.rows() > min_dim) {
      num::Matrix smaller(m.rows() - 1, m.cols() - 1);
      for (std::size_t i = 0; i + 1 < m.rows(); ++i)
        for (std::size_t j = 0; j + 1 < m.cols(); ++j)
          smaller(i, j) = m(i, j);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  g.show = [](const num::Matrix& m) { return show_matrix(m); };
  return g;
}

num::Matrix random_orthogonal(std::size_t n, num::Rng& rng) {
  // Modified Gram-Schmidt on a random Gaussian matrix; a vanishing pivot is
  // replaced by a canonical basis vector (probability ~0 anyway).
  num::Matrix q = random_dense(n, n, rng);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += q(i, j) * q(i, k);
      for (std::size_t i = 0; i < n; ++i) q(i, j) -= proj * q(i, k);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += q(i, j) * q(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (std::size_t i = 0; i < n; ++i) q(i, j) = (i == j % n) ? 1.0 : 0.0;
      norm = 1.0;
    }
    for (std::size_t i = 0; i < n; ++i) q(i, j) /= norm;
  }
  return q;
}

num::Matrix matrix_with_spectrum(const Vec& singular_values, num::Rng& rng) {
  const std::size_t n = singular_values.size();
  const num::Matrix q1 = random_orthogonal(n, rng);
  const num::Matrix q2 = random_orthogonal(n, rng);
  num::Matrix scaled = q1;  // scale columns of Q1 by the spectrum
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) scaled(i, j) *= singular_values[j];
  return num::multiply_abt(scaled, q2);
}

Gen<num::Matrix> gen_near_singular(std::size_t min_dim, std::size_t max_dim,
                                   double log_cond_min, double log_cond_max) {
  Gen<num::Matrix> g;
  g.sample = [=](num::Rng& rng) {
    const std::size_t n = draw_dim(std::max<std::size_t>(2, min_dim),
                                   std::max<std::size_t>(2, max_dim), rng);
    const double log_cond = rng.uniform(log_cond_min, log_cond_max);
    Vec spectrum(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t =
          n == 1 ? 0.0
                 : static_cast<double>(i) / static_cast<double>(n - 1);
      spectrum[i] = std::pow(10.0, -log_cond * t);  // 1 down to 10^-log_cond
    }
    return matrix_with_spectrum(spectrum, rng);
  };
  // Entry-wise shrinks would destroy the conditioning structure that makes
  // the counterexample interesting; no shrinking beyond showing the value.
  g.show = [](const num::Matrix& m) { return show_matrix(m); };
  return g;
}

// ---------------------------------------------------------------------------
// Signal fixtures.

Vec canonical_signal(std::size_t n, std::uint64_t seed) {
  num::Rng rng(seed);
  Vec signal(n, 0.0);
  const int tones = 3;
  for (int t = 0; t < tones; ++t) {
    const double freq = rng.uniform(0.02, 0.45);
    const double amp = rng.uniform(0.3, 1.0);
    const double phase = rng.uniform(0.0, 6.283185307179586);
    for (std::size_t i = 0; i < n; ++i)
      signal[i] += amp * std::sin(6.283185307179586 * freq *
                                      static_cast<double>(i) +
                                  phase);
  }
  for (std::size_t i = 0; i < n; ++i) signal[i] += rng.normal(0.0, 0.05);
  return signal;
}

std::string show_stft_fixture(const StftFixture& f) {
  std::ostringstream os;
  os << "stft fixture: signal len " << f.signal.size() << ", window len "
     << f.config.window.size() << ", hop " << f.config.hop << ", fft_size "
     << f.config.fft_size << ", convention "
     << (f.config.convention == sig::StftConvention::kTimeInvariant ? "TI"
                                                                    : "STI")
     << ", padding "
     << (f.config.padding == sig::FramePadding::kCircular ? "circular"
                                                          : "truncate")
     << "\n  signal: " << show_vec(f.signal);
  return os.str();
}

Gen<StftFixture> gen_stft_fixture(std::size_t max_signal_len,
                                  std::size_t max_window_len) {
  Gen<StftFixture> g;
  g.sample = [max_signal_len, max_window_len](num::Rng& rng) {
    StftFixture f;
    const sig::WindowKind kinds[] = {
        sig::WindowKind::kRectangular, sig::WindowKind::kHann,
        sig::WindowKind::kHamming, sig::WindowKind::kBlackman,
        sig::WindowKind::kGaussian};
    const auto kind = kinds[rng.uniform_int(0, 4)];
    // Window length: power-of-two-ish in [4, max_window_len].
    std::size_t lg = 4;
    const int doublings = rng.uniform_int(0, 3);
    for (int d = 0; d < doublings && lg * 2 <= max_window_len; ++d) lg *= 2;
    f.config.window = sig::make_window(kind, lg);
    // Hop divides the window length (COLA-friendly).
    const std::size_t hops[] = {lg / 4, lg / 2, lg};
    f.config.hop = std::max<std::size_t>(1, hops[rng.uniform_int(0, 2)]);
    f.config.fft_size = lg * (rng.bernoulli(0.3) ? 2 : 1);
    f.config.convention = rng.bernoulli(0.5)
                              ? sig::StftConvention::kTimeInvariant
                              : sig::StftConvention::kSimplifiedTimeInvariant;
    f.config.padding = sig::FramePadding::kCircular;
    const std::size_t min_len = lg;
    const std::size_t n = min_len + static_cast<std::size_t>(rng.uniform_int(
                                        0, static_cast<int>(
                                               max_signal_len - min_len)));
    f.signal = canonical_signal(n, static_cast<std::uint64_t>(
                                       rng.uniform_int(1, 1 << 30)));
    return f;
  };
  g.shrink = [](const StftFixture& f) {
    std::vector<StftFixture> out;
    // Halve the signal while it stays at least one window long.
    if (f.signal.size() / 2 >= f.config.window.size()) {
      StftFixture shorter = f;
      shorter.signal.resize(f.signal.size() / 2);
      out.push_back(std::move(shorter));
    }
    if (f.signal.size() > f.config.window.size()) {
      StftFixture shorter = f;
      shorter.signal.resize(f.signal.size() - 1);
      out.push_back(std::move(shorter));
    }
    // Zero signal entries (keeps all config structure).
    const std::size_t n = std::min<std::size_t>(f.signal.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
      if (f.signal[i] != 0.0) {
        StftFixture simpler = f;
        simpler.signal[i] = 0.0;
        out.push_back(std::move(simpler));
      }
    }
    return out;
  };
  g.show = [](const StftFixture& f) { return show_stft_fixture(f); };
  return g;
}

}  // namespace rcr::testkit
