#include "rcr/testkit/golden.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rcr::testkit {

std::uint64_t signature_hash(const double* data, std::size_t n) {
  // FNV-1a 64 over the IEEE-754 bytes, little-end first.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    __builtin_memcpy(&bits, &data[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

GoldenEntry make_golden_entry(const sig::CVec& values,
                              std::size_t max_samples) {
  GoldenEntry e;
  e.count = values.size();
  e.signature = signature_hash(
      reinterpret_cast<const double*>(values.data()), 2 * values.size());
  double sum_sq = 0.0;
  for (const auto& z : values) {
    const double mag = std::abs(z);
    sum_sq += mag * mag;
    if (mag > e.max_abs) e.max_abs = mag;
  }
  e.l2 = std::sqrt(sum_sq);
  if (!values.empty() && max_samples > 0) {
    const std::size_t n_samples = std::min(max_samples, values.size());
    for (std::size_t k = 0; k < n_samples; ++k) {
      // Evenly spaced, first and last included when n_samples > 1.
      const std::size_t idx =
          n_samples == 1 ? 0
                         : (k * (values.size() - 1)) / (n_samples - 1);
      e.sample_index.push_back(idx);
      e.sample_re.push_back(values[idx].real());
      e.sample_im.push_back(values[idx].imag());
    }
  }
  return e;
}

// ---------------------------------------------------------------------------
// JSON subset reader/writer for the format save() emits.

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse(std::map<std::string, GoldenEntry>& out) {
    skip_ws();
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (key == "entries") {
        if (!parse_entries(out)) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t'))
      ++pos_;
  }

  bool expect(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out.push_back(s_[pos_++]);
    }
    return expect('"');
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    out = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool parse_number_array(std::vector<double>& out) {
    if (!expect('[')) return false;
    out.clear();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      double v = 0.0;
      if (!parse_number(v)) return false;
      out.push_back(v);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool skip_value() {
    skip_ws();
    if (peek() == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (peek() == '[') {
      std::vector<double> ignored;
      return parse_number_array(ignored);
    }
    double ignored = 0.0;
    return parse_number(ignored);
  }

  bool parse_entries(std::map<std::string, GoldenEntry>& out) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      std::string name;
      if (!parse_string(name)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      GoldenEntry e;
      if (!parse_entry(e)) return false;
      out[name] = std::move(e);
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  bool parse_entry(GoldenEntry& e) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (key == "count") {
        double v = 0.0;
        if (!parse_number(v)) return false;
        e.count = static_cast<std::size_t>(v);
      } else if (key == "signature") {
        std::string hex;
        if (!parse_string(hex)) return false;
        e.signature = std::strtoull(hex.c_str(), nullptr, 16);
      } else if (key == "l2") {
        if (!parse_number(e.l2)) return false;
      } else if (key == "max_abs") {
        if (!parse_number(e.max_abs)) return false;
      } else if (key == "sample_index") {
        std::vector<double> v;
        if (!parse_number_array(v)) return false;
        e.sample_index.assign(v.size(), 0);
        for (std::size_t i = 0; i < v.size(); ++i)
          e.sample_index[i] = static_cast<std::size_t>(v[i]);
      } else if (key == "sample_re") {
        if (!parse_number_array(e.sample_re)) return false;
      } else if (key == "sample_im") {
        if (!parse_number_array(e.sample_im)) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void write_number_array(std::ostream& os, const std::vector<double>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i == 0 ? "" : ", ") << format_double(v[i]);
  os << "]";
}

}  // namespace

// ---------------------------------------------------------------------------
// GoldenDb.

GoldenDb::GoldenDb(std::string path)
    : path_(std::move(path)),
      regen_(env_regen_golden()),
      strict_(env_golden_strict()) {
  std::ifstream in(path_);
  if (!in) return;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonReader reader(text);
  std::map<std::string, GoldenEntry> parsed;
  if (reader.parse(parsed)) entries_ = std::move(parsed);
}

std::string GoldenDb::check_or_record(const std::string& name,
                                      const sig::CVec& v) {
  if (regen_) {
    entries_[name] = make_golden_entry(v);
    const std::string err = save();
    if (!err.empty()) return err;
    return "";
  }
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return "golden: no entry '" + name + "' in " + path_ +
           " (regenerate with RCR_REGEN_GOLDEN=1)";
  }
  const GoldenEntry& want = it->second;
  const GoldenEntry got = make_golden_entry(v);
  if (got.count != want.count) {
    return "golden '" + name + "': count " + std::to_string(got.count) +
           " != recorded " + std::to_string(want.count);
  }
  if (strict_) {
    if (got.signature != want.signature) {
      return "golden '" + name + "': bit signature " +
             format_hex64(got.signature) + " != recorded " +
             format_hex64(want.signature) +
             " (set RCR_GOLDEN_STRICT=0 for tolerance fallback, or "
             "RCR_REGEN_GOLDEN=1 after an intentional change)";
    }
    return "";
  }
  // Tolerance fallback: norms and the recorded samples.
  const double tol = 1e-9;
  const auto close = [tol](double a, double b) {
    return std::fabs(a - b) <= tol * (1.0 + std::max(std::fabs(a),
                                                     std::fabs(b)));
  };
  if (!close(got.l2, want.l2)) {
    return "golden '" + name + "': l2 " + format_double(got.l2) +
           " != recorded " + format_double(want.l2);
  }
  if (!close(got.max_abs, want.max_abs)) {
    return "golden '" + name + "': max_abs " + format_double(got.max_abs) +
           " != recorded " + format_double(want.max_abs);
  }
  for (std::size_t k = 0; k < want.sample_index.size(); ++k) {
    const std::size_t idx = want.sample_index[k];
    if (idx >= v.size()) {
      return "golden '" + name + "': recorded sample index " +
             std::to_string(idx) + " out of range";
    }
    if (!close(v[idx].real(), want.sample_re[k]) ||
        !close(v[idx].imag(), want.sample_im[k])) {
      return "golden '" + name + "': sample [" + std::to_string(idx) +
             "] = (" + format_double(v[idx].real()) + ", " +
             format_double(v[idx].imag()) + ") != recorded (" +
             format_double(want.sample_re[k]) + ", " +
             format_double(want.sample_im[k]) + ")";
    }
  }
  return "";
}

std::string GoldenDb::check(const std::string& name, const sig::CVec& values) {
  return check_or_record(name, values);
}

std::string GoldenDb::check(const std::string& name, const Vec& values) {
  sig::CVec as_complex(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    as_complex[i] = {values[i], 0.0};
  return check_or_record(name, as_complex);
}

std::string GoldenDb::check(const std::string& name,
                            const sig::TfGrid& grid) {
  // Prepend the dims so a bins/frames change flips the signature even if the
  // flattened coefficients happen to coincide.
  sig::CVec folded;
  folded.reserve(grid.data().size() + 1);
  folded.emplace_back(static_cast<double>(grid.bins()),
                      static_cast<double>(grid.frames()));
  folded.insert(folded.end(), grid.data().begin(), grid.data().end());
  return check_or_record(name, folded);
}

std::string GoldenDb::save() const {
  std::ofstream out(path_);
  if (!out) return "golden: cannot write " + path_;
  out << "{\n  \"format\": 1,\n  \"entries\": {\n";
  std::size_t i = 0;
  for (const auto& [name, e] : entries_) {
    out << "    \"" << name << "\": {\n"
        << "      \"count\": " << e.count << ",\n"
        << "      \"signature\": \"" << format_hex64(e.signature) << "\",\n"
        << "      \"l2\": " << format_double(e.l2) << ",\n"
        << "      \"max_abs\": " << format_double(e.max_abs) << ",\n";
    out << "      \"sample_index\": [";
    for (std::size_t k = 0; k < e.sample_index.size(); ++k)
      out << (k == 0 ? "" : ", ") << e.sample_index[k];
    out << "],\n      \"sample_re\": ";
    write_number_array(out, e.sample_re);
    out << ",\n      \"sample_im\": ";
    write_number_array(out, e.sample_im);
    out << "\n    }" << (++i < entries_.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.flush();
  return out ? "" : ("golden: write failed for " + path_);
}

}  // namespace rcr::testkit
