// Differential oracles: run two implementations of the same contract on one
// input and compare at the promised strength.
//
// The repo makes two different promises (DESIGN.md Secs. 6-7):
//  - bit identity for paired variants of the *same* algorithm (allocating vs
//    `_into`, serial vs pooled, fresh vs prefactored ADMM), asserted with
//    diff_bits;
//  - ULP-bounded agreement for *algorithmically distinct* implementations
//    (radix-2/Bluestein fft vs the O(N^2) reference DFT), asserted with
//    diff_ulp and a budget scaling with the operation count.
//
// Each oracle evaluates both sides eagerly and returns the ulp.hpp
// ""-or-diagnostic string, so they drop straight into property lambdas.
#pragma once

#include <functional>
#include <string>

#include "rcr/rt/parallel.hpp"
#include "rcr/testkit/ulp.hpp"

namespace rcr::testkit {

/// Bit-identity oracle: `reference()` and `candidate()` must return
/// bit-identical results.  Out is any type expect_bits overloads accept.
template <typename Out>
std::string diff_bits(const std::function<Out()>& reference,
                      const std::function<Out()>& candidate,
                      const char* what = "candidate vs reference") {
  return expect_bits(reference(), candidate(), what);
}

/// ULP-bounded oracle for algorithmically distinct implementations.
template <typename Out>
std::string diff_ulp(const std::function<Out()>& reference,
                     const std::function<Out()>& candidate,
                     std::uint64_t max_ulps,
                     const char* what = "candidate vs reference") {
  return expect_ulp(reference(), candidate(), max_ulps, what);
}

/// Serial-vs-parallel oracle: run `f` once under ForceSerialGuard and once
/// on the global pool; the runtime's determinism contract says the bits
/// must match regardless of RCR_THREADS.
template <typename Out>
std::string diff_serial_parallel(const std::function<Out()>& f,
                                 const char* what = "parallel vs serial") {
  Out serial_out = [&] {
    rt::ForceSerialGuard guard;
    return f();
  }();
  Out parallel_out = f();
  return expect_bits(serial_out, parallel_out, what);
}

}  // namespace rcr::testkit
