// Environment knobs shared by the testkit drivers.
//
//   RCR_TESTKIT_SEED=<u64>      replay exactly one property case (the seed a
//                               failure report prints).
//   RCR_TESTKIT_ARTIFACT_DIR=d  write shrunk counterexamples under d/ (CI
//                               uploads them on failure).
//   RCR_REGEN_GOLDEN=1          rewrite golden-signature files from the
//                               current implementation instead of comparing.
//   RCR_GOLDEN_STRICT=0         relax golden checks from bit-signature
//                               equality to tolerance comparison of the
//                               stored samples/norms (for compilers that do
//                               not reproduce the committed bits).
//   RCR_FUZZ_BUDGET_S=<n>       wall-clock budget of the fuzz-smoke driver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace rcr::testkit {

/// RCR_TESTKIT_SEED when set to a parseable unsigned integer.
std::optional<std::uint64_t> env_replay_seed();

/// RCR_TESTKIT_ARTIFACT_DIR, or empty when unset.
std::string env_artifact_dir();

/// True when RCR_REGEN_GOLDEN=1.
bool env_regen_golden();

/// False only when RCR_GOLDEN_STRICT=0 (default: strict).
bool env_golden_strict();

/// RCR_FUZZ_BUDGET_S when set, else `fallback` seconds.
double env_fuzz_budget_seconds(double fallback);

/// SplitMix64 step: the testkit's seed-derivation hash (case seeds, corpus
/// mutation streams).  Deterministic across platforms.
std::uint64_t splitmix64(std::uint64_t x);

/// Write `text` to `<env_artifact_dir()>/<file>` when the artifact dir is
/// set; returns the path written, or empty when disabled or on I/O failure.
std::string write_artifact(const std::string& file, const std::string& text);

}  // namespace rcr::testkit
