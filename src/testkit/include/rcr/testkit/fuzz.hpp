// Structure-aware fuzz harness for the FFT/STFT entry points.
//
// A byte buffer is decoded into a transform workload (ByteReader slices
// lengths, window kinds, hops, and raw sample bits -- non-finite doubles are
// sanitized), and every invariant the property suites assert is re-checked
// on it: fft/ifft round trip, fft vs the O(N^2) reference for small N,
// in-place vs allocating bit identity, rfft/irfft symmetry, stft vs
// stft_into, and frame-count consistency.  The same entry point serves
//  - the standalone smoke driver (tests/fuzz/fuzz_fft_stft.cpp): seeded
//    deterministic corpus + SplitMix64 mutation loop under a wall-clock
//    budget, and
//  - an optional libFuzzer target (-DRCR_LIBFUZZER=ON with clang), where
//    LLVMFuzzerTestOneInput forwards the raw buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rcr::testkit {

/// Consumes a byte buffer as a stream of little-endian primitives;
/// exhaustion yields zeros (keeps decoding total, like libFuzzer's
/// FuzzedDataProvider).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint64_t u64();
  /// In [lo, hi] inclusive (hi >= lo).
  std::size_t size_in(std::size_t lo, std::size_t hi);
  /// Finite double in roughly [-amplitude, amplitude]: raw bits are
  /// sanitized (NaN/inf/huge -> small finite values derived from the bits).
  double sample(double amplitude = 4.0);
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Run every FFT-family invariant on the decoded workload; "" or diagnostic.
std::string fuzz_fft_one(const std::uint8_t* data, std::size_t size);

/// Run every STFT invariant on the decoded workload; "" or diagnostic.
std::string fuzz_stft_one(const std::uint8_t* data, std::size_t size);

/// Both of the above (the libFuzzer entry body).
std::string fuzz_fft_stft_one(const std::uint8_t* data, std::size_t size);

/// Deterministic seed corpus: hand-picked byte buffers hitting the corner
/// cases (length 1, powers of two, Bluestein lengths, truncate padding,
/// hop == window length).
std::vector<std::vector<std::uint8_t>> builtin_corpus();

/// Mutate `input` in place with `rounds` SplitMix64-driven byte edits
/// (overwrite / flip / grow / shrink), deterministically from `seed`.
void mutate(std::vector<std::uint8_t>& input, std::uint64_t seed, int rounds);

}  // namespace rcr::testkit
