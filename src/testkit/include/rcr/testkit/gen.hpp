// Seeded value generators with deterministic shrinking.
//
// A Gen<T> bundles three pure functions:
//   sample(rng)  -- draw a value from a seeded num::Rng (same seed, same
//                   bits, on every platform we build on),
//   shrink(v)    -- a *finite, deterministically ordered* list of strictly
//                   simpler candidates (empty when v is minimal), and
//   show(v)      -- a bounded human-readable rendering for failure reports.
//
// The taxonomy below covers what the RCR property suites need: scalars,
// vectors, rectangular/symmetric/PSD/SPD/near-singular matrices, and STFT
// signal fixtures.  Tests compose their own structured generators from
// these (see Gen<T>::map-free composition in tests/properties).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"

namespace rcr::testkit {

template <typename T>
struct Gen {
  std::function<T(num::Rng&)> sample;
  std::function<std::vector<T>(const T&)> shrink = [](const T&) {
    return std::vector<T>{};
  };
  std::function<std::string(const T&)> show = [](const T&) {
    return std::string("<opaque>");
  };
};

// ---------------------------------------------------------------------------
// Rendering helpers (bounded output; large objects are elided).

std::string show_double(double v);
std::string show_vec(const Vec& v, std::size_t max_entries = 12);
std::string show_cvec(const sig::CVec& v, std::size_t max_entries = 8);
std::string show_matrix(const num::Matrix& m, std::size_t max_dim = 8);

// ---------------------------------------------------------------------------
// Shrink primitives (reused by structured generators and by tests that
// build custom Gen<T>s).

/// Candidates simpler than v, in order: 0, then (for |v| > 1) +/-1,
/// trunc(v), v/2, or (for 1e-3 < |v| <= 1) just v/2.  Every non-zero
/// candidate strictly reduces |v|, so greedy shrink loops terminate without
/// cycling; the 1e-3 floor stops halving descents short of denormals.
std::vector<double> shrink_double(double v);

/// Candidates simpler than n, moving toward `lo`: lo, n/2 (clamped), n-1.
std::vector<std::size_t> shrink_size(std::size_t n, std::size_t lo);

/// Structural shrinks: first half, second half, then each entry
/// scalar-shrunk one at a time (capped at `max_pointwise` entries).
std::vector<Vec> shrink_vec(const Vec& v, std::size_t min_len,
                            std::size_t max_pointwise = 16);

/// Square-matrix shrinks: drop the last row+column (down to min_dim), then
/// entry-wise scalar shrinks (capped).
std::vector<num::Matrix> shrink_square_matrix(const num::Matrix& m,
                                              std::size_t min_dim,
                                              std::size_t max_pointwise = 16);

// ---------------------------------------------------------------------------
// Scalar and vector generators.

Gen<double> gen_double(double lo, double hi);

/// Log-uniform positive double: exp of a uniform draw over [ln lo, ln hi],
/// so every decade in [lo, hi] is equally likely.  The natural generator for
/// channel gains and other scale-free physical quantities (the serve
/// signature quantizer buckets gains in log space; a uniform draw would
/// almost never exercise the small-gain buckets).  Requires 0 < lo <= hi.
Gen<double> gen_log_uniform(double lo, double hi);

Gen<std::size_t> gen_size(std::size_t lo, std::size_t hi);
Gen<Vec> gen_vec(std::size_t min_len, std::size_t max_len, double lo,
                 double hi);
Gen<sig::CVec> gen_cvec(std::size_t min_len, std::size_t max_len,
                        double amplitude);

// ---------------------------------------------------------------------------
// Matrix generators.  All sample entry magnitudes O(1) so ULP budgets in
// properties do not depend on scale.

/// Dense square matrix with iid normal entries.
Gen<num::Matrix> gen_matrix(std::size_t min_dim, std::size_t max_dim);

/// Rectangular matrix, both dimensions drawn independently.
Gen<num::Matrix> gen_matrix_rect(std::size_t min_dim, std::size_t max_dim);

/// Symmetric matrix ((A + A^T)/2 of a random square A).
Gen<num::Matrix> gen_symmetric(std::size_t min_dim, std::size_t max_dim);

/// PSD matrix of full or deficient rank: sum of `rank` random outer
/// products, rank drawn in [1, dim].
Gen<num::Matrix> gen_psd(std::size_t min_dim, std::size_t max_dim);

/// Well-conditioned SPD matrix: A A^T + dim * I.
Gen<num::Matrix> gen_spd_well_conditioned(std::size_t min_dim,
                                          std::size_t max_dim);

/// Near-singular square matrix Q D Q^T with Q orthogonal and log-spaced
/// singular values spanning 10^-log_cond_min .. 10^-log_cond_max; the
/// 2-norm condition number is ~10^log_cond for the drawn exponent.
/// Shrinking reduces the dimension but preserves the conditioning recipe.
Gen<num::Matrix> gen_near_singular(std::size_t min_dim, std::size_t max_dim,
                                   double log_cond_min, double log_cond_max);

/// Orthonormalize the columns of a random matrix (modified Gram-Schmidt);
/// exposed for tests that build custom spectra.
num::Matrix random_orthogonal(std::size_t n, num::Rng& rng);

/// Square matrix with prescribed singular-value spectrum: Q1 diag(s) Q2^T.
num::Matrix matrix_with_spectrum(const Vec& singular_values, num::Rng& rng);

// ---------------------------------------------------------------------------
// Signal fixtures.

/// A signal paired with a valid STFT configuration.
struct StftFixture {
  Vec signal;
  sig::StftConfig config;
};

std::string show_stft_fixture(const StftFixture& f);

/// Random multitone+noise signal with a random valid STFT config: window
/// kind/length, hop dividing the window length (COLA-friendly), fft_size a
/// power of two >= window length, both conventions, circular padding.
Gen<StftFixture> gen_stft_fixture(std::size_t max_signal_len = 256,
                                  std::size_t max_window_len = 32);

/// Deterministic multitone + noise test signal (also used by the golden
/// and fuzz harnesses so every layer audits the same canonical waveform).
Vec canonical_signal(std::size_t n, std::uint64_t seed);

}  // namespace rcr::testkit
