// Golden-signature harness (the paper's Sec. IV-A "signature" audit, made a
// committed regression asset).
//
// A golden file is a JSON document mapping entry names to the *signature* of
// a canonical transform output: an FNV-1a hash over the exact IEEE-754 bit
// patterns, plus redundant tolerance-checkable facts (L2 norm, max
// magnitude, a few evenly spaced sample values at full precision).  Checks
// compare the bit signature by default -- any drift in FFT/STFT arithmetic,
// table generation, or convention handling flips the hash -- and fall back
// to the tolerance facts when RCR_GOLDEN_STRICT=0 (for toolchains that do
// not reproduce the committed bits).
//
// Regeneration: RCR_REGEN_GOLDEN=1 rewrites every checked entry from the
// current implementation and saves the file, so refreshing goldens after an
// intentional change is one env var + one test run; the test passes and
// reports what it rewrote.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rcr/signal/stft.hpp"
#include "rcr/testkit/env.hpp"

namespace rcr::testkit {

/// FNV-1a 64-bit over the IEEE bit patterns of `n` doubles.
std::uint64_t signature_hash(const double* data, std::size_t n);

/// One golden record.
struct GoldenEntry {
  std::size_t count = 0;           ///< Number of complex coefficients.
  std::uint64_t signature = 0;     ///< Bit-pattern hash (re,im interleaved).
  double l2 = 0.0;                 ///< sqrt(sum |z|^2).
  double max_abs = 0.0;            ///< max |z|.
  std::vector<std::size_t> sample_index;
  std::vector<double> sample_re;
  std::vector<double> sample_im;
};

/// A golden file: load on construction, check-or-record entries, explicit
/// save (regen mode saves after every recorded entry, so partial runs still
/// leave a parseable file).
class GoldenDb {
 public:
  /// Opens `path`; a missing file is an empty db (entries are then only
  /// satisfiable in regen mode).
  explicit GoldenDb(std::string path);

  /// Compare `values` against entry `name` ("" on success).  In regen mode
  /// the entry is (re)recorded instead and the check always passes.
  std::string check(const std::string& name, const sig::CVec& values);
  std::string check(const std::string& name, const Vec& values);
  /// Grid check: the dims are folded into the compared data, so a
  /// shape-preserving value change and a shape change both flip the result.
  std::string check(const std::string& name, const sig::TfGrid& grid);

  bool regen_mode() const { return regen_; }
  const std::string& path() const { return path_; }
  std::size_t entry_count() const { return entries_.size(); }

  /// Write the db back to its path; returns "" or an I/O diagnostic.
  std::string save() const;

 private:
  std::string check_or_record(const std::string& name, const sig::CVec& v);

  std::string path_;
  bool regen_ = false;
  bool strict_ = true;
  std::map<std::string, GoldenEntry> entries_;
};

/// Build the GoldenEntry for a coefficient vector (exposed for harness
/// tests).
GoldenEntry make_golden_entry(const sig::CVec& values,
                              std::size_t max_samples = 7);

}  // namespace rcr::testkit
