// Gradient checking for nn layers, generalized from the original
// tests/nn/gradient_check.hpp harness into a result-returning oracle.
//
// Verifies the input gradient and every parameter gradient of a Layer
// against central finite differences of the scalar probe loss
// L = sum(w .* forward(x)) with fixed random weights w (so the upstream
// gradient is exactly w).  Returns a diagnostic instead of asserting, which
// lets the same check run inside property drivers, plain GTest cases, and
// the fuzz harness.  Header-only so rcr_testkit does not link rcr_nn.
#pragma once

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "rcr/nn/layer.hpp"
#include "rcr/nn/network.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::testkit {

struct GradCheckOptions {
  double tolerance = 1e-5;   ///< Max |analytic - numeric| per coordinate.
  double step = 1e-6;        ///< Central-difference half step.
  bool training = true;      ///< Forward-pass mode under test.
  bool nudge_params = true;  ///< Push zero-init params off ReLU kinks.
  std::uint64_t seed = 99;   ///< Probe-weight / nudge RNG seed.
};

struct GradCheckResult {
  bool ok = true;
  std::size_t coords_checked = 0;
  double worst_error = 0.0;
  std::string worst_site;  ///< "input[3]" or "param conv.w[7]".
  std::string report;      ///< Empty when ok.
};

/// Random tensor filled with normals, nudged away from exact ReLU kinks.
inline nn::Tensor random_tensor(const std::vector<std::size_t>& shape,
                                std::uint64_t seed) {
  num::Rng rng(seed);
  nn::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    double v = rng.normal();
    if (std::abs(v) < 1e-3) v += 0.01;
    t[i] = v;
  }
  return t;
}

/// Adapter presenting a Sequential as a single Layer, so composed stacks
/// (e.g. the DCGAN generator's upsample->conv->batchnorm block) gradient-
/// check through the same oracle as primitive layers.
class SequentialLayer final : public nn::Layer {
 public:
  explicit SequentialLayer(nn::Sequential& net, std::string label = "sequential")
      : net_(&net), label_(std::move(label)) {}

  nn::Tensor forward(const nn::Tensor& input, bool training) override {
    return net_->forward(input, training);
  }
  nn::Tensor backward(const nn::Tensor& grad_output) override {
    return net_->backward(grad_output);
  }
  std::vector<nn::ParamRef> params() override { return net_->params(); }
  std::string name() const override { return label_; }

 private:
  nn::Sequential* net_;
  std::string label_;
};

inline GradCheckResult grad_check(nn::Layer& layer, const nn::Tensor& input,
                                  const GradCheckOptions& opts = {}) {
  GradCheckResult result;
  std::ostringstream failures;
  std::size_t failure_count = 0;
  const auto record = [&](const std::string& site, double analytic,
                          double numeric) {
    ++result.coords_checked;
    const double err = std::abs(analytic - numeric);
    if (err > result.worst_error) {
      result.worst_error = err;
      result.worst_site = site;
    }
    if (err > opts.tolerance) {
      result.ok = false;
      if (++failure_count <= 8)
        failures << "  " << layer.name() << " " << site << ": analytic "
                 << analytic << " vs numeric " << numeric << " (|diff| "
                 << err << " > tol " << opts.tolerance << ")\n";
    }
  };

  num::Rng rng(opts.seed);
  if (opts.nudge_params) {
    // Zero-initialized biases park ReLU pre-activations exactly at the
    // kink, where one-sided analytic and centered numeric derivatives
    // legitimately disagree.
    for (auto& p : layer.params())
      for (double& v : *p.value) v += rng.uniform(0.01, 0.05);
  }
  const nn::Tensor probe_template = layer.forward(input, opts.training);
  Vec w(probe_template.size());
  for (double& v : w) v = rng.normal();

  const auto loss_at = [&](const nn::Tensor& x) {
    const nn::Tensor y = layer.forward(x, opts.training);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += w[i] * y[i];
    return acc;
  };

  // Analytic pass.
  for (auto& p : layer.params())
    for (double& g : *p.grad) g = 0.0;
  const nn::Tensor y = layer.forward(input, opts.training);
  nn::Tensor upstream(y.shape());
  for (std::size_t i = 0; i < y.size(); ++i) upstream[i] = w[i];
  const nn::Tensor grad_input = layer.backward(upstream);

  // Input gradient.
  nn::Tensor x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + opts.step;
    const double lp = loss_at(x);
    x[i] = orig - opts.step;
    const double lm = loss_at(x);
    x[i] = orig;
    record("input[" + std::to_string(i) + "]", grad_input[i],
           (lp - lm) / (2.0 * opts.step));
  }

  // Parameter gradients: re-zero and recompute to isolate one clean
  // accumulation.
  for (auto& p : layer.params())
    for (double& g : *p.grad) g = 0.0;
  layer.forward(input, opts.training);
  layer.backward(upstream);
  for (auto& p : layer.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const double orig = (*p.value)[i];
      (*p.value)[i] = orig + opts.step;
      const double lp = loss_at(input);
      (*p.value)[i] = orig - opts.step;
      const double lm = loss_at(input);
      (*p.value)[i] = orig;
      record("param " + p.name + "[" + std::to_string(i) + "]", (*p.grad)[i],
             (lp - lm) / (2.0 * opts.step));
    }
  }

  if (!result.ok) {
    std::ostringstream report;
    report << "grad_check failed for " << layer.name() << " ("
           << failure_count << " of " << result.coords_checked
           << " coords out of tolerance; worst " << result.worst_error
           << " at " << result.worst_site << ")\n"
           << failures.str();
    if (failure_count > 8)
      report << "  ... " << (failure_count - 8) << " more\n";
    result.report = report.str();
  }
  return result;
}

}  // namespace rcr::testkit
