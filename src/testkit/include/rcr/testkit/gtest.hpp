// GTest adapter for the property driver: keeps testkit itself free of any
// gtest dependency (the fuzz driver links it without gtest) while letting
// test files attach a CheckResult's report to a normal failure.
#pragma once

#include <gtest/gtest.h>

#include "rcr/testkit/property.hpp"

/// Expect a passing property; on failure the report (replay seed + shrunk
/// counterexample) becomes the assertion message.
#define RCR_EXPECT_PROP(check_result)                      \
  do {                                                     \
    const ::rcr::testkit::CheckResult& rcr_r_ = (check_result); \
    EXPECT_TRUE(rcr_r_.ok) << rcr_r_.report;               \
  } while (0)

/// Expect an empty diagnostic string (the ulp.hpp comparator contract).
#define RCR_EXPECT_OK(diag_expr)                 \
  do {                                           \
    const std::string rcr_d_ = (diag_expr);      \
    EXPECT_TRUE(rcr_d_.empty()) << rcr_d_;       \
  } while (0)
