// Metamorphic relations for the solver/verify/signal stacks: properties that
// relate *outputs across transformed inputs or across relaxation tiers*
// without needing a ground-truth oracle.
//
//  - Parseval ties time-domain and frequency-domain energy for the FFT.
//  - Exact-scaling linearity: multiplying the input by a power of two scales
//    every intermediate exactly, so fft(2^k x) must be bit-identical to
//    2^k fft(x).
//  - IBP is the loosest convex relaxation: its boxes must contain CROWN's.
//  - The Shor SDP relaxation lower-bounds the QCQP optimum.
//
// Header-only (includes verify/opt) so rcr_testkit itself links only
// numerics+signal; binaries using these helpers already link the rest.
#pragma once

#include <cmath>
#include <sstream>
#include <string>

#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/signal/fft.hpp"
#include "rcr/testkit/ulp.hpp"
#include "rcr/verify/bounds.hpp"

namespace rcr::testkit {

/// Parseval: sum |x|^2 == (1/N) sum |X|^2 within relative tolerance.
inline std::string check_parseval_fft(const sig::CVec& x, double rel_tol) {
  const sig::CVec spectrum = sig::fft(x);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(x.empty() ? 1 : x.size());
  const double gap = std::abs(time_energy - freq_energy);
  if (gap > rel_tol * (1.0 + time_energy)) {
    std::ostringstream os;
    os << "Parseval violated: time energy " << time_energy
       << " vs freq energy/N " << freq_energy << " (gap " << gap << ")";
    return os.str();
  }
  return "";
}

/// Exact-scaling linearity: fft(s * x) bit-identical to s * fft(x) for s an
/// exact power of two (every FFT operation commutes with exact scaling).
inline std::string check_fft_pow2_linearity(const sig::CVec& x, int exponent) {
  const double s = std::ldexp(1.0, exponent);
  sig::CVec scaled = x;
  for (auto& v : scaled) v *= s;
  sig::CVec lhs = sig::fft(scaled);
  sig::CVec rhs = sig::fft(x);
  for (auto& v : rhs) v *= s;
  return expect_bits(rhs, lhs, "fft(2^k x) vs 2^k fft(x)");
}

/// Bound containment: the IBP box at every layer (and the output) must
/// contain the CROWN box -- IBP is the looser relaxation.
inline std::string check_ibp_contains_crown(const verify::ReluNetwork& net,
                                            const verify::Box& input,
                                            double slack = 1e-9) {
  const verify::LayerBounds ibp = verify::ibp_bounds(net, input);
  const verify::LayerBounds crown = verify::crown_bounds(net, input);
  const auto contains = [&](const verify::Box& outer,
                            const verify::Box& inner, const char* where) {
    for (std::size_t i = 0; i < outer.lower.size(); ++i) {
      if (outer.lower[i] > inner.lower[i] + slack ||
          outer.upper[i] < inner.upper[i] - slack) {
        std::ostringstream os;
        os << "IBP does not contain CROWN at " << where << "[" << i
           << "]: IBP [" << outer.lower[i] << ", " << outer.upper[i]
           << "] vs CROWN [" << inner.lower[i] << ", " << inner.upper[i]
           << "]";
        return os.str();
      }
    }
    return std::string();
  };
  for (std::size_t k = 0; k < ibp.pre_activation.size(); ++k) {
    const std::string d = contains(ibp.pre_activation[k],
                                   crown.pre_activation[k],
                                   ("layer " + std::to_string(k)).c_str());
    if (!d.empty()) return d;
  }
  return contains(ibp.output, crown.output, "output");
}

/// Relaxation ordering: the Shor SDP bound must not exceed the barrier
/// solution of a convex QCQP (it is a lower bound on the optimum).
inline std::string check_shor_lower_bounds_qcqp(const opt::Qcqp& problem,
                                                double tol = 1e-4) {
  const opt::QcqpResult exact = opt::solve_qcqp_barrier(problem);
  if (!exact.converged) return "";  // nothing to relate on this draw
  opt::SdpOptions sdp_opts;
  sdp_opts.max_iterations = 4000;
  const opt::ShorBound shor = opt::shor_lower_bound(problem, sdp_opts);
  if (!shor.converged) return "";
  if (shor.bound > exact.value + tol * (1.0 + std::abs(exact.value))) {
    std::ostringstream os;
    os << "Shor bound " << shor.bound << " exceeds QCQP optimum "
       << exact.value << " -- not a lower bound";
    return os.str();
  }
  return "";
}

}  // namespace rcr::testkit
