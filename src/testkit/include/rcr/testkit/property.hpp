// Property driver: check(name, gen, prop) with deterministic counterexample
// shrinking and seed replay.
//
// Each case i draws its value from a fresh num::Rng seeded with
//   case_seed = splitmix64(base_seed + i),
// so a single printed integer reproduces the failing draw exactly:
//   RCR_TESTKIT_SEED=<case_seed> ctest -R <test> --output-on-failure
// replays only that case.  On failure the driver greedily walks the
// generator's shrink candidates (first simpler value that still fails wins,
// in a fixed order) until a fixed point or the step cap, then formats a
// report carrying the replay seed, the shrink trajectory length, and the
// shrunk counterexample -- and mirrors it to RCR_TESTKIT_ARTIFACT_DIR when
// set, so CI can upload shrunk repros as artifacts.
//
// Properties return "" to pass and a diagnostic string to fail (the ulp.hpp
// comparators compose directly); thrown std::exceptions also count as
// failures with what() as the diagnostic.  The driver itself is
// GTest-agnostic; RCR_EXPECT_PROP in gtest.hpp adapts a CheckResult to an
// EXPECT_TRUE with the report attached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rcr/testkit/env.hpp"
#include "rcr/testkit/gen.hpp"

namespace rcr::testkit {

struct CheckOptions {
  std::size_t cases = 100;         ///< Cases when not replaying.
  std::uint64_t seed = 0x5eed0001; ///< Base seed for case-seed derivation.
  std::size_t max_shrink_steps = 500;
  bool honor_replay_env = true;    ///< Let RCR_TESTKIT_SEED pin one case.
  bool write_artifact = true;      ///< Mirror failures to the artifact dir.
};

struct CheckResult {
  bool ok = true;
  std::size_t cases_run = 0;
  std::uint64_t failing_seed = 0;  ///< Replay seed of the failing case.
  std::size_t shrink_steps = 0;    ///< Accepted shrink moves.
  std::string failure;             ///< Property diagnostic on the shrunk value.
  std::string counterexample;      ///< show() of the shrunk value.
  std::string report;              ///< Full human-readable failure block.
};

namespace detail {
std::string format_report(const std::string& name, std::uint64_t failing_seed,
                          std::size_t shrink_steps,
                          const std::string& counterexample,
                          const std::string& failure);
}

/// Run `prop` over `opts.cases` generated values.  `prop` returns "" on
/// success.  Deterministic: same name/gen/prop/options, same outcome.
template <typename T>
CheckResult check(const std::string& name, const Gen<T>& gen,
                  const std::function<std::string(const T&)>& prop,
                  const CheckOptions& opts = {}) {
  const auto run_case = [&](std::uint64_t case_seed, std::string* diag,
                            T* value) {
    num::Rng rng(case_seed);
    T v = gen.sample(rng);
    std::string d;
    try {
      d = prop(v);
    } catch (const std::exception& e) {
      d = std::string("exception: ") + e.what();
    }
    if (diag != nullptr) *diag = d;
    if (value != nullptr) *value = std::move(v);
    return d.empty();
  };

  CheckResult result;
  const auto replay = opts.honor_replay_env ? env_replay_seed() : std::nullopt;
  const std::size_t n_cases = replay.has_value() ? 1 : opts.cases;

  for (std::size_t i = 0; i < n_cases; ++i) {
    const std::uint64_t case_seed =
        replay.has_value() ? *replay : splitmix64(opts.seed + i);
    std::string diag;
    T value{};
    ++result.cases_run;
    if (run_case(case_seed, &diag, &value)) continue;

    // Failure: shrink greedily, first failing candidate wins each round.
    const auto still_fails = [&](const T& candidate, std::string* d) {
      try {
        *d = prop(candidate);
      } catch (const std::exception& e) {
        *d = std::string("exception: ") + e.what();
      }
      return !d->empty();
    };
    std::size_t steps = 0;
    bool progressed = true;
    while (progressed && steps < opts.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : gen.shrink(value)) {
        std::string d;
        if (still_fails(candidate, &d)) {
          value = candidate;
          diag = std::move(d);
          ++steps;
          progressed = true;
          break;
        }
      }
    }

    result.ok = false;
    result.failing_seed = case_seed;
    result.shrink_steps = steps;
    result.failure = diag;
    result.counterexample = gen.show(value);
    result.report = detail::format_report(name, case_seed, steps,
                                          result.counterexample, diag);
    if (opts.write_artifact)
      write_artifact(name + ".counterexample.txt", result.report);
    return result;
  }
  return result;
}

}  // namespace rcr::testkit
