// Umbrella header for rcr::testkit -- the property-based + differential
// testing layer (see DESIGN.md "Testing & oracles").
//
// Core (linked via rcr_testkit, numerics+signal only):
//   env.hpp          seed replay / artifact / golden env knobs
//   ulp.hpp          ULP + bit-identity comparators
//   gen.hpp          seeded generators with deterministic shrinking
//   property.hpp     check() driver, counterexample reports
//   differential.hpp paired-implementation oracles
//   golden.hpp       committed bit-signature harness
//   fuzz.hpp         structure-aware FFT/STFT fuzz harness
//
// Header-only extras (pull in nn / verify / opt from the including binary):
//   grad_check.hpp   finite-difference layer gradient oracle
//   metamorphic.hpp  Parseval / containment / relaxation-ordering relations
//   gtest.hpp        RCR_EXPECT_PROP / RCR_EXPECT_OK adapters
#pragma once

#include "rcr/testkit/differential.hpp"
#include "rcr/testkit/env.hpp"
#include "rcr/testkit/fuzz.hpp"
#include "rcr/testkit/gen.hpp"
#include "rcr/testkit/golden.hpp"
#include "rcr/testkit/property.hpp"
#include "rcr/testkit/ulp.hpp"
