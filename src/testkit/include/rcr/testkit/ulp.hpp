// ULP-distance and bit-equality oracles.
//
// The repo's determinism contract (DESIGN.md Sec. 6-7) promises *bit
// identity* between paired implementations (allocating vs `_into`, serial vs
// pooled); algorithmically distinct implementations (fft vs the O(N^2)
// reference DFT) are only equal to a few ULPs per arithmetic step.  Every
// comparator here returns an empty string on success and a human-readable
// diagnostic (first offending index, both values, the ULP distance) on
// failure, so property drivers can embed it in a shrunk counterexample
// report.
#pragma once

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "rcr/numerics/matrix.hpp"
#include "rcr/signal/stft.hpp"

namespace rcr::testkit {

/// Units-in-the-last-place distance between two doubles.  0 iff a == b
/// (so +0 and -0 are identified); NaN on either side is "infinitely far"
/// (UINT64_MAX); opposite-sign values are the sum of their distances to
/// zero.
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return UINT64_MAX;
  if (a == b) return 0;
  const std::uint64_t ua = std::bit_cast<std::uint64_t>(std::fabs(a));
  const std::uint64_t ub = std::bit_cast<std::uint64_t>(std::fabs(b));
  if (std::signbit(a) != std::signbit(b)) return ua + ub;
  return ua > ub ? ua - ub : ub - ua;
}

/// True when a and b have identical IEEE-754 bit patterns.
inline bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

namespace detail {
std::string format_mismatch(const char* what, std::size_t index, double a,
                            double b, std::uint64_t ulps);
}

/// "" when |a - b| <= max_ulps ULPs; diagnostic otherwise.
std::string expect_ulp(double a, double b, std::uint64_t max_ulps,
                       const char* what = "value");

/// Element-wise bit equality for real vectors.
std::string expect_bits(const Vec& a, const Vec& b, const char* what = "vec");

/// Element-wise bit equality for complex vectors.
std::string expect_bits(const sig::CVec& a, const sig::CVec& b,
                        const char* what = "cvec");

/// Entry-wise bit equality for matrices (shape must match too).
std::string expect_bits(const num::Matrix& a, const num::Matrix& b,
                        const char* what = "matrix");

/// Coefficient-wise bit equality for time-frequency grids.
std::string expect_bits(const sig::TfGrid& a, const sig::TfGrid& b,
                        const char* what = "tfgrid");

/// Element-wise ULP bound for real vectors.
std::string expect_ulp(const Vec& a, const Vec& b, std::uint64_t max_ulps,
                       const char* what = "vec");

/// Element-wise ULP bound for complex vectors (re and im separately).
std::string expect_ulp(const sig::CVec& a, const sig::CVec& b,
                       std::uint64_t max_ulps, const char* what = "cvec");

/// Mixed absolute/relative tolerance: |a-b| <= atol + rtol*max(|a|,|b|),
/// element-wise, with the same ""-or-diagnostic contract.
std::string expect_close(const Vec& a, const Vec& b, double atol, double rtol,
                         const char* what = "vec");
std::string expect_close(const sig::CVec& a, const sig::CVec& b, double atol,
                         double rtol, const char* what = "cvec");

}  // namespace rcr::testkit
