#include "rcr/testkit/property.hpp"

#include <sstream>

namespace rcr::testkit::detail {

std::string format_report(const std::string& name, std::uint64_t failing_seed,
                          std::size_t shrink_steps,
                          const std::string& counterexample,
                          const std::string& failure) {
  std::ostringstream os;
  os << "property '" << name << "' FAILED\n"
     << "  replay:         RCR_TESTKIT_SEED=" << failing_seed
     << " (pins this exact case)\n"
     << "  shrink steps:   " << shrink_steps << "\n"
     << "  counterexample: " << counterexample << "\n"
     << "  failure:        " << failure;
  return os.str();
}

}  // namespace rcr::testkit::detail
