#include "rcr/testkit/ulp.hpp"

#include <algorithm>
#include <sstream>

namespace rcr::testkit {

namespace detail {

std::string format_mismatch(const char* what, std::size_t index, double a,
                            double b, std::uint64_t ulps) {
  std::ostringstream os;
  os.precision(17);
  os << what << " mismatch at [" << index << "]: " << a << " vs " << b;
  if (ulps == UINT64_MAX)
    os << " (NaN)";
  else
    os << " (" << ulps << " ulps)";
  return os.str();
}

std::string size_mismatch(const char* what, std::size_t a, std::size_t b) {
  std::ostringstream os;
  os << what << " size mismatch: " << a << " vs " << b;
  return os.str();
}

}  // namespace detail

std::string expect_ulp(double a, double b, std::uint64_t max_ulps,
                       const char* what) {
  const std::uint64_t d = ulp_distance(a, b);
  if (d <= max_ulps) return "";
  return detail::format_mismatch(what, 0, a, b, d);
}

std::string expect_bits(const Vec& a, const Vec& b, const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_bits(a[i], b[i]))
      return detail::format_mismatch(what, i, a[i], b[i],
                                     ulp_distance(a[i], b[i]));
  return "";
}

std::string expect_bits(const sig::CVec& a, const sig::CVec& b,
                        const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_bits(a[i].real(), b[i].real()))
      return detail::format_mismatch(what, i, a[i].real(), b[i].real(),
                                     ulp_distance(a[i].real(), b[i].real()));
    if (!same_bits(a[i].imag(), b[i].imag()))
      return detail::format_mismatch(what, i, a[i].imag(), b[i].imag(),
                                     ulp_distance(a[i].imag(), b[i].imag()));
  }
  return "";
}

std::string expect_bits(const num::Matrix& a, const num::Matrix& b,
                        const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    std::ostringstream os;
    os << what << " shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
       << b.rows() << "x" << b.cols();
    return os.str();
  }
  return expect_bits(a.data(), b.data(), what);
}

std::string expect_bits(const sig::TfGrid& a, const sig::TfGrid& b,
                        const char* what) {
  if (a.bins() != b.bins() || a.frames() != b.frames()) {
    std::ostringstream os;
    os << what << " shape mismatch: " << a.bins() << "x" << a.frames()
       << " vs " << b.bins() << "x" << b.frames();
    return os.str();
  }
  return expect_bits(a.data(), b.data(), what);
}

std::string expect_ulp(const Vec& a, const Vec& b, std::uint64_t max_ulps,
                       const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t d = ulp_distance(a[i], b[i]);
    if (d > max_ulps) return detail::format_mismatch(what, i, a[i], b[i], d);
  }
  return "";
}

std::string expect_ulp(const sig::CVec& a, const sig::CVec& b,
                       std::uint64_t max_ulps, const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t dr = ulp_distance(a[i].real(), b[i].real());
    if (dr > max_ulps)
      return detail::format_mismatch(what, i, a[i].real(), b[i].real(), dr);
    const std::uint64_t di = ulp_distance(a[i].imag(), b[i].imag());
    if (di > max_ulps)
      return detail::format_mismatch(what, i, a[i].imag(), b[i].imag(), di);
  }
  return "";
}

std::string expect_close(const Vec& a, const Vec& b, double atol, double rtol,
                         const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(std::fabs(a[i]), std::fabs(b[i]));
    if (std::isnan(a[i]) || std::isnan(b[i]) ||
        std::fabs(a[i] - b[i]) > atol + rtol * scale)
      return detail::format_mismatch(what, i, a[i], b[i],
                                     ulp_distance(a[i], b[i]));
  }
  return "";
}

std::string expect_close(const sig::CVec& a, const sig::CVec& b, double atol,
                         double rtol, const char* what) {
  if (a.size() != b.size())
    return detail::size_mismatch(what, a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(std::abs(a[i]), std::abs(b[i]));
    const double diff = std::abs(a[i] - b[i]);
    if (std::isnan(diff) || diff > atol + rtol * scale)
      return detail::format_mismatch(what, i, a[i].real(), b[i].real(),
                                     ulp_distance(a[i].real(), b[i].real()));
  }
  return "";
}

}  // namespace rcr::testkit
