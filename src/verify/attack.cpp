#include "rcr/verify/attack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rcr/numerics/rng.hpp"

namespace rcr::verify {

Vec margin_input_gradient(const ReluNetwork& net, const Vec& x,
                          std::size_t label) {
  const std::size_t classes = net.output_dim();
  if (label >= classes)
    throw std::invalid_argument("margin_input_gradient: label out of range");

  // Forward pass caching post-activation values and ReLU masks.
  std::vector<Vec> activations;  // a_0 = x, a_k after ReLU
  std::vector<std::vector<bool>> active;
  activations.push_back(x);
  Vec a = x;
  for (std::size_t k = 0; k < net.layers.size(); ++k) {
    Vec z = num::matvec(net.layers[k].w, a);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += net.layers[k].b[i];
    if (k + 1 < net.layers.size()) {
      std::vector<bool> mask(z.size());
      for (std::size_t i = 0; i < z.size(); ++i) {
        mask[i] = z[i] > 0.0;
        if (!mask[i]) z[i] = 0.0;
      }
      active.push_back(std::move(mask));
    }
    activations.push_back(z);
    a = activations.back();
  }
  const Vec& y = activations.back();

  // Runner-up class.
  std::size_t runner = label == 0 ? 1 : 0;
  for (std::size_t k = 0; k < classes; ++k)
    if (k != label && y[k] > y[runner]) runner = k;

  // Backward: delta over the output is e_label - e_runner.
  Vec delta(classes, 0.0);
  delta[label] = 1.0;
  delta[runner] = -1.0;
  for (std::size_t k = net.layers.size(); k-- > 0;) {
    Vec prev = num::matvec_transposed(net.layers[k].w, delta);
    if (k > 0) {
      const auto& mask = active[k - 1];
      for (std::size_t i = 0; i < prev.size(); ++i)
        if (!mask[i]) prev[i] = 0.0;
    }
    delta = std::move(prev);
  }
  return delta;
}

namespace {

double margin_at(const ReluNetwork& net, const Vec& x, std::size_t label) {
  const Vec y = net.forward(x);
  double best_other = -1e300;
  for (std::size_t k = 0; k < y.size(); ++k)
    if (k != label) best_other = std::max(best_other, y[k]);
  return y[label] - best_other;
}

}  // namespace

AttackResult pgd_attack(const ReluNetwork& net, const Vec& x, double eps,
                        std::size_t label, const PgdOptions& options) {
  if (label >= net.output_dim())
    throw std::invalid_argument("pgd_attack: label out of range");

  num::Rng rng(options.seed);
  const double step = options.step_fraction * eps;

  AttackResult result;
  result.worst_margin = margin_at(net, x, label);
  ++result.queries;

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    // Start at x for the first restart, random inside the ball afterwards.
    Vec p = x;
    if (restart > 0)
      for (std::size_t j = 0; j < p.size(); ++j)
        p[j] += rng.uniform(-eps, eps);

    for (std::size_t it = 0; it < options.steps; ++it) {
      // Descend the margin: signed-gradient step, projected onto the ball.
      const Vec g = margin_input_gradient(net, p, label);
      ++result.queries;
      for (std::size_t j = 0; j < p.size(); ++j) {
        p[j] -= step * (g[j] > 0.0 ? 1.0 : (g[j] < 0.0 ? -1.0 : 0.0));
        p[j] = std::clamp(p[j], x[j] - eps, x[j] + eps);
      }
      const double m = margin_at(net, p, label);
      ++result.queries;
      if (m < result.worst_margin) {
        result.worst_margin = m;
        if (m < 0.0) {
          result.success = true;
          result.adversarial = p;
          return result;
        }
      }
    }
  }
  return result;
}

double adversarial_accuracy(const ReluNetwork& net,
                            const std::vector<LabeledInput>& points,
                            double eps, const PgdOptions& options) {
  if (points.empty()) return 0.0;
  std::size_t robust = 0;
  PgdOptions opts = options;
  for (const auto& p : points) {
    ++opts.seed;  // decorrelate restarts across points
    if (!pgd_attack(net, p.x, eps, p.label, opts).success) ++robust;
  }
  return static_cast<double>(robust) / static_cast<double>(points.size());
}

}  // namespace rcr::verify
