#include "rcr/verify/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fallback.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/robust/guards.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/simd.hpp"

namespace rcr::verify {

namespace {
// Rows (output neurons) per parallel task in the bound-propagation loops.
// Small nets (every unit test) fall below this grain and run inline; wide
// production layers fan out across the pool.
constexpr std::size_t kNeuronGrain = 32;
}  // namespace

Vec Box::center() const {
  Vec c(lower.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = 0.5 * (lower[i] + upper[i]);
  return c;
}

Vec Box::radius() const {
  Vec r(lower.size());
  for (std::size_t i = 0; i < r.size(); ++i)
    r[i] = 0.5 * (upper[i] - lower[i]);
  return r;
}

double Box::max_width() const {
  double w = 0.0;
  for (std::size_t i = 0; i < lower.size(); ++i)
    w = std::max(w, upper[i] - lower[i]);
  return w;
}

Box Box::around(const Vec& x, double eps) {
  Box b;
  b.lower = x;
  b.upper = x;
  for (double& v : b.lower) v -= eps;
  for (double& v : b.upper) v += eps;
  return b;
}

void Box::validate() const {
  if (lower.size() != upper.size())
    throw std::invalid_argument("Box: dimension mismatch");
  for (std::size_t i = 0; i < lower.size(); ++i)
    if (lower[i] > upper[i])
      throw std::invalid_argument("Box: lower > upper");
}

std::string to_string(BoundMethod m) {
  return m == BoundMethod::kIbp ? "ibp" : "crown";
}

double LayerBounds::mean_width(std::size_t k) const {
  const Box& b = pre_activation.at(k);
  if (b.dim() == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < b.dim(); ++i) acc += b.upper[i] - b.lower[i];
  return acc / static_cast<double>(b.dim());
}

std::size_t LayerBounds::unstable_count(std::size_t k) const {
  const Box& b = pre_activation.at(k);
  std::size_t n = 0;
  for (std::size_t i = 0; i < b.dim(); ++i)
    if (b.lower[i] < 0.0 && b.upper[i] > 0.0) ++n;
  return n;
}

namespace {

// Apply a phase constraint to a pre-activation interval.  Returns false when
// the constraint empties the interval (infeasible branch).
// Snap ULP-scale inversions (which arise when two independently rounded
// bound computations are intersected) back to a point interval; report only
// genuine inversions.
bool repair_interval(double& l, double& u) {
  if (l <= u) return true;
  if (l - u <= 1e-9 * (1.0 + std::abs(l) + std::abs(u))) {
    const double mid = 0.5 * (l + u);
    l = mid;
    u = mid;
    return true;
  }
  return false;
}

bool apply_phase(int phase, double& l, double& u) {
  if (phase > 0) l = std::max(l, 0.0);
  if (phase < 0) u = std::min(u, 0.0);
  return repair_interval(l, u);
}

// ReLU activation interval from a (possibly phase-clipped) pre-activation
// interval.
void relu_interval(double l, double u, double& al, double& au) {
  al = std::max(l, 0.0);
  au = std::max(u, 0.0);
}

}  // namespace

LayerBounds ibp_bounds(const ReluNetwork& net, const Box& input) {
  net.validate();
  input.validate();
  obs::Span span("verify.ibp");
  LayerBounds out;
  out.pre_activation.reserve(net.layers.size());
  Vec mu = input.center();
  Vec r = input.radius();

  // Layer-persistent buffers: only the per-layer result boxes (which outlive
  // the loop inside `out`) allocate once the buffers have grown to the
  // widest layer.
  Vec mu_next;
  Vec r_next;

  for (std::size_t k = 0; k < net.layers.size(); ++k) {
    const AffineLayer& layer = net.layers[k];
    // mu' = W mu + b;  r' = |W| r.
    num::matvec_into(layer.w, mu, mu_next);
    for (std::size_t i = 0; i < mu_next.size(); ++i) mu_next[i] += layer.b[i];
    r_next.assign(layer.out_dim(), 0.0);
    const auto& K = rt::simd::active();
    rt::parallel_for(0, layer.w.rows(), kNeuronGrain,
                     [&](std::size_t i0, std::size_t i1) {
                       const std::size_t cols = layer.w.cols();
                       const double* pw = layer.w.data().data();
                       for (std::size_t i = i0; i < i1; ++i)
                         r_next[i] =
                             K.absdot_seq(0.0, pw + i * cols, r.data(), cols);
                     });

    out.pre_activation.emplace_back();
    Box& pre = out.pre_activation.back();
    pre.lower.resize(mu_next.size());
    pre.upper.resize(mu_next.size());
    for (std::size_t i = 0; i < mu_next.size(); ++i) {
      pre.lower[i] = mu_next[i] - r_next[i];
      pre.upper[i] = mu_next[i] + r_next[i];
    }

    if (k + 1 < net.layers.size()) {
      mu.assign(pre.lower.size(), 0.0);
      r.assign(pre.lower.size(), 0.0);
      for (std::size_t i = 0; i < pre.lower.size(); ++i) {
        double al;
        double au;
        relu_interval(pre.lower[i], pre.upper[i], al, au);
        mu[i] = 0.5 * (al + au);
        r[i] = 0.5 * (au - al);
      }
    } else {
      out.output = pre;
    }
  }
  obs::counter_add("rcr.verify.ibp_passes");
  span.attr("layers", static_cast<double>(net.layers.size()));
  return out;
}

namespace {

// Per-neuron linear ReLU relaxation coefficients over [l, u].
struct ReluRelax {
  double up_slope = 0.0;
  double up_intercept = 0.0;
  double low_slope = 0.0;  // intercept of lower relaxation is always 0
};

ReluRelax relax_neuron(double l, double u) {
  ReluRelax r;
  if (u <= 0.0) {
    return r;  // inactive: a = 0
  }
  if (l >= 0.0) {
    r.up_slope = 1.0;
    r.low_slope = 1.0;
    return r;  // active: a = z
  }
  r.up_slope = u / (u - l);
  r.up_intercept = -l * u / (u - l);
  // Adaptive lower bound (CROWN heuristic): identity when the interval leans
  // positive, zero otherwise.
  r.low_slope = (u >= -l) ? 1.0 : 0.0;
  return r;
}

struct CrownEngine {
  const ReluNetwork& net;
  const Box& input;
  const PhaseAssignment* phases;  // may be null
  const AlphaAssignment* alpha;   // may be null
  std::vector<Box> pre;           // clipped pre-activation bounds so far
  bool infeasible = false;

  int phase_of(std::size_t layer, std::size_t neuron) const {
    if (phases == nullptr) return 0;
    if (layer >= phases->size()) return 0;
    if (neuron >= (*phases)[layer].size()) return 0;
    return (*phases)[layer][neuron];
  }

  // Lower-relaxation slope for an unstable neuron: the tuned alpha when one
  // is supplied, the adaptive heuristic otherwise.
  double lower_slope_of(std::size_t layer, std::size_t neuron,
                        double heuristic) const {
    if (alpha == nullptr) return heuristic;
    if (layer >= alpha->size()) return heuristic;
    if (neuron >= (*alpha)[layer].size()) return heuristic;
    return (*alpha)[layer][neuron];
  }

  // Workspaces reused by every bound_layer call (and, within one call, by
  // every backward step j): once sized for the widest layer the backward
  // substitution performs no steady-state heap allocations beyond the
  // returned Box.
  Matrix lu, ll;        // linear forms being propagated
  Matrix lu_z, ll_z;    // forms after the ReLU substitution
  Matrix lu_next, ll_next;  // products (lu_z W_j) before the swap
  Vec cu, cl;
  Vec mv_scratch;
  // Relaxation coefficients, struct-of-arrays so the substitution kernels
  // stream one coefficient array per select.
  Vec rx_up_slope, rx_up_intercept, rx_low_slope;

  // Backward-propagate linear bounds for the pre-activations of layer k
  // (0-based), given clipped bounds for layers 0..k-1 in `pre`.
  Box bound_layer(std::size_t k) {
    const std::size_t n_out = net.layers[k].out_dim();
    // Linear forms: z_k <= LU * a_{j} + cu  and  z_k >= LL * a_j + cl,
    // initialized at a_{k-1}.
    lu = net.layers[k].w;
    ll = net.layers[k].w;
    cu = net.layers[k].b;
    cl = net.layers[k].b;

    for (std::size_t j = k; j-- > 0;) {
      // Substitute a_j = ReLU(z_j) using the per-neuron relaxations.  The
      // relaxation coefficients depend only on the column (neuron of layer
      // j), so they are computed once up front; the substitution itself is
      // parallel over output rows -- each row owns its lu_z/ll_z slices and
      // its cu/cl entry, and accumulates over columns in ascending order
      // exactly like the serial loop.
      const std::size_t width = net.layers[j].out_dim();
      rx_up_slope.resize(width);
      rx_up_intercept.resize(width);
      rx_low_slope.resize(width);
      for (std::size_t col = 0; col < width; ++col) {
        const double l = pre[j].lower[col];
        const double u = pre[j].upper[col];
        ReluRelax rx = relax_neuron(l, u);
        if (l < 0.0 && u > 0.0)
          rx.low_slope = lower_slope_of(j, col, rx.low_slope);
        rx_up_slope[col] = rx.up_slope;
        rx_up_intercept[col] = rx.up_intercept;
        rx_low_slope[col] = rx.low_slope;
      }
      lu_z.resize(n_out, width);
      ll_z.resize(n_out, width);
      const auto& K = rt::simd::active();
      rt::parallel_for(0, n_out, kNeuronGrain, [&](std::size_t r0,
                                                   std::size_t r1) {
        for (std::size_t row = r0; row < r1; ++row) {
          // Upper form: a positive coefficient picks the over-estimator
          // slope (and accumulates its intercept); a negative one picks the
          // under-estimator.  Lower form mirrored.  cu/cl are independent
          // accumulator chains, so splitting the original interleaved loop
          // into per-row kernel passes preserves every rounding.
          const double* lur = lu.data().data() + row * width;
          const double* llr = ll.data().data() + row * width;
          K.choose_mul(lur, rx_up_slope.data(), rx_low_slope.data(),
                       lu_z.data().data() + row * width, width);
          cu[row] = K.masked_dot_seq(cu[row], lur, rx_up_intercept.data(),
                                     width, true);
          K.choose_mul(llr, rx_low_slope.data(), rx_up_slope.data(),
                       ll_z.data().data() + row * width, width);
          cl[row] = K.masked_dot_seq(cl[row], llr, rx_up_intercept.data(),
                                     width, false);
        }
      });
      // Through the affine layer j: z_j = W_j a_{j-1} + b_j.
      num::matvec_into(lu_z, net.layers[j].b, mv_scratch);
      K.add(cu.data(), mv_scratch.data(), cu.data(), cu.size());
      num::matvec_into(ll_z, net.layers[j].b, mv_scratch);
      K.add(cl.data(), mv_scratch.data(), cl.data(), cl.size());
      num::multiply_into(lu_z, net.layers[j].w, lu_next);
      num::multiply_into(ll_z, net.layers[j].w, ll_next);
      std::swap(lu, lu_next);
      std::swap(ll, ll_next);
    }

    // Concretize on the input box.
    Box out;
    out.lower.assign(n_out, 0.0);
    out.upper.assign(n_out, 0.0);
    const auto& K = rt::simd::active();
    rt::parallel_for(0, n_out, kNeuronGrain, [&](std::size_t r0,
                                                 std::size_t r1) {
      const std::size_t dim = input.dim();
      for (std::size_t row = r0; row < r1; ++row) {
        out.upper[row] =
            K.choose_dot_seq(cu[row], lu.data().data() + row * dim,
                             input.upper.data(), input.lower.data(), dim);
        out.lower[row] =
            K.choose_dot_seq(cl[row], ll.data().data() + row * dim,
                             input.lower.data(), input.upper.data(), dim);
      }
    });
    return out;
  }

  LayerBounds run() {
    // Backward linear bounds with the adaptive lower slope are usually far
    // tighter than intervals, but are not *elementwise* dominant (the slope
    // heuristic can lose to plain intervals on some neurons).  Intersecting
    // with IBP restores elementwise dominance at negligible cost; both sets
    // are sound, so their intersection is too.
    const LayerBounds ibp = ibp_bounds(net, input);
    LayerBounds result;
    result.pre_activation.reserve(net.layers.size());
    pre.reserve(net.layers.size());
    for (std::size_t k = 0; k < net.layers.size(); ++k) {
      Box b = bound_layer(k);
      for (std::size_t i = 0; i < b.dim(); ++i) {
        b.lower[i] = std::max(b.lower[i], ibp.pre_activation[k].lower[i]);
        b.upper[i] = std::min(b.upper[i], ibp.pre_activation[k].upper[i]);
        repair_interval(b.lower[i], b.upper[i]);
      }
      // Record the raw bounds, then clip by phases for downstream layers.
      result.pre_activation.push_back(b);
      if (k + 1 < net.layers.size()) {
        for (std::size_t i = 0; i < b.dim(); ++i) {
          if (!apply_phase(phase_of(k, i), b.lower[i], b.upper[i]))
            infeasible = true;
        }
        if (infeasible) {
          // The branch admits no inputs; give vacuous (empty-set) bounds.
          for (std::size_t i = 0; i < b.dim(); ++i) {
            b.lower[i] = 0.0;
            b.upper[i] = 0.0;
          }
        }
      } else {
        result.output = b;
      }
      pre.push_back(b);
    }
    return result;
  }
};

}  // namespace

LayerBounds crown_bounds(const ReluNetwork& net, const Box& input) {
  net.validate();
  input.validate();
  obs::Span span("verify.crown");
  obs::counter_add("rcr.verify.crown_passes");
  CrownEngine engine{net, input, nullptr, nullptr, {}, false};
  return engine.run();
}

LayerBounds crown_bounds_with_phases(const ReluNetwork& net, const Box& input,
                                     const PhaseAssignment& phases) {
  net.validate();
  input.validate();
  obs::Span span("verify.crown");
  obs::counter_add("rcr.verify.crown_passes");
  CrownEngine engine{net, input, &phases, nullptr, {}, false};
  return engine.run();
}

LayerBounds crown_bounds_with_alpha(const ReluNetwork& net, const Box& input,
                                    const AlphaAssignment& alpha) {
  net.validate();
  input.validate();
  for (const auto& layer : alpha)
    for (double a : layer)
      if (a < 0.0 || a > 1.0)
        throw std::invalid_argument(
            "crown_bounds_with_alpha: alpha outside [0, 1]");
  obs::Span span("verify.crown");
  obs::counter_add("rcr.verify.crown_passes");
  CrownEngine engine{net, input, nullptr, &alpha, {}, false};
  return engine.run();
}

LayerBounds compute_bounds(const ReluNetwork& net, const Box& input,
                           BoundMethod method) {
  return method == BoundMethod::kIbp ? ibp_bounds(net, input)
                                     : crown_bounds(net, input);
}

namespace {

bool box_finite(const Box& b) {
  return robust::all_finite(b.lower) && robust::all_finite(b.upper);
}

}  // namespace

RobustBounds compute_bounds_robust(const ReluNetwork& net, const Box& input) {
  robust::FallbackChain<LayerBounds> chain("bounds");
  chain.add("crown", robust::Soundness::kRelaxation,
            [&]() -> robust::Result<LayerBounds> {
              robust::Result<LayerBounds> r;
              r.value = crown_bounds(net, input);
              if (!r.value.output.lower.empty() &&
                  robust::faults::should_inject("verify.crown.nan"))
                r.value.output.lower[0] =
                    std::numeric_limits<double>::quiet_NaN();
              if (!box_finite(r.value.output))
                r.status = robust::make_status(
                    robust::StatusCode::kNumericalFailure,
                    "CROWN output box is non-finite");
              return r;
            });
  chain.add("ibp", robust::Soundness::kRelaxation,
            [&]() -> robust::Result<LayerBounds> {
              return {ibp_bounds(net, input), robust::ok_status()};
            });
  robust::ChainOutcome<LayerBounds> out = chain.run();
  RobustBounds rb;
  rb.bounds = std::move(out.value);
  rb.method = out.step == "ibp" ? BoundMethod::kIbp : BoundMethod::kCrown;
  rb.status = std::move(out.status);
  return rb;
}

ReluEnvelope relu_envelope(double l, double u) {
  if (l > u) throw std::invalid_argument("relu_envelope: l > u");
  ReluEnvelope e;
  if (u <= 0.0 || l >= 0.0) {
    // Stable: the envelope is the function itself.
    e.upper_slope = l >= 0.0 ? 1.0 : 0.0;
    e.lower_slope = e.upper_slope;
    return e;
  }
  e.upper_slope = u / (u - l);
  e.upper_intercept = -l * u / (u - l);
  e.lower_slope = (u >= -l) ? 1.0 : 0.0;
  // Gap(z) = (upper) - max(lower_slope*z, relu(z)); maximized at z = 0 for
  // the triangle relaxation.
  e.max_gap = e.upper_intercept;
  return e;
}

TightnessReport tightness_report(const ReluNetwork& net, const Box& input) {
  const LayerBounds ibp = ibp_bounds(net, input);
  const LayerBounds crown = crown_bounds(net, input);
  TightnessReport report;
  for (std::size_t k = 0; k < net.layers.size(); ++k) {
    report.ibp_mean_width.push_back(ibp.mean_width(k));
    report.crown_mean_width.push_back(crown.mean_width(k));
    report.ibp_unstable.push_back(ibp.unstable_count(k));
    report.crown_unstable.push_back(crown.unstable_count(k));
  }
  return report;
}

}  // namespace rcr::verify
