#include "rcr/verify/certified.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "rcr/numerics/stable.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr::verify {

std::vector<LabeledPoint> make_blob_dataset(std::size_t classes,
                                            std::size_t per_class,
                                            double separation, double stddev,
                                            num::Rng& rng) {
  std::vector<LabeledPoint> out;
  for (std::size_t c = 0; c < classes; ++c) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(c) /
                       static_cast<double>(classes);
    const double cx = separation * std::cos(ang);
    const double cy = separation * std::sin(ang);
    for (std::size_t i = 0; i < per_class; ++i) {
      LabeledPoint p;
      p.x = {cx + rng.normal(0.0, stddev), cy + rng.normal(0.0, stddev)};
      p.label = c;
      out.push_back(std::move(p));
    }
  }
  return out;
}

CertifiedTrainer::CertifiedTrainer(const std::vector<std::size_t>& widths,
                                   std::uint64_t seed) {
  num::Rng rng(seed);
  net_ = ReluNetwork::random(widths, rng);
}

namespace {

struct LayerGrads {
  Matrix w;
  Vec b;
};

// One IBP forward/backward pass for a single sample; accumulates gradients
// scaled by `weight` into `grads` and returns the loss.  With eps == 0 this
// degenerates to the standard forward/backward pass.
double ibp_pass(const ReluNetwork& net, const Vec& x, std::size_t label,
                double eps, double weight, std::vector<LayerGrads>& grads) {
  const std::size_t depth = net.layers.size();

  // ---- Forward, caching everything backward needs.
  std::vector<Vec> mu(depth + 1), r(depth + 1);
  std::vector<Vec> lo(depth), hi(depth);
  mu[0] = x;
  r[0].assign(x.size(), eps);
  for (std::size_t k = 0; k < depth; ++k) {
    const AffineLayer& L = net.layers[k];
    Vec z = num::matvec(L.w, mu[k]);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += L.b[i];
    Vec rho(L.out_dim(), 0.0);
    for (std::size_t i = 0; i < L.w.rows(); ++i)
      for (std::size_t j = 0; j < L.w.cols(); ++j)
        rho[i] += std::abs(L.w(i, j)) * r[k][j];
    lo[k] = num::sub(z, rho);
    hi[k] = num::add(z, rho);
    if (k + 1 < depth) {
      mu[k + 1].assign(z.size(), 0.0);
      r[k + 1].assign(z.size(), 0.0);
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double al = std::max(lo[k][i], 0.0);
        const double au = std::max(hi[k][i], 0.0);
        mu[k + 1][i] = 0.5 * (al + au);
        r[k + 1][i] = 0.5 * (au - al);
      }
    }
  }

  // Worst-case logits: the true class at its lower bound, others at upper.
  const std::size_t classes = net.layers.back().out_dim();
  Vec z_wc(classes);
  for (std::size_t i = 0; i < classes; ++i)
    z_wc[i] = (i == label) ? lo[depth - 1][i] : hi[depth - 1][i];

  const Vec log_probs = num::log_softmax(z_wc);
  const double loss = -log_probs[label];

  // ---- Backward.
  // dL/dz_wc = softmax(z_wc) - onehot.
  Vec dz_wc(classes);
  for (std::size_t i = 0; i < classes; ++i)
    dz_wc[i] = std::exp(log_probs[i]) - (i == label ? 1.0 : 0.0);

  // Split into gradients w.r.t. lower/upper of the last layer:
  // l = z - rho, u = z + rho.
  Vec dlo(classes, 0.0), dhi(classes, 0.0);
  for (std::size_t i = 0; i < classes; ++i) {
    if (i == label) {
      dlo[i] = dz_wc[i];
    } else {
      dhi[i] = dz_wc[i];
    }
  }

  for (std::size_t k = depth; k-- > 0;) {
    const AffineLayer& L = net.layers[k];
    // dz = dlo + dhi;  drho = dhi - dlo.
    Vec dz = num::add(dlo, dhi);
    Vec drho = num::sub(dhi, dlo);

    // Affine backward.
    for (std::size_t i = 0; i < L.w.rows(); ++i) {
      grads[k].b[i] += weight * dz[i];
      for (std::size_t j = 0; j < L.w.cols(); ++j) {
        const double sgn = L.w(i, j) >= 0.0 ? 1.0 : -1.0;
        grads[k].w(i, j) +=
            weight * (dz[i] * mu[k][j] + drho[i] * r[k][j] * sgn);
      }
    }
    if (k == 0) break;

    // Propagate to the previous layer's (mu, r).
    Vec dmu(L.w.cols(), 0.0), dr(L.w.cols(), 0.0);
    for (std::size_t i = 0; i < L.w.rows(); ++i)
      for (std::size_t j = 0; j < L.w.cols(); ++j) {
        dmu[j] += L.w(i, j) * dz[i];
        dr[j] += std::abs(L.w(i, j)) * drho[i];
      }

    // Through the ReLU interval of layer k-1:
    // mu = (relu(l)+relu(u))/2, r = (relu(u)-relu(l))/2.
    dlo.assign(L.w.cols(), 0.0);
    dhi.assign(L.w.cols(), 0.0);
    for (std::size_t j = 0; j < L.w.cols(); ++j) {
      const double dal = 0.5 * (dmu[j] - dr[j]);
      const double dau = 0.5 * (dmu[j] + dr[j]);
      dlo[j] = lo[k - 1][j] > 0.0 ? dal : 0.0;
      dhi[j] = hi[k - 1][j] > 0.0 ? dau : 0.0;
    }
  }
  return loss;
}

}  // namespace

double CertifiedTrainer::accuracy(
    const std::vector<LabeledPoint>& test_set) const {
  if (test_set.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& p : test_set) {
    const Vec y = net_.forward(p.x);
    std::size_t arg = 0;
    for (std::size_t i = 1; i < y.size(); ++i)
      if (y[i] > y[arg]) arg = i;
    if (arg == p.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test_set.size());
}

double CertifiedTrainer::certified_accuracy(
    const std::vector<LabeledPoint>& test_set, double eps,
    BoundMethod method) const {
  if (test_set.empty()) return 0.0;
  std::size_t certified = 0;
  for (const auto& p : test_set) {
    const RobustnessResult r =
        certify_classification(net_, p.x, eps, p.label, method);
    if (r.verdict == Verdict::kVerified) ++certified;
  }
  return static_cast<double>(certified) /
         static_cast<double>(test_set.size());
}

CertifiedTrainReport CertifiedTrainer::train(
    const std::vector<LabeledPoint>& train_set,
    const std::vector<LabeledPoint>& test_set,
    const CertifiedTrainConfig& config) {
  if (train_set.empty())
    throw std::invalid_argument("CertifiedTrainer::train: empty dataset");

  CertifiedTrainReport report;
  std::vector<LayerGrads> grads(net_.layers.size());

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t k = 0; k < net_.layers.size(); ++k) {
      grads[k].w = Matrix(net_.layers[k].w.rows(), net_.layers[k].w.cols());
      grads[k].b.assign(net_.layers[k].b.size(), 0.0);
    }
    double total = 0.0;
    const double inv_n = 1.0 / static_cast<double>(train_set.size());
    for (const auto& p : train_set) {
      if (config.kappa > 0.0)
        total += config.kappa *
                 ibp_pass(net_, p.x, p.label, 0.0, config.kappa * inv_n, grads);
      if (config.kappa < 1.0)
        total += (1.0 - config.kappa) *
                 ibp_pass(net_, p.x, p.label, config.epsilon,
                          (1.0 - config.kappa) * inv_n, grads);
    }
    for (std::size_t k = 0; k < net_.layers.size(); ++k) {
      net_.layers[k].w -= config.learning_rate * grads[k].w;
      num::axpy(-config.learning_rate, grads[k].b, net_.layers[k].b);
    }
    report.loss_history.push_back(total * inv_n);
  }

  report.clean_accuracy = accuracy(test_set);
  report.certified_accuracy_ibp =
      certified_accuracy(test_set, config.epsilon, BoundMethod::kIbp);
  report.certified_accuracy_crown =
      certified_accuracy(test_set, config.epsilon, BoundMethod::kCrown);
  return report;
}

CertifiedTrainReport CertifiedTrainer::train_standard(
    const std::vector<LabeledPoint>& train_set,
    const std::vector<LabeledPoint>& test_set, CertifiedTrainConfig config) {
  config.kappa = 1.0;
  return train(train_set, test_set, config);
}

}  // namespace rcr::verify
