// Projected gradient descent (PGD) attacks: the empirical upper-bound
// counterpart to certification.  Together with the verifiers this brackets
// true robustness:
//   certified(IBP) <= certified(CROWN) <= exact-verified == truly robust
//                  <= PGD-survives.
// The adversarial-training literature the paper builds on (its refs [21],
// [23]) uses exactly this bracketing.
#pragma once

#include <cstdint>

#include "rcr/verify/relu_network.hpp"

namespace rcr::verify {

/// PGD options (L_inf threat model).
struct PgdOptions {
  std::size_t steps = 40;        ///< Gradient steps per restart.
  double step_fraction = 0.25;   ///< Step size as a fraction of eps.
  std::size_t restarts = 4;      ///< Random restarts inside the ball.
  std::uint64_t seed = 1;
};

/// Attack outcome.
struct AttackResult {
  bool success = false;       ///< Found an input classified differently.
  Vec adversarial;            ///< The misclassified input (when success).
  double worst_margin = 0.0;  ///< Smallest margin seen (negative = flipped).
  std::size_t queries = 0;    ///< Forward/backward evaluations used.
};

/// Gradient of the classification margin
/// m(x) = y_label(x) - max_{k != label} y_k(x) with respect to the input
/// (at points where the max and ReLU patterns are locally constant).
Vec margin_input_gradient(const ReluNetwork& net, const Vec& x,
                          std::size_t label);

/// L_inf PGD attack on the classification of `x`: minimize the margin within
/// the eps-ball.  Throws std::invalid_argument when label is out of range.
AttackResult pgd_attack(const ReluNetwork& net, const Vec& x, double eps,
                        std::size_t label, const PgdOptions& options = {});

/// Fraction of points whose classification PGD fails to flip at eps (the
/// empirical robust accuracy; an upper bound on certified accuracy).
struct LabeledInput {
  Vec x;
  std::size_t label = 0;
};
double adversarial_accuracy(const ReluNetwork& net,
                            const std::vector<LabeledInput>& points,
                            double eps, const PgdOptions& options = {});

}  // namespace rcr::verify
