// Layer-wise convex relaxations of ReLU networks (the heart of the RCR
// framework, Sec. II-B-2).
//
// Two bound propagators are provided:
//  - Interval Bound Propagation (IBP): the loosest convex relaxation, cheap.
//  - CROWN-style backward linear bounds: per-neuron linear under-/over-
//    estimators propagated back to the input -- the "tightest convex
//    under-estimator / concave over-estimator" (convex/concave envelope)
//    machinery of Sec. II-B applied to the ReLU nonlinearity.
//
// The per-layer width gap between the two quantifies the bound tightening
// the paper attributes to its relaxation stack (experiments E8/E12/E14).
#pragma once

#include "rcr/robust/status.hpp"
#include "rcr/verify/relu_network.hpp"

namespace rcr::verify {

/// Axis-aligned box {x : lower <= x <= upper}.
struct Box {
  Vec lower;
  Vec upper;

  std::size_t dim() const { return lower.size(); }
  Vec center() const;
  Vec radius() const;
  double max_width() const;

  /// L_inf ball of radius eps around x.
  static Box around(const Vec& x, double eps);

  /// Validates lower <= upper; throws std::invalid_argument.
  void validate() const;
};

/// Which relaxation computes the bounds.
enum class BoundMethod { kIbp, kCrown };

std::string to_string(BoundMethod m);

/// Pre-activation bounds for every layer plus output bounds.
struct LayerBounds {
  std::vector<Box> pre_activation;  ///< One Box per affine stage.
  Box output;                       ///< Bounds on the network output.

  /// Mean width of layer k's pre-activation box.
  double mean_width(std::size_t k) const;
  /// Number of unstable ReLUs (l < 0 < u) at layer k.
  std::size_t unstable_count(std::size_t k) const;
};

/// Interval bound propagation.
LayerBounds ibp_bounds(const ReluNetwork& net, const Box& input);

/// CROWN-style backward linear relaxation; strictly tighter than IBP.
LayerBounds crown_bounds(const ReluNetwork& net, const Box& input);

/// Dispatch on method.
LayerBounds compute_bounds(const ReluNetwork& net, const Box& input,
                           BoundMethod method);

/// Bounds with a built-in degradation path: CROWN first and, when its
/// output box comes back non-finite, the looser-but-sturdier IBP bounds.
/// Both are sound relaxations, so the fallback trades tightness only;
/// `method` records which propagator actually answered and the status trail
/// records why CROWN was rejected.
struct RobustBounds {
  LayerBounds bounds;
  BoundMethod method = BoundMethod::kCrown;
  robust::Status status;  ///< kOk (CROWN) or kDegraded (IBP fallback).
};
RobustBounds compute_bounds_robust(const ReluNetwork& net, const Box& input);

/// Neuron phase constraints used by the branch-and-bound verifier: clip the
/// pre-activation interval of selected neurons before the ReLU.
/// phases[k][i]: 0 = free, +1 = forced active (z >= 0), -1 = forced inactive.
using PhaseAssignment = std::vector<std::vector<int>>;

/// CROWN bounds under a phase assignment (sound relaxation of the
/// phase-constrained subproblem).
LayerBounds crown_bounds_with_phases(const ReluNetwork& net, const Box& input,
                                     const PhaseAssignment& phases);

/// Per-neuron lower-relaxation slopes alpha in [0, 1] (one Vec per hidden
/// layer).  ANY alpha in [0, 1] yields a sound lower estimator a >= alpha*z
/// for an unstable ReLU, so the slopes are free parameters the verifier may
/// tune -- the paper's "improve the bound tightening for each successive
/// neural network layer".  Empty entries fall back to the adaptive
/// heuristic.
using AlphaAssignment = std::vector<Vec>;

/// CROWN bounds with explicit lower slopes for unstable neurons.
/// Throws std::invalid_argument when an alpha lies outside [0, 1].
LayerBounds crown_bounds_with_alpha(const ReluNetwork& net, const Box& input,
                                    const AlphaAssignment& alpha);

/// ReLU convex envelope data on [l, u] (the triangle relaxation): the
/// tightest convex under-estimator is max(0, z); the tightest concave
/// over-estimator is the chord lambda*(z - l) with lambda = u/(u - l).
struct ReluEnvelope {
  double upper_slope = 0.0;      ///< lambda of the chord.
  double upper_intercept = 0.0;  ///< mu: over-estimator = lambda*z + mu.
  double lower_slope = 0.0;      ///< Adaptive linear under-estimator slope.
  /// Maximum vertical gap between the over- and under-estimator on [l, u]
  /// (0 when the neuron is stable).
  double max_gap = 0.0;
};

/// Envelope of ReLU on [l, u].  For stable neurons the relaxation is exact.
ReluEnvelope relu_envelope(double l, double u);

/// Per-layer tightness comparison between two bound sets.
struct TightnessReport {
  Vec ibp_mean_width;
  Vec crown_mean_width;
  std::vector<std::size_t> ibp_unstable;
  std::vector<std::size_t> crown_unstable;
};
TightnessReport tightness_report(const ReluNetwork& net, const Box& input);

}  // namespace rcr::verify
