// Convex-relaxation adversarial training (Sec. II-B-2): train a classifier
// on *worst-case* logits obtained from interval bound propagation, so the
// learned network is certifiably robust inside an eps-ball -- the
// "convex relaxation adversarial training ... aboard a DCGAN" ingredient of
// the paper's RCR recipe, realized with IBP (Gowal-style certified training).
//
// The trainer owns an explicit dense ReLU network and differentiates through
// the interval arithmetic by hand (mu/r propagation), so no autograd is
// needed.
#pragma once

#include <cstdint>

#include "rcr/verify/bounds.hpp"

namespace rcr::verify {

/// A labelled point for the 2D/low-dim classification tasks.
struct LabeledPoint {
  Vec x;
  std::size_t label = 0;
};

/// Gaussian-blob classification dataset: `classes` well-separated blobs.
std::vector<LabeledPoint> make_blob_dataset(std::size_t classes,
                                            std::size_t per_class,
                                            double separation, double stddev,
                                            num::Rng& rng);

/// Certified-training configuration.
struct CertifiedTrainConfig {
  std::size_t epochs = 60;
  double learning_rate = 5e-2;
  double epsilon = 0.1;        ///< Training-time robustness radius.
  double kappa = 0.5;          ///< Mix: kappa*clean + (1-kappa)*robust loss.
  std::uint64_t seed = 3;
};

/// Training outcome.
struct CertifiedTrainReport {
  Vec loss_history;                 ///< Mixed loss per epoch.
  double clean_accuracy = 0.0;
  double certified_accuracy_ibp = 0.0;   ///< Fraction certified at epsilon.
  double certified_accuracy_crown = 0.0;
};

/// Trainer for dense ReLU classifiers with an IBP robust loss.
class CertifiedTrainer {
 public:
  /// `widths` e.g. {2, 16, 16, 3}: input, hidden..., classes.
  CertifiedTrainer(const std::vector<std::size_t>& widths, std::uint64_t seed);

  /// Train on the dataset; returns the final report (accuracies computed on
  /// `test`).
  CertifiedTrainReport train(const std::vector<LabeledPoint>& train_set,
                             const std::vector<LabeledPoint>& test_set,
                             const CertifiedTrainConfig& config);

  /// Train with the plain (non-robust) cross-entropy only -- the baseline
  /// for the E8 comparison.  Equivalent to kappa = 1.
  CertifiedTrainReport train_standard(const std::vector<LabeledPoint>& train_set,
                                      const std::vector<LabeledPoint>& test_set,
                                      CertifiedTrainConfig config);

  const ReluNetwork& network() const { return net_; }

  /// Fraction of correctly-classified test points certified robust at eps
  /// with the given relaxed method.
  double certified_accuracy(const std::vector<LabeledPoint>& test_set,
                            double eps, BoundMethod method) const;

  /// Plain accuracy.
  double accuracy(const std::vector<LabeledPoint>& test_set) const;

 private:
  ReluNetwork net_;
};

}  // namespace rcr::verify
