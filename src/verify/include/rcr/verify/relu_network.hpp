// Explicit-weight ReLU networks: the representation the verification
// machinery operates on (affine -> ReLU -> ... -> affine).
//
// The RCR framework needs to reason about MSY3I-style networks layer by
// layer; this module extracts dense heads from nn::Sequential models and
// provides the generators used by the verifier tests and benches.
#pragma once

#include "rcr/nn/network.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::verify {

using num::Matrix;

/// One affine stage y = W x + b.
struct AffineLayer {
  Matrix w;
  Vec b;

  std::size_t in_dim() const { return w.cols(); }
  std::size_t out_dim() const { return w.rows(); }
};

/// Feed-forward ReLU network: affine stages with ReLU between them (no ReLU
/// after the final stage).
struct ReluNetwork {
  std::vector<AffineLayer> layers;

  std::size_t input_dim() const { return layers.front().in_dim(); }
  std::size_t output_dim() const { return layers.back().out_dim(); }
  std::size_t depth() const { return layers.size(); }

  /// Plain forward evaluation.
  Vec forward(const Vec& x) const;

  /// Pre-activation values at every layer (z_k = W_k a_{k-1} + b_k).
  std::vector<Vec> pre_activations(const Vec& x) const;

  /// Validates layer chaining; throws std::invalid_argument when
  /// inconsistent or empty.
  void validate() const;

  /// Random network with the given layer widths (e.g. {2, 16, 16, 3}),
  /// He-style initialization.
  static ReluNetwork random(const std::vector<std::size_t>& widths,
                            num::Rng& rng);

  /// Extract a dense ReLU network from an nn::Sequential composed solely of
  /// Dense and Relu layers; throws std::invalid_argument otherwise.
  static ReluNetwork from_sequential(nn::Sequential& net);
};

}  // namespace rcr::verify
