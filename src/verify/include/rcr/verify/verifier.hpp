// Robustness verifiers: the paper's "hybridized approach vector" of
// (1) exact/complete verification and (2) relaxed/incomplete verification
// (Sec. II-B-2).
//
// Relaxed: one-shot IBP or CROWN bound on the specification -- fast,
// sound, but incomplete (false negatives: robust inputs it cannot certify).
// Exact: branch-and-bound that bisects the input domain (optionally
// splitting unstable ReLU phases), with CROWN bounds per subdomain and
// concrete evaluations searching for counterexamples -- complete up to the
// configured budget, matching the paper's BnB/MIP exact-verifier family.
#pragma once

#include "rcr/verify/bounds.hpp"

namespace rcr::verify {

/// Linear output specification: verified iff  c^T y + d > 0  for every
/// reachable output y.
struct Spec {
  Vec c;
  double d = 0.0;

  double evaluate(const Vec& y) const { return num::dot(c, y) + d; }
};

/// Verification outcome.
enum class Verdict { kVerified, kFalsified, kUnknown };

std::string to_string(Verdict v);

/// Result of a verification query.
struct VerifyResult {
  Verdict verdict = Verdict::kUnknown;
  double lower_bound = 0.0;   ///< Best proven lower bound on c^T y + d.
  Vec counterexample;         ///< Input violating the spec (when falsified).
  std::size_t branches = 0;   ///< Subdomains explored (exact verifier).
};

/// One-shot relaxed verification with the chosen bound method.  Sound;
/// returns kUnknown instead of kFalsified unless the concrete center already
/// violates the spec.
VerifyResult verify_relaxed(const ReluNetwork& net, const Box& input,
                            const Spec& spec, BoundMethod method);

/// Relaxed verification with the CROWN -> IBP degradation chain: when the
/// CROWN bound comes back non-finite the query is re-answered with IBP
/// (still sound, just looser).  `method` records the propagator that
/// answered; the status trail records why CROWN was rejected.
struct RobustVerifyResult {
  VerifyResult result;
  BoundMethod method = BoundMethod::kCrown;
  robust::Status status;
};
RobustVerifyResult verify_relaxed_robust(const ReluNetwork& net,
                                         const Box& input, const Spec& spec);

/// Exact verifier options.
struct ExactOptions {
  std::size_t max_branches = 20000;  ///< Subdomain budget.
  double tolerance = 1e-9;           ///< Treat bounds within tol of 0 as 0.
  bool split_relu = true;            ///< Branch on unstable ReLUs first,
                                     ///< falling back to input bisection.
};

/// Complete branch-and-bound verification.
VerifyResult verify_exact(const ReluNetwork& net, const Box& input,
                          const Spec& spec, const ExactOptions& options = {});

/// Classification robustness: every class margin y_label - y_k (k != label)
/// stays positive over the eps-ball around x.
struct RobustnessResult {
  Verdict verdict = Verdict::kUnknown;
  double worst_margin_bound = 0.0;  ///< min over k of the proven bound.
  std::size_t branches = 0;
};

/// Relaxed classification robustness check.
RobustnessResult certify_classification(const ReluNetwork& net, const Vec& x,
                                        double eps, std::size_t label,
                                        BoundMethod method);

/// Exact classification robustness check.
RobustnessResult certify_classification_exact(
    const ReluNetwork& net, const Vec& x, double eps, std::size_t label,
    const ExactOptions& options = {});

/// Alpha bound tightening (the abstract's "improve the bound tightening for
/// each successive neural network layer"): coordinate descent over the
/// per-neuron lower-relaxation slopes to maximize the proven lower bound of
/// c^T y + d over the box.  Always sound; never worse than plain CROWN.
struct AlphaTightenOptions {
  std::size_t passes = 2;   ///< Coordinate-descent sweeps over all neurons.
  std::size_t grid = 5;     ///< Candidate slopes per neuron (0..1 inclusive).
};

struct AlphaTightenResult {
  double initial_bound = 0.0;    ///< Plain CROWN lower bound.
  double optimized_bound = 0.0;  ///< After alpha optimization (>= initial).
  AlphaAssignment alpha;         ///< The tuned slopes.
  std::size_t evaluations = 0;   ///< Bound computations performed.
};

AlphaTightenResult tighten_lower_bound_alpha(
    const ReluNetwork& net, const Box& input, const Spec& spec,
    const AlphaTightenOptions& options = {});

}  // namespace rcr::verify
