#include "rcr/verify/relu_network.hpp"

#include <stdexcept>

#include "rcr/nn/layers_basic.hpp"

namespace rcr::verify {

void ReluNetwork::validate() const {
  if (layers.empty())
    throw std::invalid_argument("ReluNetwork: no layers");
  for (std::size_t k = 0; k < layers.size(); ++k) {
    if (layers[k].b.size() != layers[k].w.rows())
      throw std::invalid_argument("ReluNetwork: bias/weight mismatch");
    if (k > 0 && layers[k].w.cols() != layers[k - 1].w.rows())
      throw std::invalid_argument("ReluNetwork: layer chaining mismatch");
  }
}

Vec ReluNetwork::forward(const Vec& x) const {
  Vec a = x;
  for (std::size_t k = 0; k < layers.size(); ++k) {
    Vec z = num::matvec(layers[k].w, a);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += layers[k].b[i];
    if (k + 1 < layers.size()) {
      for (double& v : z) v = v > 0.0 ? v : 0.0;
    }
    a = std::move(z);
  }
  return a;
}

std::vector<Vec> ReluNetwork::pre_activations(const Vec& x) const {
  std::vector<Vec> out;
  Vec a = x;
  for (std::size_t k = 0; k < layers.size(); ++k) {
    Vec z = num::matvec(layers[k].w, a);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += layers[k].b[i];
    out.push_back(z);
    if (k + 1 < layers.size()) {
      for (double& v : z) v = v > 0.0 ? v : 0.0;
    }
    a = std::move(z);
  }
  return out;
}

ReluNetwork ReluNetwork::random(const std::vector<std::size_t>& widths,
                                num::Rng& rng) {
  if (widths.size() < 2)
    throw std::invalid_argument("ReluNetwork::random: need >= 2 widths");
  ReluNetwork net;
  for (std::size_t k = 0; k + 1 < widths.size(); ++k) {
    AffineLayer layer;
    layer.w = Matrix(widths[k + 1], widths[k]);
    const double bound = nn::he_bound(widths[k]);
    for (std::size_t i = 0; i < layer.w.rows(); ++i)
      for (std::size_t j = 0; j < layer.w.cols(); ++j)
        layer.w(i, j) = rng.uniform(-bound, bound);
    layer.b = rng.uniform_vec(widths[k + 1], -0.1, 0.1);
    net.layers.push_back(std::move(layer));
  }
  return net;
}

ReluNetwork ReluNetwork::from_sequential(nn::Sequential& net) {
  ReluNetwork out;
  bool expect_affine = true;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      const auto params = dense->params();
      const Vec& w = *params[0].value;
      const Vec& b = *params[1].value;
      AffineLayer affine;
      affine.w = Matrix(dense->out_features(), dense->in_features());
      for (std::size_t r = 0; r < dense->out_features(); ++r)
        for (std::size_t c = 0; c < dense->in_features(); ++c)
          affine.w(r, c) = w[r * dense->in_features() + c];
      affine.b = b;
      out.layers.push_back(std::move(affine));
      expect_affine = false;
    } else if (dynamic_cast<nn::Relu*>(&layer) != nullptr) {
      if (expect_affine)
        throw std::invalid_argument(
            "ReluNetwork::from_sequential: ReLU before any Dense layer");
      expect_affine = true;
    } else {
      throw std::invalid_argument(
          "ReluNetwork::from_sequential: unsupported layer '" + layer.name() +
          "' (only Dense and Relu are extractable)");
    }
  }
  out.validate();
  return out;
}

}  // namespace rcr::verify
