#include "rcr/verify/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace rcr::verify {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kVerified:
      return "verified";
    case Verdict::kFalsified:
      return "falsified";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

// Fold the specification into the final affine layer, so bound propagation
// bounds c^T y + d directly (tighter than interval-combining the output
// box).  Composing into the existing layer -- rather than appending a new
// one -- matters: every non-final layer is followed by a ReLU, and a spec
// appended as an extra layer would insert a phantom ReLU after the network
// output, corrupting the bound.
ReluNetwork augment_with_spec(const ReluNetwork& net, const Spec& spec) {
  if (spec.c.size() != net.output_dim())
    throw std::invalid_argument("Spec: dimension mismatch with network output");
  ReluNetwork aug = net;
  AffineLayer& last = aug.layers.back();
  Matrix w_new(1, last.w.cols());
  double b_new = spec.d;
  for (std::size_t i = 0; i < spec.c.size(); ++i) {
    b_new += spec.c[i] * last.b[i];
    for (std::size_t j = 0; j < last.w.cols(); ++j)
      w_new(0, j) += spec.c[i] * last.w(i, j);
  }
  last.w = std::move(w_new);
  last.b = {b_new};
  return aug;
}

}  // namespace

VerifyResult verify_relaxed(const ReluNetwork& net, const Box& input,
                            const Spec& spec, BoundMethod method) {
  const ReluNetwork aug = augment_with_spec(net, spec);
  const LayerBounds bounds = compute_bounds(aug, input, method);

  VerifyResult result;
  result.lower_bound = bounds.output.lower[0];
  if (result.lower_bound > 0.0) {
    result.verdict = Verdict::kVerified;
    return result;
  }
  // Cheap falsification attempt at the center and corners of the box.
  const Vec center = input.center();
  if (spec.evaluate(net.forward(center)) < 0.0) {
    result.verdict = Verdict::kFalsified;
    result.counterexample = center;
    return result;
  }
  result.verdict = Verdict::kUnknown;
  return result;
}

RobustVerifyResult verify_relaxed_robust(const ReluNetwork& net,
                                         const Box& input, const Spec& spec) {
  // Shape errors still throw (augment_with_spec validates dimensions);
  // numerical failure of the propagator degrades CROWN -> IBP instead.
  const ReluNetwork aug = augment_with_spec(net, spec);
  RobustBounds rb = compute_bounds_robust(aug, input);

  RobustVerifyResult out;
  out.method = rb.method;
  out.status = std::move(rb.status);
  VerifyResult& result = out.result;
  result.lower_bound = rb.bounds.output.lower.empty()
                           ? -std::numeric_limits<double>::infinity()
                           : rb.bounds.output.lower[0];
  if (std::isfinite(result.lower_bound) && result.lower_bound > 0.0) {
    result.verdict = Verdict::kVerified;
    return out;
  }
  const Vec center = input.center();
  if (spec.evaluate(net.forward(center)) < 0.0) {
    result.verdict = Verdict::kFalsified;
    result.counterexample = center;
    return out;
  }
  result.verdict = Verdict::kUnknown;
  return out;
}

namespace {

struct BnbNode {
  Box box;
  PhaseAssignment phases;
  double lower_bound = 0.0;
  // Best ReLU split candidate under this node's bounds.
  bool has_unstable = false;
  std::size_t split_layer = 0;
  std::size_t split_neuron = 0;

  bool operator<(const BnbNode& other) const {
    // priority_queue pops the largest; we want the smallest lower bound.
    return lower_bound > other.lower_bound;
  }
};

// Compute the node's bound and split candidate.  Returns false when the
// phase assignment is infeasible on this box (vacuously verified).
bool evaluate_node(const ReluNetwork& aug, BnbNode& node) {
  const LayerBounds bounds =
      crown_bounds_with_phases(aug, node.box, node.phases);
  node.lower_bound = bounds.output.lower[0];
  node.has_unstable = false;
  double best_gap = 0.0;
  // Only hidden layers (all but the final affine) have ReLUs.
  for (std::size_t k = 0; k + 1 < aug.layers.size(); ++k) {
    const Box& pre = bounds.pre_activation[k];
    for (std::size_t i = 0; i < pre.dim(); ++i) {
      const int phase = (k < node.phases.size() && i < node.phases[k].size())
                            ? node.phases[k][i]
                            : 0;
      if (phase != 0) continue;
      if (pre.lower[i] < 0.0 && pre.upper[i] > 0.0) {
        const double gap = std::min(-pre.lower[i], pre.upper[i]);
        if (!node.has_unstable || gap > best_gap) {
          node.has_unstable = true;
          best_gap = gap;
          node.split_layer = k;
          node.split_neuron = i;
        }
      }
    }
  }
  return true;
}

PhaseAssignment with_phase(const ReluNetwork& aug, PhaseAssignment phases,
                           std::size_t layer, std::size_t neuron, int value) {
  if (phases.size() < aug.layers.size())
    phases.resize(aug.layers.size());
  if (phases[layer].size() < aug.layers[layer].out_dim())
    phases[layer].resize(aug.layers[layer].out_dim(), 0);
  phases[layer][neuron] = value;
  return phases;
}

}  // namespace

VerifyResult verify_exact(const ReluNetwork& net, const Box& input,
                          const Spec& spec, const ExactOptions& options) {
  const ReluNetwork aug = augment_with_spec(net, spec);

  VerifyResult result;
  std::priority_queue<BnbNode> queue;

  BnbNode root;
  root.box = input;
  evaluate_node(aug, root);

  // Falsification probe at the center.
  {
    const Vec center = input.center();
    if (spec.evaluate(net.forward(center)) < 0.0) {
      result.verdict = Verdict::kFalsified;
      result.counterexample = center;
      result.branches = 1;
      return result;
    }
  }
  queue.push(std::move(root));

  double best_lb = -std::numeric_limits<double>::infinity();
  while (!queue.empty()) {
    if (result.branches >= options.max_branches) {
      result.verdict = Verdict::kUnknown;
      result.lower_bound = queue.top().lower_bound;
      return result;
    }
    BnbNode node = queue.top();
    queue.pop();
    ++result.branches;
    best_lb = node.lower_bound;

    if (node.lower_bound > options.tolerance) {
      // The global minimum over remaining subdomains is this bound.
      result.verdict = Verdict::kVerified;
      result.lower_bound = node.lower_bound;
      return result;
    }

    // Concrete falsification probe at this subdomain's center.
    const Vec center = node.box.center();
    const double val = spec.evaluate(net.forward(center));
    if (val < 0.0) {
      result.verdict = Verdict::kFalsified;
      result.counterexample = center;
      result.lower_bound = val;
      return result;
    }

    // Branch: prefer ReLU phase splitting, fall back to input bisection.
    if (options.split_relu && node.has_unstable) {
      for (int phase : {+1, -1}) {
        BnbNode child;
        child.box = node.box;
        child.phases = with_phase(aug, node.phases, node.split_layer,
                                  node.split_neuron, phase);
        evaluate_node(aug, child);
        if (child.lower_bound <= options.tolerance) queue.push(std::move(child));
      }
    } else {
      // Bisect the widest input dimension.
      std::size_t dim = 0;
      double width = 0.0;
      for (std::size_t j = 0; j < node.box.dim(); ++j) {
        const double w = node.box.upper[j] - node.box.lower[j];
        if (w > width) {
          width = w;
          dim = j;
        }
      }
      if (width <= 1e-12) {
        // Degenerate box that still cannot be verified: numerical limit.
        result.verdict = Verdict::kUnknown;
        result.lower_bound = node.lower_bound;
        return result;
      }
      const double mid = 0.5 * (node.box.lower[dim] + node.box.upper[dim]);
      for (int side = 0; side < 2; ++side) {
        BnbNode child;
        child.box = node.box;
        child.phases = node.phases;
        if (side == 0) {
          child.box.upper[dim] = mid;
        } else {
          child.box.lower[dim] = mid;
        }
        evaluate_node(aug, child);
        if (child.lower_bound <= options.tolerance) queue.push(std::move(child));
      }
    }
  }

  // Queue drained: every subdomain was verified.
  result.verdict = Verdict::kVerified;
  result.lower_bound = std::max(best_lb, 0.0);
  return result;
}

namespace {

Spec margin_spec(std::size_t classes, std::size_t label, std::size_t other) {
  Spec s;
  s.c.assign(classes, 0.0);
  s.c[label] = 1.0;
  s.c[other] = -1.0;
  return s;
}

}  // namespace

RobustnessResult certify_classification(const ReluNetwork& net, const Vec& x,
                                        double eps, std::size_t label,
                                        BoundMethod method) {
  const Box ball = Box::around(x, eps);
  RobustnessResult out;
  out.verdict = Verdict::kVerified;
  out.worst_margin_bound = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < net.output_dim(); ++k) {
    if (k == label) continue;
    const VerifyResult r =
        verify_relaxed(net, ball, margin_spec(net.output_dim(), label, k),
                       method);
    out.worst_margin_bound = std::min(out.worst_margin_bound, r.lower_bound);
    if (r.verdict == Verdict::kFalsified) {
      out.verdict = Verdict::kFalsified;
      return out;
    }
    if (r.verdict != Verdict::kVerified) out.verdict = Verdict::kUnknown;
  }
  return out;
}

AlphaTightenResult tighten_lower_bound_alpha(const ReluNetwork& net,
                                             const Box& input,
                                             const Spec& spec,
                                             const AlphaTightenOptions& options) {
  const ReluNetwork aug = augment_with_spec(net, spec);

  AlphaTightenResult result;
  // Seed alphas from the adaptive heuristic so optimization starts at the
  // plain-CROWN bound.
  const LayerBounds base = crown_bounds(aug, input);
  result.initial_bound = base.output.lower[0];
  result.alpha.resize(aug.layers.size());
  for (std::size_t k = 0; k + 1 < aug.layers.size(); ++k) {
    const Box& pre = base.pre_activation[k];
    result.alpha[k].resize(pre.dim());
    for (std::size_t i = 0; i < pre.dim(); ++i)
      result.alpha[k][i] =
          (pre.upper[i] >= -pre.lower[i]) ? 1.0 : 0.0;  // CROWN heuristic
  }

  auto bound_at = [&](const AlphaAssignment& a) {
    return crown_bounds_with_alpha(aug, input, a).output.lower[0];
  };
  double best = bound_at(result.alpha);
  ++result.evaluations;

  for (std::size_t pass = 0; pass < options.passes; ++pass) {
    bool improved = false;
    for (std::size_t k = 0; k + 1 < aug.layers.size(); ++k) {
      const Box& pre = base.pre_activation[k];
      for (std::size_t i = 0; i < result.alpha[k].size(); ++i) {
        // Only unstable neurons have a free slope.
        if (!(pre.lower[i] < 0.0 && pre.upper[i] > 0.0)) continue;
        const double original = result.alpha[k][i];
        double best_here = original;
        for (std::size_t g = 0; g < options.grid; ++g) {
          const double candidate =
              static_cast<double>(g) / static_cast<double>(options.grid - 1);
          if (candidate == original) continue;
          result.alpha[k][i] = candidate;
          const double b = bound_at(result.alpha);
          ++result.evaluations;
          if (b > best) {
            best = b;
            best_here = candidate;
            improved = true;
          }
        }
        result.alpha[k][i] = best_here;
      }
    }
    if (!improved) break;
  }
  result.optimized_bound = best;
  return result;
}

RobustnessResult certify_classification_exact(const ReluNetwork& net,
                                              const Vec& x, double eps,
                                              std::size_t label,
                                              const ExactOptions& options) {
  const Box ball = Box::around(x, eps);
  RobustnessResult out;
  out.verdict = Verdict::kVerified;
  out.worst_margin_bound = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < net.output_dim(); ++k) {
    if (k == label) continue;
    const VerifyResult r = verify_exact(
        net, ball, margin_spec(net.output_dim(), label, k), options);
    out.branches += r.branches;
    out.worst_margin_bound = std::min(out.worst_margin_bound, r.lower_bound);
    if (r.verdict == Verdict::kFalsified) {
      out.verdict = Verdict::kFalsified;
      return out;
    }
    if (r.verdict != Verdict::kVerified) out.verdict = Verdict::kUnknown;
  }
  return out;
}

}  // namespace rcr::verify
