#include "rcr/rcr/adaptive.hpp"

#include <gtest/gtest.h>

namespace rcr::core {
namespace {

InertiaQpInstance sample_instance(std::uint64_t seed, std::size_t n = 6) {
  num::Rng rng(seed);
  InertiaQpInstance inst;
  inst.velocity_norm = rng.uniform_vec(n, 0.0, 3.0);
  inst.dist_to_gbest = rng.uniform_vec(n, 0.0, 5.0);
  return inst;
}

TEST(InertiaQp, SizeMismatchThrows) {
  InertiaQpInstance inst;
  inst.velocity_norm = {1.0, 2.0};
  inst.dist_to_gbest = {1.0};
  EXPECT_THROW(solve_inertia_qp_closed_form(inst), std::invalid_argument);
  EXPECT_THROW(solve_inertia_qp_barrier(inst), std::invalid_argument);
}

TEST(InertiaQp, ClosedFormInsideBox) {
  const InertiaQpInstance inst = sample_instance(1);
  const Vec w = solve_inertia_qp_closed_form(inst);
  for (double v : w) {
    EXPECT_GE(v, inst.w_min);
    EXPECT_LE(v, inst.w_max);
  }
}

class InertiaConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InertiaConsistency, BarrierAgreesWithClosedForm) {
  // The "M-GNU-O" consistency claim: the in-loop fast path solves exactly
  // the convex QP that the general-purpose barrier solver solves.
  const InertiaQpInstance inst = sample_instance(GetParam());
  EXPECT_LT(inertia_qp_consistency(inst), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InertiaConsistency,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(InertiaQp, ActiveBoxConstraintsHandledConsistently) {
  // Force clamping: enormous distances push the unconstrained optimum far
  // above w_max.
  InertiaQpInstance inst;
  inst.velocity_norm = {1.0, 1.0};
  inst.dist_to_gbest = {100.0, 0.0};
  const Vec closed = solve_inertia_qp_closed_form(inst);
  EXPECT_DOUBLE_EQ(closed[0], inst.w_max);
  const Vec barrier = solve_inertia_qp_barrier(inst);
  EXPECT_NEAR(barrier[0], inst.w_max, 1e-3);
}

}  // namespace
}  // namespace rcr::core
