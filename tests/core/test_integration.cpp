// Cross-module integration tests: the seams between substrates that the
// per-module suites cannot see.
#include <gtest/gtest.h>

#include <cstdio>

#include "rcr/nn/layers_basic.hpp"
#include "rcr/nn/msy3i.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/signal/griffin_lim.hpp"
#include "rcr/signal/spectrogram.hpp"
#include "rcr/verify/certified.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr {
namespace {

// ---- nn -> verify: train a dense classifier with the layer library, then
// extract and certify it with the verification machinery.
TEST(Integration, TrainedDenseClassifierIsExtractableAndCertifiable) {
  num::Rng rng(1);
  const auto train = verify::make_blob_dataset(3, 30, 1.0, 0.15, rng);

  nn::Sequential net;
  net.emplace<nn::Dense>(2, 12, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(12, 3, rng);

  nn::Adam opt(0.05);
  for (int epoch = 0; epoch < 150; ++epoch) {
    nn::Tensor x({train.size(), 2});
    std::vector<std::size_t> labels(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      x.at2(i, 0) = train[i].x[0];
      x.at2(i, 1) = train[i].x[1];
      labels[i] = train[i].label;
    }
    net.zero_grad();
    const nn::LossResult loss =
        nn::softmax_cross_entropy(net.forward(x, true), labels);
    net.backward(loss.grad);
    opt.step(net.params());
  }

  const verify::ReluNetwork extracted =
      verify::ReluNetwork::from_sequential(net);

  // Predictions agree between the two representations, and at least half of
  // the (well-separated) points certify at a small radius.
  std::size_t certified = 0;
  for (const auto& p : train) {
    const Vec y = extracted.forward(p.x);
    nn::Tensor xt({1, 2});
    xt.at2(0, 0) = p.x[0];
    xt.at2(0, 1) = p.x[1];
    const nn::Tensor ys = net.forward(xt, false);
    for (std::size_t k = 0; k < 3; ++k)
      ASSERT_NEAR(y[k], ys.at2(0, k), 1e-12);

    const auto r = verify::certify_classification(
        extracted, p.x, 0.03, p.label, verify::BoundMethod::kCrown);
    if (r.verdict == verify::Verdict::kVerified) ++certified;
  }
  EXPECT_GT(certified, train.size() / 2);
}

// ---- signal -> nn -> serialization: spectrogram dataset round-trips
// through training and a save/load cycle.
TEST(Integration, SpectrogramClassifierSurvivesSaveLoad) {
  num::Rng rng(2);
  const auto raw = sig::make_classification_dataset(6, 16, 0.05, rng);
  std::vector<nn::ImageSample> data;
  for (const auto& s : raw)
    data.push_back({s.image.pixels, s.image.height, s.image.width, s.label});

  nn::Msy3iConfig cfg;
  cfg.image_size = 16;
  cfg.classes = 3;
  cfg.stem_filters = 4;
  cfg.fire_squeeze = 2;
  cfg.fire_expand = 4;
  cfg.num_fire_blocks = 1;
  nn::Sequential net = nn::build_msy3i_classifier(cfg);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.learning_rate = 3e-3;
  nn::train_classifier(net, data, data, tc);

  const std::string path =
      std::string(::testing::TempDir()) + "integration_msy3i.txt";
  nn::save_parameters(net, path);
  nn::Sequential fresh = nn::build_msy3i_classifier(cfg);
  nn::load_parameters(fresh, path);
  EXPECT_DOUBLE_EQ(nn::evaluate_classifier(net, data),
                   nn::evaluate_classifier(fresh, data));
  std::remove(path.c_str());
}

// ---- signal round trip at system level: spectrogram -> Griffin-Lim ->
// spectrogram preserves the time-frequency structure an OFDM burst carries.
TEST(Integration, GriffinLimPreservesBurstEnergyProfile) {
  num::Rng rng(3);
  sig::OfdmParams params;
  const Vec burst = sig::ofdm_burst(params, rng);

  sig::StftConfig config;
  config.window = sig::make_window(sig::WindowKind::kHann, 64);
  config.hop = 16;
  config.fft_size = 64;
  const sig::TfGrid target = sig::magnitude_grid(sig::stft(burst, config));

  sig::GriffinLimOptions opts;
  opts.max_iterations = 40;
  const sig::GriffinLimResult rec =
      sig::griffin_lim(target, config, burst.size(), opts);

  // Per-bin mean energy profiles correlate strongly.
  auto profile = [&](const Vec& signal) {
    const sig::TfGrid g = sig::stft(signal, config);
    Vec out(g.bins() / 2, 0.0);
    for (std::size_t m = 0; m < out.size(); ++m)
      for (std::size_t fr = 0; fr < g.frames(); ++fr)
        out[m] += std::norm(g(m, fr));
    return out;
  };
  const Vec a = profile(burst);
  const Vec b = profile(rec.signal);
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  const double cosine = dot / (num::norm2(a) * num::norm2(b));
  EXPECT_GT(cosine, 0.99);
}

// ---- qos cross-solver invariant on a batch of random instances.
TEST(Integration, RraSolverOrderingInvariantAcrossSeeds) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    qos::ChannelConfig ch;
    ch.num_users = 3;
    ch.num_rbs = 5;
    ch.seed = seed;
    qos::RraProblem p;
    p.gain = qos::make_channel(ch).gain;
    p.total_power = 1.0;
    p.min_rate = Vec(3, 0.3);

    const double ub = qos::relaxation_upper_bound(p);
    const qos::RraSolution exact = qos::solve_exact(p);
    qos::RraPsoOptions opts;
    opts.seed = seed;
    const qos::RraSolution pso = qos::solve_pso(p, opts);

    EXPECT_GE(ub, exact.sum_rate - 1e-9) << "seed " << seed;
    if (pso.feasible && exact.feasible) {
      EXPECT_LE(pso.sum_rate, exact.sum_rate + 1e-9) << "seed " << seed;
    }
  }
}

// ---- verify: exact verifier agrees with brute-force sampling on the
// certified trainer's network (deeper soundness check at system level).
TEST(Integration, CertifiedNetworkExactVerdictsMatchSampling) {
  num::Rng rng(4);
  const auto train = verify::make_blob_dataset(3, 20, 1.0, 0.15, rng);
  verify::CertifiedTrainer trainer({2, 8, 3}, 5);
  verify::CertifiedTrainConfig cfg;
  cfg.epochs = 60;
  cfg.epsilon = 0.1;
  trainer.train(train, train, cfg);

  for (std::size_t i = 0; i < 5; ++i) {
    const auto& p = train[i * 7];
    const auto verdict = verify::certify_classification_exact(
        trainer.network(), p.x, 0.15, p.label);
    // Sample adversarially within the ball.
    bool found_flip = false;
    for (int trial = 0; trial < 500; ++trial) {
      Vec x = p.x;
      for (double& v : x) v += rng.uniform(-0.15, 0.15);
      const Vec y = trainer.network().forward(x);
      std::size_t arg = 0;
      for (std::size_t k = 1; k < y.size(); ++k)
        if (y[k] > y[arg]) arg = k;
      if (arg != p.label) found_flip = true;
    }
    if (verdict.verdict == verify::Verdict::kVerified) {
      EXPECT_FALSE(found_flip) << "point " << i;
    }
    if (found_flip) {
      EXPECT_NE(verdict.verdict, verify::Verdict::kVerified) << "point " << i;
    }
  }
}

}  // namespace
}  // namespace rcr
