#include "rcr/rcr/stack.hpp"

#include <gtest/gtest.h>

namespace rcr::core {
namespace {

RcrStackConfig tiny_config() {
  // Keep the integration run fast: small datasets, few PSO evaluations.
  RcrStackConfig cfg;
  cfg.train_per_class = 8;
  cfg.test_per_class = 4;
  cfg.pso_swarm = 3;
  cfg.pso_iterations = 2;
  cfg.tuning_epochs = 2;
  cfg.final_epochs = 4;
  cfg.certify_epochs = 25;
  cfg.qos_users = 2;
  cfg.qos_rbs = 4;
  cfg.seed = 21;
  return cfg;
}

TEST(RcrStack, TuningReturnsValidConfiguration) {
  RcrStack stack(tiny_config());
  const TuningResult r = stack.tune_hyperparameters();
  EXPECT_GT(r.evaluations, 0u);
  EXPECT_GE(r.best_accuracy, 0.0);
  EXPECT_LE(r.best_accuracy, 1.0);
  // The tuned configuration is buildable.
  nn::Sequential net = nn::build_msy3i_classifier(r.best_config);
  EXPECT_GT(net.param_count(), 0u);
}

TEST(RcrStack, EndToEndPipelineProducesCoherentReport) {
  RcrStack stack(tiny_config());
  const RcrStackReport report = stack.run();

  // Phase 3: the closed-form inertia QP matches the barrier solver.
  EXPECT_LT(report.inertia_qp_consistency, 1e-4);

  // Phase 2: tuning ran and produced a trainable model.
  EXPECT_GT(report.tuning.evaluations, 0u);
  EXPECT_GT(report.final_training.param_count, 0u);

  // Phase 1b: certified training produced sane numbers.
  EXPECT_GE(report.certified.clean_accuracy, 0.0);
  EXPECT_LE(report.certified.certified_accuracy_ibp, 1.0);
  EXPECT_GE(report.certified.certified_accuracy_crown,
            report.certified.certified_accuracy_ibp);

  // Layer-wise tightness: CROWN never looser than IBP.
  for (std::size_t k = 0; k < report.tightness.ibp_mean_width.size(); ++k)
    EXPECT_LE(report.tightness.crown_mean_width[k],
              report.tightness.ibp_mean_width[k] + 1e-9);

  // Phase 1c: relaxation bound >= exact >= PSO.
  EXPECT_GE(report.qos_relaxation_bound, report.qos_exact.sum_rate - 1e-9);
  EXPECT_LE(report.qos_pso.sum_rate, report.qos_exact.sum_rate + 1e-9);
  EXPECT_GT(report.qos_pso.sum_rate, 0.0);
}

TEST(RcrStack, DeterministicGivenSeed) {
  RcrStack a(tiny_config());
  RcrStack b(tiny_config());
  const TuningResult ra = a.tune_hyperparameters();
  const TuningResult rb = b.tune_hyperparameters();
  EXPECT_EQ(ra.best_objective, rb.best_objective);
  EXPECT_EQ(ra.evaluations, rb.evaluations);
}

}  // namespace
}  // namespace rcr::core
