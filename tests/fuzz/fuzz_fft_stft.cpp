// Structure-aware fuzz driver for the FFT/STFT stack.
//
// Default build: a standalone smoke binary.  It replays the deterministic
// builtin corpus, then runs a SplitMix64 mutation loop over it until the
// wall-clock budget expires (RCR_FUZZ_BUDGET_S, default 2 s for the ctest
// `fuzz-smoke` label; CI's dedicated leg raises it to 60 s).  Every input is
// pushed through fuzz_fft_stft_one, which re-checks the whole invariant
// stack: fft/ifft round trips, the O(N^2) reference, in-place bit identity,
// rfft/irfft, stft vs stft_into, frame-count consistency, and the COLA
// inverse.  On failure the offending buffer is dumped as hex with the
// mutation seed, and mirrored to RCR_TESTKIT_ARTIFACT_DIR for CI upload.
//
// With -DRCR_LIBFUZZER=1 (clang -fsanitize=fuzzer) the same harness exports
// LLVMFuzzerTestOneInput for coverage-guided exploration.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "rcr/testkit/env.hpp"
#include "rcr/testkit/fuzz.hpp"

namespace tk = rcr::testkit;

#if defined(RCR_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string diag = tk::fuzz_fft_stft_one(data, size);
  if (!diag.empty()) {
    std::fprintf(stderr, "invariant violated: %s\n", diag.c_str());
    __builtin_trap();
  }
  return 0;
}

#else  // standalone smoke driver

namespace {

std::string hex_dump(const std::vector<std::uint8_t>& buf) {
  std::ostringstream os;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    char b[4];
    std::snprintf(b, sizeof(b), "%02x", buf[i]);
    os << b;
  }
  return os.str();
}

int report_failure(const std::vector<std::uint8_t>& input,
                   const std::string& diag, std::uint64_t mutation_seed,
                   std::size_t iteration) {
  std::ostringstream os;
  os << "fuzz_fft_stft FAILED\n"
     << "  diagnostic:    " << diag << "\n"
     << "  iteration:     " << iteration << "\n"
     << "  mutation seed: " << mutation_seed << "\n"
     << "  input (" << input.size() << " bytes): " << hex_dump(input) << "\n";
  std::fprintf(stderr, "%s", os.str().c_str());
  const std::string artifact =
      tk::write_artifact("fuzz_fft_stft.crash.txt", os.str());
  if (!artifact.empty())
    std::fprintf(stderr, "  artifact:      %s\n", artifact.c_str());
  return 1;
}

}  // namespace

int main() {
  const double budget = tk::env_fuzz_budget_seconds(2.0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget);

  // Phase 1: deterministic corpus replay (always fully covered).
  const auto corpus = tk::builtin_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string diag =
        tk::fuzz_fft_stft_one(corpus[i].data(), corpus[i].size());
    if (!diag.empty()) return report_failure(corpus[i], diag, 0, i);
  }

  // Phase 2: budgeted deterministic mutation loop.  The seed sequence is
  // fixed, so iteration count (and thus coverage) depends only on the
  // budget, and any failure is reproducible from the printed seed.
  std::size_t iterations = 0;
  std::uint64_t seed = 0x5eedf022ull;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& base : corpus) {
      std::vector<std::uint8_t> input = base;
      seed = tk::splitmix64(seed);
      tk::mutate(input, seed, 6);
      const std::string diag =
          tk::fuzz_fft_stft_one(input.data(), input.size());
      if (!diag.empty()) return report_failure(input, diag, seed, iterations);
      ++iterations;
    }
  }

  std::printf("fuzz_fft_stft: %zu corpus + %zu mutated inputs clean "
              "(budget %.1fs)\n",
              corpus.size(), iterations, budget);
  return 0;
}

#endif  // RCR_LIBFUZZER
