// Structure-aware fuzz driver for the rcr::learn feasibility projections.
//
// A byte buffer decodes into a projection workload: a box case (bounds +
// point) and a simplex case (weights + total), with *raw u64 bit patterns*
// reinterpreted as doubles so NaN payloads, infinities, denormals, and
// huge magnitudes all reach the projections unsanitized -- the projections
// promise totality on exactly that input space.  Invariants re-checked per
// input: the projected point is feasible, projection is (bitwise, for the
// box) idempotent, and no exception escapes for in-contract bounds.
//
// Default build: standalone smoke binary (deterministic corpus + SplitMix64
// mutation loop under RCR_FUZZ_BUDGET_S, ctest label `fuzz-smoke`).  With
// -DRCR_LIBFUZZER=1 the same check exports LLVMFuzzerTestOneInput.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "rcr/learn/project.hpp"
#include "rcr/testkit/env.hpp"
#include "rcr/testkit/fuzz.hpp"

namespace tk = rcr::testkit;

namespace {

/// Raw bit-pattern double: unlike ByteReader::sample this is deliberately
/// NOT sanitized -- the projections must survive any of the 2^64 patterns.
double raw_double(tk::ByteReader& reader) {
  const std::uint64_t bits = reader.u64();
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

std::string fuzz_projection_one(const std::uint8_t* data, std::size_t size) {
  tk::ByteReader reader(data, size);

  // --- Box case: contract-valid bounds (finite, lo <= hi), raw point. ---
  const std::size_t n = reader.size_in(1, 48);
  rcr::learn::Vec lo(n), hi(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = reader.sample(100.0);
    const double width = std::abs(reader.sample(100.0));
    lo[i] = a;
    hi[i] = a + width;
    v[i] = raw_double(reader);
  }
  rcr::learn::Vec once, twice;
  try {
    once = rcr::learn::project_box(v, lo, hi);
    twice = rcr::learn::project_box(once, lo, hi);
  } catch (const std::exception& e) {
    return std::string("project_box threw on in-contract bounds: ") +
           e.what();
  }
  if (!rcr::learn::box_feasible(once, lo, hi))
    return "box projection not feasible";
  for (std::size_t i = 0; i < n; ++i)
    if (std::memcmp(&once[i], &twice[i], sizeof(double)) != 0)
      return "box projection not bitwise idempotent at " + std::to_string(i);

  // --- Simplex case: contract-valid total, raw weights. ---
  const std::size_t m = reader.size_in(1, 48);
  rcr::learn::Vec w(m);
  for (std::size_t i = 0; i < m; ++i) w[i] = raw_double(reader);
  const double total = std::abs(reader.sample(50.0));
  rcr::learn::Vec s, s2;
  try {
    s = rcr::learn::project_simplex(w, total);
    s2 = rcr::learn::project_simplex(s, total);
  } catch (const std::exception& e) {
    return std::string("project_simplex threw on in-contract total: ") +
           e.what();
  }
  if (!rcr::learn::simplex_feasible(s, total, 1e-9))
    return "simplex projection not feasible";
  for (std::size_t i = 0; i < m; ++i)
    if (std::abs(s[i] - s2[i]) > 1e-12 * std::max(1.0, std::abs(s[i])))
      return "simplex projection not idempotent at " + std::to_string(i);
  return std::string();
}

/// Seed corpus: hand-picked buffers hitting the corners -- empty input
/// (ByteReader zero-fills: n=1, zero box), all-0xff (NaN bit patterns,
/// max sizes), alternating bytes (denormal-ish patterns), and a long
/// mixed buffer exercising both cases at full width.
std::vector<std::vector<std::uint8_t>> projection_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});
  corpus.push_back(std::vector<std::uint8_t>(64, 0x00));
  corpus.push_back(std::vector<std::uint8_t>(256, 0xff));
  std::vector<std::uint8_t> alt(512);
  for (std::size_t i = 0; i < alt.size(); ++i)
    alt[i] = (i % 2) ? 0x7f : 0xf0;  // builds inf/NaN-exponent patterns
  corpus.push_back(alt);
  std::vector<std::uint8_t> mixed(1024);
  std::uint64_t s = 0x243f6a8885a308d3ull;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    s = tk::splitmix64(s);
    mixed[i] = static_cast<std::uint8_t>(s);
  }
  corpus.push_back(mixed);
  return corpus;
}

}  // namespace

#if defined(RCR_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string diag = fuzz_projection_one(data, size);
  if (!diag.empty()) {
    std::fprintf(stderr, "invariant violated: %s\n", diag.c_str());
    __builtin_trap();
  }
  return 0;
}

#else  // standalone smoke driver

namespace {

std::string hex_dump(const std::vector<std::uint8_t>& buf) {
  std::ostringstream os;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    char b[4];
    std::snprintf(b, sizeof(b), "%02x", buf[i]);
    os << b;
  }
  return os.str();
}

int report_failure(const std::vector<std::uint8_t>& input,
                   const std::string& diag, std::uint64_t mutation_seed,
                   std::size_t iteration) {
  std::ostringstream os;
  os << "fuzz_projection FAILED\n"
     << "  diagnostic:    " << diag << "\n"
     << "  iteration:     " << iteration << "\n"
     << "  mutation seed: " << mutation_seed << "\n"
     << "  input (" << input.size() << " bytes): " << hex_dump(input) << "\n";
  std::fprintf(stderr, "%s", os.str().c_str());
  const std::string artifact =
      tk::write_artifact("fuzz_projection.crash.txt", os.str());
  if (!artifact.empty())
    std::fprintf(stderr, "  artifact:      %s\n", artifact.c_str());
  return 1;
}

}  // namespace

int main() {
  const double budget = tk::env_fuzz_budget_seconds(2.0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget);

  const auto corpus = projection_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string diag =
        fuzz_projection_one(corpus[i].data(), corpus[i].size());
    if (!diag.empty()) return report_failure(corpus[i], diag, 0, i);
  }

  std::size_t iterations = 0;
  std::uint64_t seed = 0x5eedb0c5ull;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& base : corpus) {
      std::vector<std::uint8_t> input = base;
      seed = tk::splitmix64(seed);
      tk::mutate(input, seed, 6);
      const std::string diag =
          fuzz_projection_one(input.data(), input.size());
      if (!diag.empty()) return report_failure(input, diag, seed, iterations);
      ++iterations;
    }
  }

  std::printf("fuzz_projection: %zu corpus + %zu mutated inputs clean "
              "(budget %.1fs)\n",
              corpus.size(), iterations, budget);
  return 0;
}

#endif  // RCR_LIBFUZZER
