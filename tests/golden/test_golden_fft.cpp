// Committed bit-signature regressions for the FFT family on canonical
// inputs.  Any change to twiddle generation, Bluestein chirp handling, or
// accumulation order flips a signature here.
//
// Regenerate after an intentional change with:
//   RCR_REGEN_GOLDEN=1 ctest -L golden
// Toolchains that do not reproduce the committed bits can fall back to the
// tolerance facts with RCR_GOLDEN_STRICT=0.
#include <gtest/gtest.h>

#include "rcr/signal/fft.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
namespace sig = rcr::sig;
using rcr::Vec;

namespace {

std::string golden_path() { return std::string(RCR_GOLDEN_DIR) + "/fft.json"; }

sig::CVec canonical_complex(std::size_t n, std::uint64_t seed) {
  const Vec re = tk::canonical_signal(n, seed);
  const Vec im = tk::canonical_signal(n, seed + 1);
  sig::CVec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], im[i]};
  return x;
}

TEST(GoldenFft, Radix2Signatures) {
  tk::GoldenDb db(golden_path());
  EXPECT_EQ(db.check("fft_pow2_64", sig::fft(canonical_complex(64, 101))),
            "");
  EXPECT_EQ(db.check("fft_pow2_256", sig::fft(canonical_complex(256, 102))),
            "");
}

TEST(GoldenFft, BluesteinSignatures) {
  tk::GoldenDb db(golden_path());
  // Prime and highly composite non-power-of-two lengths exercise the
  // chirp-z path and its pad-size selection.
  EXPECT_EQ(db.check("fft_prime_57", sig::fft(canonical_complex(57, 103))),
            "");
  EXPECT_EQ(db.check("fft_composite_96",
                     sig::fft(canonical_complex(96, 104))),
            "");
}

TEST(GoldenFft, InverseSignature) {
  tk::GoldenDb db(golden_path());
  const sig::CVec x = canonical_complex(64, 105);
  EXPECT_EQ(db.check("ifft_pow2_64", sig::ifft(x)), "");
}

TEST(GoldenFft, RealTransformSignatures) {
  tk::GoldenDb db(golden_path());
  const Vec x = tk::canonical_signal(128, 106);
  const sig::CVec half = sig::rfft(x);
  EXPECT_EQ(db.check("rfft_128", half), "");
  EXPECT_EQ(db.check("irfft_128", sig::irfft(half, 128)), "");
}

}  // namespace
