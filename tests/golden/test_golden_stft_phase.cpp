// Golden regressions for the STFT phase-skew conventions (paper Sec. IV-B):
// the same canonical signal is transformed under the left-aligned STI
// convention (Eq. 6) and the center-referenced TI convention (Eq. 5), with
// both window normalization modes (raw and unit-L2), and each grid's bit
// signature is committed.  A silent change to the stored-window phase
// reference -- exactly the cross-library drift the paper documents -- flips
// these signatures even when magnitude spectra stay identical.
//
// Regenerate intentionally with RCR_REGEN_GOLDEN=1; loosen to tolerance
// facts with RCR_GOLDEN_STRICT=0.
#include <gtest/gtest.h>

#include <cmath>

#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
namespace sig = rcr::sig;
using rcr::Vec;

namespace {

std::string golden_path() {
  return std::string(RCR_GOLDEN_DIR) + "/stft_phase.json";
}

Vec normalized_l2(Vec w) {
  double sum_sq = 0.0;
  for (double v : w) sum_sq += v * v;
  const double inv = 1.0 / std::sqrt(sum_sq);
  for (double& v : w) v *= inv;
  return w;
}

sig::StftConfig base_config(sig::StftConvention convention, bool normalized,
                            std::size_t fft_size) {
  sig::StftConfig config;
  config.window = sig::make_window(sig::WindowKind::kHann, 32);
  if (normalized) config.window = normalized_l2(config.window);
  config.hop = 8;
  config.fft_size = fft_size;
  config.convention = convention;
  config.padding = sig::FramePadding::kCircular;
  return config;
}

Vec canonical() { return tk::canonical_signal(256, 11); }

TEST(GoldenStftPhase, ConventionAndNormalizationMatrix) {
  tk::GoldenDb db(golden_path());
  const Vec signal = canonical();
  const struct {
    const char* name;
    sig::StftConvention convention;
    bool normalized;
  } cases[] = {
      {"stft_sti_raw", sig::StftConvention::kSimplifiedTimeInvariant, false},
      {"stft_sti_l2norm", sig::StftConvention::kSimplifiedTimeInvariant,
       true},
      {"stft_ti_raw", sig::StftConvention::kTimeInvariant, false},
      {"stft_ti_l2norm", sig::StftConvention::kTimeInvariant, true},
  };
  for (const auto& c : cases) {
    const sig::StftConfig config = base_config(c.convention, c.normalized, 32);
    EXPECT_EQ(db.check(c.name, sig::stft(signal, config)), "") << c.name;
  }
}

TEST(GoldenStftPhase, ZeroPaddedGaussianSignatures) {
  // Zero-padded bins (fft_size > window length) move the phase-reference
  // index floor(Lg/2) relative to the bin count; committed for both
  // conventions.
  tk::GoldenDb db(golden_path());
  const Vec signal = canonical();
  for (const auto convention : {sig::StftConvention::kSimplifiedTimeInvariant,
                                sig::StftConvention::kTimeInvariant}) {
    sig::StftConfig config;
    config.window = sig::make_window(sig::WindowKind::kGaussian, 32);
    config.hop = 16;
    config.fft_size = 64;
    config.convention = convention;
    config.padding = sig::FramePadding::kCircular;
    const char* name =
        convention == sig::StftConvention::kTimeInvariant
            ? "stft_gauss_pad_ti"
            : "stft_gauss_pad_sti";
    EXPECT_EQ(db.check(name, sig::stft(signal, config)), "") << name;
  }
}

TEST(GoldenStftPhase, PhaseSkewIsRealAndConversionCancelsIt) {
  // Not a golden check but the invariant that makes the committed pairs
  // meaningful: the two conventions genuinely disagree in phase, and the
  // a-priori phase-factor conversion (applied to the STI of the Lg/2-delayed
  // signal, per Sec. IV-B) reconciles them.
  const Vec signal = canonical();
  const sig::TfGrid sti = sig::stft(
      signal,
      base_config(sig::StftConvention::kSimplifiedTimeInvariant, false, 32));
  const sig::TfGrid ti = sig::stft(
      signal, base_config(sig::StftConvention::kTimeInvariant, false, 32));
  ASSERT_NE(tk::expect_bits(sti, ti, "sti vs ti"), "")
      << "conventions should not coincide";
  EXPECT_GT(sig::max_phase_discrepancy(sti, ti, 1e-6 * ti.max_magnitude()),
            0.1);

  const std::size_t lg_half = 32 / 2;
  Vec delayed(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i)
    delayed[i] = signal[(i + signal.size() - lg_half) % signal.size()];
  const sig::TfGrid sti_delayed = sig::stft(
      delayed,
      base_config(sig::StftConvention::kSimplifiedTimeInvariant, false, 32));
  const sig::TfGrid converted = sig::convert_sti_to_ti(sti_delayed, 32, 32);
  EXPECT_LT(sig::TfGrid::max_abs_diff(converted, ti),
            1e-9 * (1.0 + ti.max_magnitude()));
}

TEST(GoldenStftPhase, RegenModeReportsItself) {
  // Make the regeneration path visible in test output so an accidental
  // RCR_REGEN_GOLDEN=1 in CI is noticed.
  tk::GoldenDb db(golden_path());
  if (db.regen_mode())
    GTEST_SKIP() << "RCR_REGEN_GOLDEN=1: rewrote " << db.path();
  SUCCEED();
}

}  // namespace
