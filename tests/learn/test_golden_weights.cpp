// Golden-weights regression for the learned warm-start artifact.
//
// The checked-in artifact (tests/golden/learn_warm_v1.txt) is the model the
// serve layer arms in production configs.  This suite pins:
//  - the artifact loads, hash-verifies, and meets a quality floor on a
//    freshly sampled serving workload;
//  - every way the file can be bad (missing, truncated, corrupted value,
//    wrong hash, wrong header, oversized shape) comes back as a clean
//    failed Status -- never a throw;
//  - save/load round-trips bit-exactly;
//  - RCR_REGEN_GOLDEN=1 retrains from the fixed seed and rewrites the file
//    (the same deterministic recipe twice yields the same bytes).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "rcr/learn/artifact.hpp"
#include "rcr/learn/train.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::learn {
namespace {

const char* kGoldenPath = RCR_GOLDEN_DIR "/learn_warm_v1.txt";

bool regen_requested() {
  const char* v = std::getenv("RCR_REGEN_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// The canonical recipe behind the checked-in artifact.  Fixed seeds make
/// regeneration deterministic: retraining on any machine writes the same
/// bytes.
serve::WorkloadConfig golden_workload() {
  serve::WorkloadConfig wc;  // defaults: 8 cells x 12 RBs, seed 42
  return wc;
}

TrainConfig golden_train_config() {
  TrainConfig tc;
  tc.hidden = 16;
  tc.unrolled_steps = 4;
  tc.epochs = 30;
  tc.lbfgs_iterations = 40;
  tc.seed = 0x9e3779b97f4a7c15ull;
  return tc;
}

WarmStartPredictor retrain_golden() {
  const std::vector<PowerQpData> dataset =
      serve::sample_power_qps(golden_workload(), 24);
  return train_predictor(dataset, golden_train_config());
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  f << content;
}

TEST(GoldenWeights, ArtifactLoadsVerifiesAndMeetsQualityFloor) {
  if (regen_requested()) {
    save_predictor(retrain_golden(), kGoldenPath);
    std::printf("regenerated %s\n", kGoldenPath);
  }
  const robust::Result<WarmStartPredictor> loaded =
      load_predictor(kGoldenPath);
  ASSERT_TRUE(loaded.status.ok()) << loaded.status.to_string();
  EXPECT_TRUE(loaded.value.shape_ok());
  EXPECT_EQ(loaded.value.version, kArtifactVersion);

  // Quality floor on an out-of-training workload slice: the learned start
  // must leave well under half of the cold start's projected-gradient
  // residual on average.
  serve::WorkloadConfig eval = golden_workload();
  eval.seed = 1234;  // different channel draws than training
  const std::vector<PowerQpData> dataset = serve::sample_power_qps(eval, 8);
  const double resid = mean_pg_residual(dataset, loaded.value, 1.0);
  EXPECT_LT(resid, 0.5) << "learned head quality regressed";
}

TEST(GoldenWeights, RegenRecipeIsDeterministic) {
  // The full golden recipe is exercised only when regenerating; here a
  // scaled-down version of the same pipeline must be bit-reproducible.
  serve::WorkloadConfig wc = golden_workload();
  wc.num_cells = 2;
  const std::vector<PowerQpData> dataset = serve::sample_power_qps(wc, 4);
  TrainConfig tc = golden_train_config();
  tc.epochs = 3;
  tc.lbfgs_iterations = 3;
  const std::uint64_t h1 = predictor_hash(train_predictor(dataset, tc));
  const std::uint64_t h2 = predictor_hash(train_predictor(dataset, tc));
  EXPECT_EQ(h1, h2);
}

TEST(GoldenWeights, SaveLoadRoundTripsBitExactly) {
  const WarmStartPredictor p = random_predictor(12, 3, 1.0, 2718);
  const std::string path = temp_path("roundtrip.txt");
  save_predictor(p, path);
  const robust::Result<WarmStartPredictor> r = load_predictor(path);
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(predictor_hash(r.value), predictor_hash(p));
  ASSERT_EQ(r.value.mlp.w1.size(), p.mlp.w1.size());
  for (std::size_t i = 0; i < p.mlp.w1.size(); ++i)
    EXPECT_EQ(r.value.mlp.w1[i], p.mlp.w1[i]);
  for (std::size_t i = 0; i < p.unrolled.log_rho.size(); ++i)
    EXPECT_EQ(r.value.unrolled.log_rho[i], p.unrolled.log_rho[i]);
  std::remove(path.c_str());
}

TEST(GoldenWeights, EveryCorruptionIsACleanStatusNotAThrow) {
  const WarmStartPredictor p = random_predictor(4, 2, 1.0, 99);
  const std::string base = temp_path("artifact.txt");
  save_predictor(p, base);
  const std::string good = slurp(base);
  ASSERT_FALSE(good.empty());

  const auto expect_load_fails = [&](const std::string& label,
                                     const std::string& content) {
    const std::string path = temp_path("corrupt.txt");
    spit(path, content);
    robust::Result<WarmStartPredictor> r;
    ASSERT_NO_THROW(r = load_predictor(path)) << label;
    EXPECT_FALSE(r.status.ok()) << label;
    EXPECT_EQ(r.status.code, robust::StatusCode::kNumericalFailure) << label;
    std::remove(path.c_str());
  };

  // Missing file.
  {
    robust::Result<WarmStartPredictor> r;
    ASSERT_NO_THROW(r = load_predictor(temp_path("no_such_file.txt")));
    EXPECT_FALSE(r.status.ok());
  }
  // Wrong header / version.
  expect_load_fails("bad header", "RCRLEARN v9\nmeta 4 2\n");
  expect_load_fails("garbage", "not an artifact at all\n");
  // Truncation (drop the last 5 lines: hash + tail of the alpha block).
  {
    std::istringstream in(good);
    std::vector<std::string> lines;
    for (std::string l; std::getline(in, l);) lines.push_back(l);
    ASSERT_GT(lines.size(), 5u);
    std::ostringstream out;
    for (std::size_t i = 0; i + 5 < lines.size(); ++i)
      out << lines[i] << "\n";
    expect_load_fails("truncated", out.str());
  }
  // A flipped value: hash must catch it.
  {
    std::string flipped = good;
    const std::size_t pos = flipped.find("\n0.");
    if (pos != std::string::npos) flipped[pos + 1] = '9';
    expect_load_fails("flipped value", flipped);
  }
  // An edited hash line.
  {
    std::string bad_hash = good;
    const std::size_t pos = bad_hash.find("hash ");
    ASSERT_NE(pos, std::string::npos);
    bad_hash[pos + 5] = bad_hash[pos + 5] == 'f' ? '0' : 'f';
    expect_load_fails("edited hash", bad_hash);
  }
  // A non-finite value (finite check runs before the hash check).
  {
    std::istringstream in(good);
    std::vector<std::string> lines;
    for (std::string l; std::getline(in, l);) lines.push_back(l);
    lines[3] = "nan";
    std::ostringstream out;
    for (const std::string& l : lines) out << l << "\n";
    expect_load_fails("non-finite value", out.str());
  }
  // Hidden width beyond the inference ceiling.
  expect_load_fails("oversized hidden",
                    "RCRLEARN v1\nmeta 100000 2\nblock w1 0\n");
  std::remove(base.c_str());
}

}  // namespace
}  // namespace rcr::learn
