// Chaos leg for the learned warm-start head (ISSUE satellite 3).
//
// The gated fault site `learn.head.corrupt` poisons every learned
// prediction with NaN before the warm-start contract sees it.  Under a
// full-rate storm the contract must reject every prediction (ticking
// rcr.warm.rejected{solver=learn}), fall through to the exact chain, and
// serve answers bit-identical to a service with the head disabled -- the
// learned head can degrade *performance*, never *answers*.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rcr/learn/predictor.hpp"
#include "rcr/obs/metrics.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/serve/service.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::learn {
namespace {

constexpr const char* kSite = "learn.head.corrupt";

double solver_counter(const std::string& name, const std::string& solver) {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == name && s.label_value == solver) return s.value;
  return 0.0;
}

serve::WorkloadConfig chaos_workload() {
  serve::WorkloadConfig wc;
  wc.num_cells = 4;
  wc.seed = 1337;
  return wc;
}

std::vector<std::uint64_t> run_ticks(serve::AllocationService& service,
                                     std::size_t ticks,
                                     std::size_t* learned_starts = nullptr) {
  serve::DiurnalWorkload wl(chaos_workload());
  std::vector<std::uint64_t> hashes;
  for (std::size_t t = 0; t < ticks; ++t) {
    wl.advance(t);
    const serve::TickReport report = service.tick(t, wl);
    hashes.push_back(report.solution_hash);
    if (learned_starts != nullptr) *learned_starts += report.learned_starts;
  }
  return hashes;
}

TEST(LearnChaos, SiteIsRegistered) {
  const std::vector<std::string>& sites =
      robust::faults::registered_sites();
  bool found = false;
  for (const std::string& s : sites) found = found || s == kSite;
  EXPECT_TRUE(found) << kSite << " missing from the fault registry";
}

TEST(LearnChaos, FullRateStormRejectsEveryPredictionAndPreservesAnswers) {
  obs::ScopedMetrics metrics;

  // Reference: the head-off service over the identical workload.
  serve::ServiceConfig off_cfg;
  serve::AllocationService off(off_cfg, chaos_workload().num_cells);
  const std::vector<std::uint64_t> clean = run_ticks(off, 8);

  serve::ServiceConfig on_cfg;
  on_cfg.learned.enabled = true;
  serve::AllocationService on(on_cfg, chaos_workload().num_cells);
  ASSERT_TRUE(on.arm_learned_head(random_predictor(8, 3, on_cfg.admm_rho,
                                                   20260809)));

  std::size_t learned_starts = 0;
  std::vector<std::uint64_t> stormed;
  {
    robust::faults::ScopedFaults scope(
        std::string("seed=7,rate=1,sites=") + kSite);
    stormed = run_ticks(on, 8, &learned_starts);
    EXPECT_GT(robust::faults::injection_count(kSite), 0u);
  }

  // Every corrupted prediction bounced off the contract: no learned start
  // ever reached the solver, so the served bits match the head-off run.
  EXPECT_EQ(learned_starts, 0u);
  EXPECT_GT(solver_counter("rcr.warm.rejected", "learn"), 0.0);
  ASSERT_EQ(stormed.size(), clean.size());
  for (std::size_t t = 0; t < clean.size(); ++t)
    EXPECT_EQ(stormed[t], clean[t]) << "tick " << t;

  // Every allocation still finished usable with finite power.
  for (std::size_t c = 0; c < chaos_workload().num_cells; ++c) {
    const serve::CellAllocation& a = on.allocation(c);
    EXPECT_TRUE(a.status.usable()) << "cell " << c;
    for (double p : a.power) EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(LearnChaos, PartialStormOnlyDegradesCorruptedCells) {
  obs::ScopedMetrics metrics;
  serve::ServiceConfig sc;
  sc.learned.enabled = true;
  serve::AllocationService service(sc, chaos_workload().num_cells);
  ASSERT_TRUE(
      service.arm_learned_head(random_predictor(8, 3, sc.admm_rho, 7)));

  robust::faults::ScopedFaults scope(
      std::string("seed=11,rate=0.5,sites=") + kSite);
  run_ticks(service, 12);
  const std::uint64_t injected = robust::faults::injection_count(kSite);
  EXPECT_GT(injected, 0u);
  // Rejections account one-for-one for injections: the contract catches
  // exactly the corrupted predictions, no more, no fewer.
  EXPECT_EQ(solver_counter("rcr.warm.rejected", "learn"),
            static_cast<double>(injected));
}

TEST(LearnChaos, UnarmedHeadNeverReachesTheFaultSite) {
  // With the head off (default config) the site has no callers: a
  // full-rate storm must record zero injections.
  robust::faults::ScopedFaults scope(
      std::string("seed=3,rate=1,sites=") + kSite);
  serve::ServiceConfig sc;  // learned.enabled defaults to false
  serve::AllocationService service(sc, chaos_workload().num_cells);
  run_ticks(service, 4);
  EXPECT_EQ(robust::faults::injection_count(kSite), 0u);
}

}  // namespace
}  // namespace rcr::learn
