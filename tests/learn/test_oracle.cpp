// Differential-oracle battery fencing the learned warm-start head
// (ISSUE satellite 1; extends the PR-8 warm-rejection counter tests).
//
// Over 1k+ seeded serving problems the suite bounds the learned head three
// ways against the exact solver:
//  - feasibility: every projected prediction is inside the box, dual
//    finite -- 100%, no tolerance games;
//  - optimality gap: the predicted primal's objective is within a fixed
//    normalized bound of the exact solver's, and never meaningfully below
//    it (the exact solve is the reference, not a competitor);
//  - contract: ADMM warm-started from an accepted learned state converges
//    to the same answer as a cold solve (bounded by the solver tolerance),
//    a *corrupted* learned state is rejected bit-for-bit (the PR-8
//    contract, now with solver=learn accounting at the serve layer), and
//    the served answer with the head armed matches the head-off answer on
//    assignment exactly and on power to solver tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "rcr/learn/artifact.hpp"
#include "rcr/learn/project.hpp"
#include "rcr/learn/train.hpp"
#include "rcr/obs/metrics.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/service.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::learn {
namespace {

const char* kGoldenPath = RCR_GOLDEN_DIR "/learn_warm_v1.txt";

/// Normalized objective-gap bound for the raw prediction (before the exact
/// solver runs).  The chain stays sound for any value -- this pins model
/// quality so a regression in training shows up as a test failure.
constexpr double kGapBound = 0.05;

WarmStartPredictor golden() {
  const robust::Result<WarmStartPredictor> loaded =
      load_predictor(kGoldenPath);
  EXPECT_TRUE(loaded.status.ok()) << loaded.status.to_string();
  return loaded.value;
}

std::vector<PowerQpData> oracle_dataset() {
  serve::WorkloadConfig wc;
  wc.num_cells = 16;
  wc.seed = 90210;  // disjoint from the training workload's seed
  return serve::sample_power_qps(wc, 64);  // 16 x 64 = 1024 problems
}

opt::AdmmResult exact_solve(const PowerQpData& data,
                            opt::AdmmWarmState* warm = nullptr) {
  const std::size_t n = data.n;
  num::Matrix p(n, n, 2.0 * data.lambda);
  for (std::size_t i = 0; i < n; ++i) p(i, i) += data.curv[i];
  opt::AdmmOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 20000;
  const opt::BoxQpFactor factor = opt::prefactor_box_qp(p, options.rho);
  return opt::admm_box_qp(p, factor, data.slope, data.lo, data.hi, options,
                          warm);
}

double solver_counter(const std::string& name, const std::string& solver) {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == name && s.label_value == solver) return s.value;
  return 0.0;
}

TEST(LearnOracle, ThousandProblemFeasibilityAndGapSweep) {
  const WarmStartPredictor predictor = golden();
  ASSERT_TRUE(predictor.shape_ok());
  const std::vector<PowerQpData> dataset = oracle_dataset();
  ASSERT_GE(dataset.size(), 1000u);

  std::size_t feasible = 0;
  double worst_gap = 0.0;
  Vec z, u, scratch;
  for (const PowerQpData& data : dataset) {
    const PowerQp qp = data.view();
    z.resize(qp.n);
    u.resize(qp.n);
    scratch.resize(2 * qp.n);
    predict_warm_start(qp, predictor, 1.0, z.data(), u.data(),
                       scratch.data());
    bool ok = box_feasible(z, data.lo, data.hi);
    for (double x : u) ok = ok && std::isfinite(x);
    feasible += ok ? 1 : 0;

    const opt::AdmmResult exact = exact_solve(data);
    ASSERT_TRUE(exact.status.usable());
    const double f_pred = qp_objective(qp, z.data());
    const double f_star = qp_objective(qp, exact.x.data());
    const double gap = (f_pred - f_star) / (1.0 + std::abs(f_star));
    EXPECT_GE(gap, -1e-8) << "prediction below the exact optimum";
    worst_gap = std::max(worst_gap, gap);
  }
  // 100% feasible, no exceptions: the projection is part of the predictor.
  EXPECT_EQ(feasible, dataset.size());
  EXPECT_LE(worst_gap, kGapBound);
}

TEST(LearnOracle, WarmStartedExactMatchesColdExactAfterAcceptance) {
  const WarmStartPredictor predictor = golden();
  const std::vector<PowerQpData> dataset = oracle_dataset();
  std::size_t accepted = 0;
  Vec z, u, scratch;
  for (std::size_t i = 0; i < 128; ++i) {
    const PowerQpData& data = dataset[i];
    const PowerQp qp = data.view();
    z.resize(qp.n);
    u.resize(qp.n);
    scratch.resize(2 * qp.n);
    predict_warm_start(qp, predictor, 1.0, z.data(), u.data(),
                       scratch.data());

    const opt::AdmmResult cold = exact_solve(data);
    opt::AdmmWarmState warm;
    warm.z.assign(z.begin(), z.end());
    warm.u.assign(u.begin(), u.end());
    const opt::AdmmResult warm_result = exact_solve(data, &warm);
    ASSERT_TRUE(warm_result.status.usable());
    ASSERT_EQ(warm_result.warm_use, opt::WarmUse::kAccepted);
    ++accepted;
    // Both runs hit the same fixed point to solver tolerance: the warm
    // start changes the path, never the destination.
    EXPECT_NEAR(warm_result.objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)));
    for (std::size_t j = 0; j < qp.n; ++j)
      EXPECT_NEAR(warm_result.x[j], cold.x[j], 1e-5)
          << "problem " << i << " coordinate " << j;
    // And the learned start must not cost iterations vs. cold.
    EXPECT_LE(warm_result.iterations, cold.iterations) << "problem " << i;
  }
  EXPECT_EQ(accepted, 128u);
}

TEST(LearnOracle, CorruptedLearnedStateIsRejectedBitForBit) {
  // The PR-8 rejection contract applied to learned states: a corrupt
  // prediction fed to the exact solver leaves the answer bit-identical to
  // a cold solve.
  const std::vector<PowerQpData> dataset = oracle_dataset();
  const PowerQpData& data = dataset[0];
  const opt::AdmmResult cold = exact_solve(data);

  opt::AdmmWarmState corrupt;
  corrupt.z.assign(data.n, 0.0);
  corrupt.u.assign(data.n, 0.0);
  corrupt.z[0] = std::numeric_limits<double>::quiet_NaN();
  const opt::AdmmResult r = exact_solve(data, &corrupt);
  EXPECT_EQ(r.warm_use, opt::WarmUse::kRejected);
  EXPECT_EQ(r.iterations, cold.iterations);
  for (std::size_t i = 0; i < data.n; ++i)
    ASSERT_EQ(std::memcmp(&r.x[i], &cold.x[i], sizeof(double)), 0);
}

TEST(LearnOracle, ServedAnswersMatchLearnedHeadOff) {
  // End-to-end differential oracle at the serve layer: same workload, one
  // service with the head armed, one without.  The assignment step runs
  // before the solver, so it must be *identical*; power converges to the
  // same tolerance-bounded fixed point; nothing is ever rejected on a
  // clean run.
  obs::ScopedMetrics metrics;
  serve::WorkloadConfig wc;
  wc.num_cells = 6;
  wc.seed = 4711;
  serve::DiurnalWorkload wl_off(wc);
  serve::DiurnalWorkload wl_on(wc);

  serve::ServiceConfig off_cfg;
  serve::ServiceConfig on_cfg;
  on_cfg.learned.enabled = true;
  serve::AllocationService off(off_cfg, wc.num_cells);
  serve::AllocationService on(on_cfg, wc.num_cells);
  ASSERT_TRUE(on.arm_learned_head(golden()));

  std::size_t learned_starts = 0;
  for (std::size_t t = 0; t < 24; ++t) {
    wl_off.advance(t);
    wl_on.advance(t);
    const serve::TickReport r_off = off.tick(t, wl_off);
    const serve::TickReport r_on = on.tick(t, wl_on);
    EXPECT_EQ(r_off.cells, r_on.cells);
    learned_starts += r_on.learned_starts;
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const serve::CellAllocation& a = off.allocation(c);
      const serve::CellAllocation& b = on.allocation(c);
      ASSERT_EQ(a.assignment.size(), b.assignment.size());
      for (std::size_t rb = 0; rb < a.assignment.size(); ++rb)
        EXPECT_EQ(a.assignment[rb], b.assignment[rb])
            << "tick " << t << " cell " << c << " rb " << rb;
      ASSERT_EQ(a.power.size(), b.power.size());
      for (std::size_t rb = 0; rb < a.power.size(); ++rb)
        EXPECT_NEAR(a.power[rb], b.power[rb], 1e-5)
            << "tick " << t << " cell " << c << " rb " << rb;
    }
  }
  // The head actually fired, and nothing was ever rejected on clean runs.
  EXPECT_GT(learned_starts, 0u);
  EXPECT_EQ(solver_counter("rcr.warm.rejected", "learn"), 0.0);
}

TEST(LearnOracle, LearnedOnServiceBitExactAcrossThreadModes) {
  const WarmStartPredictor predictor = golden();
  serve::WorkloadConfig wc;
  wc.num_cells = 4;
  wc.seed = 31;
  const auto run = [&](bool force_serial) {
    std::vector<std::uint64_t> hashes;
    serve::DiurnalWorkload wl(wc);
    serve::ServiceConfig sc;
    sc.learned.enabled = true;
    serve::AllocationService service(sc, wc.num_cells);
    EXPECT_TRUE(service.arm_learned_head(predictor));
    for (std::size_t t = 0; t < 12; ++t) {
      wl.advance(t);
      if (force_serial) {
        rt::ForceSerialGuard guard;
        hashes.push_back(service.tick(t, wl).solution_hash);
      } else {
        hashes.push_back(service.tick(t, wl).solution_hash);
      }
    }
    return hashes;
  };
  const std::vector<std::uint64_t> parallel = run(false);
  const std::vector<std::uint64_t> serial = run(true);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t t = 0; t < parallel.size(); ++t)
    EXPECT_EQ(parallel[t], serial[t]) << "tick " << t;
}

}  // namespace
}  // namespace rcr::learn
