// Property tests for the rcr::learn feasibility projections: totality on
// adversarial inputs (NaN/Inf/huge/degenerate), idempotence, feasibility,
// and schedule independence (a projection is a pure serial function, so its
// bits cannot depend on RCR_THREADS).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "rcr/learn/project.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/property.hpp"

namespace rcr::learn {
namespace {

namespace tk = rcr::testkit;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Vec adversarial_vec(num::Rng& rng, std::size_t n) {
  Vec v(n);
  for (double& x : v) {
    switch (rng.uniform_int(0, 5)) {
      case 0: x = kNan; break;
      case 1: x = kInf; break;
      case 2: x = -kInf; break;
      case 3: x = rng.normal(0.0, 1e200); break;
      case 4: x = 0.0; break;
      default: x = rng.normal(); break;
    }
  }
  return v;
}

struct BoxCase {
  Vec lo, hi, v;
};

tk::Gen<BoxCase> gen_box_case() {
  tk::Gen<BoxCase> g;
  g.sample = [](num::Rng& rng) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    BoxCase c;
    c.lo.resize(n);
    c.hi.resize(n);
    c.v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-10.0, 10.0);
      const double b = rng.uniform(-10.0, 10.0);
      c.lo[i] = std::min(a, b);
      c.hi[i] = std::max(a, b);
      c.v[i] = rng.uniform(-100.0, 100.0);
    }
    return c;
  };
  g.show = [](const BoxCase& c) {
    return "lo = " + tk::show_vec(c.lo) + ", hi = " + tk::show_vec(c.hi) +
           ", v = " + tk::show_vec(c.v);
  };
  return g;
}

struct SimplexCase {
  Vec v;
  double total = 1.0;
};

tk::Gen<SimplexCase> gen_simplex_case() {
  tk::Gen<SimplexCase> g;
  g.sample = [](num::Rng& rng) {
    SimplexCase c;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    c.v.resize(n);
    for (double& x : c.v) x = rng.uniform(-50.0, 50.0);
    c.total = rng.uniform(0.01, 20.0);
    return c;
  };
  g.show = [](const SimplexCase& c) {
    return "total = " + tk::show_double(c.total) +
           ", v = " + tk::show_vec(c.v);
  };
  return g;
}

TEST(ProjectBox, FeasibleAndBitwiseIdempotentOnRandomInputs) {
  RCR_EXPECT_PROP(tk::check<BoxCase>(
      "box projection feasible + idempotent", gen_box_case(),
      [](const BoxCase& c) {
        const Vec once = project_box(c.v, c.lo, c.hi);
        if (!box_feasible(once, c.lo, c.hi))
          return std::string("projection not feasible");
        const Vec twice = project_box(once, c.lo, c.hi);
        for (std::size_t i = 0; i < once.size(); ++i)
          if (std::memcmp(&once[i], &twice[i], sizeof(double)) != 0)
            return "not bitwise idempotent at " + std::to_string(i);
        return std::string();
      }));
}

TEST(ProjectBox, AdversarialInputsLandInBox) {
  num::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 16));
    Vec lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = rng.normal();
      hi[i] = lo[i] + std::abs(rng.normal());
    }
    const Vec v = adversarial_vec(rng, n);
    const Vec p = project_box(v, lo, hi);
    EXPECT_TRUE(box_feasible(p, lo, hi));
    // A non-finite coordinate must deterministically become the midpoint.
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(v[i])) {
        EXPECT_EQ(p[i], 0.5 * (lo[i] + hi[i]));
      }
    }
    const Vec pp = project_box(p, lo, hi);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], pp[i]);
  }
}

TEST(ProjectBox, DegenerateBoxAndBadBounds) {
  // Zero-width box: everything maps to the single point.
  const Vec p =
      project_box({kNan, 5.0, -3.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  for (double x : p) EXPECT_EQ(x, 1.0);
  EXPECT_THROW(project_box({0.0}, {1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(project_box({0.0}, {kNan}, {1.0}), std::invalid_argument);
  EXPECT_THROW(project_box({0.0}, {0.0}, {kInf}), std::invalid_argument);
  EXPECT_THROW(project_box({0.0, 0.0}, {0.0}, {1.0}),
               std::invalid_argument);
}

TEST(ProjectSimplex, FeasibleAndIdempotentOnRandomInputs) {
  RCR_EXPECT_PROP(tk::check<SimplexCase>(
      "simplex projection feasible + idempotent", gen_simplex_case(),
      [](const SimplexCase& c) {
        const Vec once = project_simplex(c.v, c.total);
        if (!simplex_feasible(once, c.total, 1e-9))
          return std::string("projection not feasible");
        const Vec twice = project_simplex(once, c.total);
        for (std::size_t i = 0; i < once.size(); ++i)
          if (std::abs(once[i] - twice[i]) >
              1e-12 * std::max(1.0, std::abs(once[i])))
            return "not idempotent at " + std::to_string(i);
        return std::string();
      }));
}

TEST(ProjectSimplex, AdversarialInputsStayFeasible) {
  num::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const Vec v = adversarial_vec(rng, n);
    const double total = std::abs(rng.normal()) + 0.1;
    const Vec p = project_simplex(v, total);
    EXPECT_TRUE(simplex_feasible(p, total, 1e-9))
        << "trial " << trial << " n=" << n;
  }
}

TEST(ProjectSimplex, EdgeCasesAndBadTotals) {
  EXPECT_TRUE(project_simplex({}, 1.0).empty());
  const Vec zeroed = project_simplex({3.0, kNan, -1.0}, 0.0);
  for (double x : zeroed) EXPECT_EQ(x, 0.0);
  // Single element: all mass on it regardless of input.
  EXPECT_EQ(project_simplex({kNan}, 2.5)[0], 2.5);
  EXPECT_THROW(project_simplex({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(project_simplex({1.0}, kNan), std::invalid_argument);
  EXPECT_THROW(project_simplex({1.0}, kInf), std::invalid_argument);
}

TEST(ProjectPsd, OutputIsPsdEvenForAdversarialMatrices) {
  num::Rng rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        switch (rng.uniform_int(0, 4)) {
          case 0: a(i, j) = kNan; break;
          case 1: a(i, j) = (i + j) % 2 ? kInf : -kInf; break;
          default: a(i, j) = rng.normal(); break;
        }
      }
    const Matrix p = rcr::learn::project_psd(a);
    const num::EigenDecomposition eig = num::eigen_symmetric(p);
    for (double ev : eig.eigenvalues)
      EXPECT_GE(ev, -1e-9) << "trial " << trial;
  }
  EXPECT_THROW(rcr::learn::project_psd(Matrix(2, 3)), std::invalid_argument);
}

TEST(Projection, BitExactAcrossThreadModes) {
  // Projections are pure serial functions; pin that down by comparing a
  // forced-serial run against the default (possibly pooled) environment.
  num::Rng rng(31337);
  const std::size_t n = 64;
  Vec lo(n), hi(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = -std::abs(rng.normal()) - 0.1;
    hi[i] = std::abs(rng.normal()) + 0.1;
    v[i] = rng.normal(0.0, 10.0);
  }
  const Vec box_parallel = project_box(v, lo, hi);
  const Vec simplex_parallel = project_simplex(v, 3.0);
  Vec box_serial, simplex_serial;
  {
    rt::ForceSerialGuard serial;
    box_serial = project_box(v, lo, hi);
    simplex_serial = project_simplex(v, 3.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(box_parallel[i], box_serial[i]);
    EXPECT_EQ(simplex_parallel[i], simplex_serial[i]);
  }
}

}  // namespace
}  // namespace rcr::learn
