// Unrolled-ADMM head and training-smoke tests: the plain-parameter head is
// a contraction toward the exact solution, parameters round-trip through
// pack/unpack, prediction is a deterministic pure function, and a tiny
// training run deterministically improves the warm-start residual.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "rcr/learn/predictor.hpp"
#include "rcr/learn/project.hpp"
#include "rcr/learn/train.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::learn {
namespace {

PowerQpData sample_problem(std::uint64_t seed, std::size_t n = 8) {
  num::Rng rng(seed);
  Vec gains(n);
  for (double& g : gains) g = std::abs(rng.normal(1.0, 0.5)) + 0.05;
  return make_power_qp(gains, 4.0);
}

// Exact solution via the opt-layer solver at tight tolerance.
Vec exact_solution(const PowerQpData& data, double rho = 1.0) {
  const std::size_t n = data.n;
  num::Matrix p(n, n, 2.0 * data.lambda);
  for (std::size_t i = 0; i < n; ++i) p(i, i) += data.curv[i];
  opt::AdmmOptions options;
  options.rho = rho;
  options.tolerance = 1e-12;
  options.max_iterations = 20000;
  const opt::AdmmResult r =
      opt::admm_box_qp(p, data.slope, data.lo, data.hi, options);
  EXPECT_TRUE(r.status.usable());
  return r.x;
}

TEST(Unrolled, PlainParamsContractTowardExactSolution) {
  const PowerQpData data = sample_problem(3);
  const PowerQp qp = data.view();
  const Vec exact = exact_solution(data);

  Vec z(qp.n, 0.0), u(qp.n, 0.0), scratch(qp.n);
  double prev = pg_residual(qp, z.data());
  for (int rounds = 0; rounds < 6; ++rounds) {
    unrolled_admm_run(qp, UnrolledParams::plain(10, 1.0), z.data(), u.data(),
                      scratch.data());
    const double resid = pg_residual(qp, z.data());
    EXPECT_LT(resid, prev) << "round " << rounds;
    prev = resid;
  }
  // 60 plain steps of the O(n) head reproduce the exact solver's answer.
  for (std::size_t i = 0; i < qp.n; ++i)
    EXPECT_NEAR(z[i], exact[i], 1e-6) << "coordinate " << i;
}

TEST(Unrolled, PackUnpackRoundTripAndValidation) {
  UnrolledParams p = UnrolledParams::plain(5, 2.0);
  p.log_rho[2] = -0.7;
  p.alpha[4] = 1.5;
  const UnrolledParams q = UnrolledParams::unpack(p.pack());
  ASSERT_EQ(q.steps(), p.steps());
  for (std::size_t k = 0; k < p.steps(); ++k) {
    EXPECT_EQ(q.log_rho[k], p.log_rho[k]);
    EXPECT_EQ(q.alpha[k], p.alpha[k]);
  }
  EXPECT_THROW(UnrolledParams::unpack(Vec(3, 0.0)), std::invalid_argument);
  EXPECT_THROW(UnrolledParams::plain(3, 0.0), std::invalid_argument);
}

TEST(Unrolled, DualRescaleKeepsMultiplierInvariant) {
  Vec u = {1.0, -2.0, 0.5};
  const Vec y = {2.0, -4.0, 1.0};  // rho * u at rho = 2.
  rescale_dual(u.data(), u.size(), 2.0, 8.0);
  for (std::size_t i = 0; i < u.size(); ++i)
    EXPECT_DOUBLE_EQ(8.0 * u[i], y[i]);
}

TEST(Predictor, OutputAlwaysBoxFeasibleAndDeterministic) {
  num::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const PowerQpData data =
        sample_problem(1000 + static_cast<std::uint64_t>(trial),
                       static_cast<std::size_t>(rng.uniform_int(1, 24)));
    const PowerQp qp = data.view();
    const WarmStartPredictor p = random_predictor(
        16, 4, 1.0, 4242 + static_cast<std::uint64_t>(trial));
    Vec z1(qp.n), u1(qp.n), z2(qp.n), u2(qp.n), scratch(2 * qp.n);
    predict_warm_start(qp, p, 1.0, z1.data(), u1.data(), scratch.data());
    EXPECT_TRUE(box_feasible(z1, data.lo, data.hi)) << "trial " << trial;
    for (double x : u1) EXPECT_TRUE(std::isfinite(x));
    predict_warm_start(qp, p, 1.0, z2.data(), u2.data(), scratch.data());
    for (std::size_t i = 0; i < qp.n; ++i) {
      EXPECT_EQ(std::memcmp(&z1[i], &z2[i], sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&u1[i], &u2[i], sizeof(double)), 0);
    }
  }
}

TEST(Predictor, ZeroPredictorSeedsFromAnalyticMinimizer) {
  const PowerQpData data = sample_problem(7);
  const PowerQp qp = data.view();
  // With no unrolled steps the zero-MLP primal is exactly the projected
  // unconstrained minimizer.
  const WarmStartPredictor p = zero_predictor(8, 0, 1.0);
  Vec z(qp.n), u(qp.n), scratch(2 * qp.n), d(qp.n);
  predict_warm_start(qp, p, 1.0, z.data(), u.data(), scratch.data());
  unconstrained_minimizer(qp, d.data());
  for (std::size_t i = 0; i < qp.n; ++i)
    EXPECT_EQ(z[i], std::clamp(d[i], data.lo[i], data.hi[i]));
}

TEST(Predictor, ShapeValidationRejectsMalformedWeights) {
  WarmStartPredictor p = random_predictor(8, 2, 1.0, 1);
  EXPECT_TRUE(p.shape_ok());
  p.mlp.w2.pop_back();
  EXPECT_FALSE(p.shape_ok());
  const PowerQpData data = sample_problem(1);
  Vec z(data.n), u(data.n), scratch(2 * data.n);
  EXPECT_THROW(predict_warm_start(data.view(), p, 1.0, z.data(), u.data(),
                                  scratch.data()),
               std::invalid_argument);
  EXPECT_THROW(random_predictor(0, 2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(random_predictor(kMaxHidden + 1, 2, 1.0, 1),
               std::invalid_argument);
}

TEST(TrainSmoke, TinyBudgetTrainingImprovesResidualDeterministically) {
  serve::WorkloadConfig wc;
  wc.num_cells = 4;
  wc.num_rbs = 8;
  wc.seed = 5;
  const std::vector<PowerQpData> dataset = serve::sample_power_qps(wc, 8);
  ASSERT_EQ(dataset.size(), 32u);

  TrainConfig tc;
  tc.hidden = 8;
  tc.unrolled_steps = 3;
  tc.epochs = 5;
  tc.lbfgs_iterations = 5;
  TrainReport report;
  const WarmStartPredictor trained = train_predictor(dataset, tc, &report);
  EXPECT_TRUE(trained.shape_ok());
  EXPECT_EQ(report.problems, dataset.size());
  // Stage A must not make the unsupervised objective worse, and the full
  // pipeline must beat a cold start (residual fraction < 1).
  EXPECT_LE(report.final_loss, report.initial_loss + 1e-12);
  EXPECT_LT(report.final_residual, 1.0);
  EXPECT_LE(report.final_residual, report.initial_residual + 1e-12);

  // Determinism: an identical run reproduces the weights bit-for-bit.
  const WarmStartPredictor again = train_predictor(dataset, tc);
  ASSERT_EQ(again.mlp.w1.size(), trained.mlp.w1.size());
  EXPECT_EQ(std::memcmp(again.mlp.w1.data(), trained.mlp.w1.data(),
                        trained.mlp.w1.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(again.unrolled.log_rho.data(),
                        trained.unrolled.log_rho.data(),
                        trained.unrolled.log_rho.size() * sizeof(double)),
            0);

  EXPECT_THROW(train_predictor({}, tc), std::invalid_argument);
}

}  // namespace
}  // namespace rcr::learn
