// Shared numerical gradient-check harness for layer tests.
//
// Now a thin GTest-asserting shim over rcr::testkit::grad_check, which owns
// the actual oracle (central finite differences of L = sum(w .* forward(x))
// against the analytic backward pass).  The testkit version returns a
// diagnostic instead of asserting, so the same check also runs inside
// property drivers; this wrapper preserves the original
// rcr::nn::testing::GradientCheck API for the existing layer tests.
#pragma once

#include <gtest/gtest.h>

#include "rcr/testkit/grad_check.hpp"

namespace rcr::nn::testing {

/// Scalar probe loss: L = sum_i w_i * y_i with fixed random weights, so the
/// upstream gradient is simply w.
struct GradientCheck {
  double tolerance = 1e-5;
  double step = 1e-6;
  bool training = true;

  void run(Layer& layer, const Tensor& input, std::uint64_t seed = 99) {
    rcr::testkit::GradCheckOptions opts;
    opts.tolerance = tolerance;
    opts.step = step;
    opts.training = training;
    opts.seed = seed;
    const rcr::testkit::GradCheckResult result =
        rcr::testkit::grad_check(layer, input, opts);
    EXPECT_TRUE(result.ok) << result.report;
  }
};

/// Random tensor filled with normals (avoiding exact ReLU kinks).
using rcr::testkit::random_tensor;

}  // namespace rcr::nn::testing
