// Shared numerical gradient-check harness for layer tests: verifies both the
// input gradient and every parameter gradient of a layer against central
// finite differences of a scalar loss L = sum(w .* forward(x)).
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/nn/layer.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::nn::testing {

/// Scalar probe loss: L = sum_i w_i * y_i with fixed random weights, so the
/// upstream gradient is simply w.
struct GradientCheck {
  double tolerance = 1e-5;
  double step = 1e-6;
  bool training = true;

  void run(Layer& layer, const Tensor& input, std::uint64_t seed = 99) {
    num::Rng rng(seed);
    // Nudge every parameter off zero: zero-initialized biases park ReLU
    // pre-activations exactly at the kink, where one-sided analytic and
    // centered numeric derivatives legitimately disagree.
    for (auto& p : layer.params())
      for (double& v : *p.value) v += rng.uniform(0.01, 0.05);
    // Fixed probe weights.
    Tensor probe_template = layer.forward(input, training);
    Vec w(probe_template.size());
    for (double& v : w) v = rng.normal();

    auto loss_at = [&](const Tensor& x) {
      const Tensor y = layer.forward(x, training);
      double acc = 0.0;
      for (std::size_t i = 0; i < y.size(); ++i) acc += w[i] * y[i];
      return acc;
    };

    // Analytic pass.
    for (auto& p : layer.params())
      for (double& g : *p.grad) g = 0.0;
    const Tensor y = layer.forward(input, training);
    Tensor upstream(y.shape());
    for (std::size_t i = 0; i < y.size(); ++i) upstream[i] = w[i];
    const Tensor grad_input = layer.backward(upstream);

    // Input gradient check.
    Tensor x = input;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double orig = x[i];
      x[i] = orig + step;
      const double lp = loss_at(x);
      x[i] = orig - step;
      const double lm = loss_at(x);
      x[i] = orig;
      const double numeric = (lp - lm) / (2.0 * step);
      EXPECT_NEAR(grad_input[i], numeric, tolerance)
          << layer.name() << " input grad at " << i;
    }

    // Parameter gradient check (grads were accumulated by backward above;
    // re-zero and recompute to isolate one clean accumulation).
    for (auto& p : layer.params())
      for (double& g : *p.grad) g = 0.0;
    layer.forward(input, training);
    layer.backward(upstream);
    for (auto& p : layer.params()) {
      for (std::size_t i = 0; i < p.value->size(); ++i) {
        const double orig = (*p.value)[i];
        (*p.value)[i] = orig + step;
        const double lp = loss_at(input);
        (*p.value)[i] = orig - step;
        const double lm = loss_at(input);
        (*p.value)[i] = orig;
        const double numeric = (lp - lm) / (2.0 * step);
        EXPECT_NEAR((*p.grad)[i], numeric, tolerance)
            << layer.name() << " param " << p.name << " at " << i;
      }
    }
  }
};

/// Random tensor filled with normals (avoiding exact ReLU kinks).
inline Tensor random_tensor(const std::vector<std::size_t>& shape,
                            std::uint64_t seed) {
  num::Rng rng(seed);
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    double v = rng.normal();
    if (std::abs(v) < 1e-3) v += 0.01;  // keep clear of kinks
    t[i] = v;
  }
  return t;
}

}  // namespace rcr::nn::testing
