#include "rcr/nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradient_check.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;

TEST(BatchNorm1d, NormalizesBatchStatistics) {
  BatchNorm1d layer(2);
  Tensor x({4, 2});
  for (std::size_t b = 0; b < 4; ++b) {
    x.at2(b, 0) = static_cast<double>(b) * 10.0;    // mean 15, nonzero var
    x.at2(b, 1) = 5.0 + static_cast<double>(b);      // mean 6.5
  }
  const Tensor y = layer.forward(x, /*training=*/true);
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t b = 0; b < 4; ++b) mean += y.at2(b, f) / 4.0;
    for (std::size_t b = 0; b < 4; ++b)
      var += (y.at2(b, f) - mean) * (y.at2(b, f) - mean) / 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm1d, ShapeValidation) {
  BatchNorm1d layer(3);
  EXPECT_THROW(layer.forward(Tensor({2, 4}), true), std::invalid_argument);
}

TEST(BatchNorm1d, EvalUsesRunningStatistics) {
  BatchNorm1d layer(1, /*momentum=*/1.0);  // running stats = last batch
  Tensor x({4, 1}, Vec{0.0, 2.0, 4.0, 6.0});  // mean 3, var 5
  layer.forward(x, /*training=*/true);
  EXPECT_NEAR(layer.running_mean()[0], 3.0, 1e-12);
  EXPECT_NEAR(layer.running_var()[0], 5.0, 1e-12);
  // Eval on a single sample equal to the running mean -> output ~ 0.
  Tensor probe({1, 1}, Vec{3.0});
  const Tensor y = layer.forward(probe, /*training=*/false);
  EXPECT_NEAR(y[0], 0.0, 1e-9);
}

TEST(BatchNorm1d, GammaBetaAffectOutput) {
  BatchNorm1d layer(1);
  auto params = layer.params();
  (*params[0].value)[0] = 2.0;  // gamma
  (*params[1].value)[0] = 1.0;  // beta
  Tensor x({2, 1}, Vec{-1.0, 1.0});
  const Tensor y = layer.forward(x, true);
  // Normalized inputs are -1 and 1 (var eps shifts slightly).
  EXPECT_NEAR(y[0], -2.0 + 1.0, 1e-2);
  EXPECT_NEAR(y[1], 2.0 + 1.0, 1e-2);
}

TEST(BatchNorm1d, GradientCheck) {
  BatchNorm1d layer(3);
  GradientCheck check;
  check.tolerance = 1e-4;
  check.run(layer, random_tensor({5, 3}, 30));
}

TEST(BatchNorm2d, PerChannelNormalization) {
  BatchNorm2d layer(2);
  const Tensor x = random_tensor({3, 2, 4, 4}, 31);
  const Tensor y = layer.forward(x, true);
  // Each channel has ~zero mean and ~unit variance across batch+space.
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    std::size_t count = 0;
    for (std::size_t b = 0; b < 3; ++b)
      for (std::size_t h = 0; h < 4; ++h)
        for (std::size_t w = 0; w < 4; ++w) {
          mean += y.at4(b, c, h, w);
          ++count;
        }
    mean /= static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(BatchNorm2d, ShapeValidation) {
  BatchNorm2d layer(3);
  EXPECT_THROW(layer.forward(Tensor({1, 2, 4, 4}), true),
               std::invalid_argument);
}

TEST(BatchNorm2d, GradientCheck) {
  BatchNorm2d layer(2);
  GradientCheck check;
  check.tolerance = 1e-4;
  check.run(layer, random_tensor({3, 2, 3, 3}, 32));
}

TEST(BatchNormPlacement, Names) {
  EXPECT_EQ(to_string(BatchNormPlacement::kNone), "none");
  EXPECT_EQ(to_string(BatchNormPlacement::kSelective), "selective");
  EXPECT_EQ(to_string(BatchNormPlacement::kAllLayers), "all-layers");
}

}  // namespace
}  // namespace rcr::nn
