// ConvTranspose2d: shape algebra, agreement with the naive scatter
// definition, and full gradient checks (input + weight + bias) via the
// shared finite-difference harness.
#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "rcr/nn/conv.hpp"
#include "rcr/testkit/ulp.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;

// Naive scatter definition: every input element distributes its value
// through the kernel into the (possibly strided) output window.
Tensor scatter_reference(ConvTranspose2d& layer, const Tensor& input,
                         std::size_t stride, std::size_t padding) {
  const auto params = layer.params();
  const Vec& weight = *params[0].value;
  const Vec& bias = *params[1].value;
  const std::size_t in_ch = layer.in_channels();
  const std::size_t out_ch = layer.out_channels();
  const std::size_t k = layer.kernel();
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = (h - 1) * stride + k - 2 * padding;
  const std::size_t ow = (w - 1) * stride + k - 2 * padding;

  Tensor out({batch, out_ch, oh, ow});
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t o = 0; o < out_ch; ++o)
      for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x) out.at4(b, o, y, x) = bias[o];
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t i = 0; i < in_ch; ++i)
      for (std::size_t iy = 0; iy < h; ++iy)
        for (std::size_t ix = 0; ix < w; ++ix)
          for (std::size_t o = 0; o < out_ch; ++o)
            for (std::size_t r = 0; r < k; ++r)
              for (std::size_t c = 0; c < k; ++c) {
                const std::ptrdiff_t y =
                    static_cast<std::ptrdiff_t>(iy * stride + r) -
                    static_cast<std::ptrdiff_t>(padding);
                const std::ptrdiff_t x =
                    static_cast<std::ptrdiff_t>(ix * stride + c) -
                    static_cast<std::ptrdiff_t>(padding);
                if (y < 0 || y >= static_cast<std::ptrdiff_t>(oh) || x < 0 ||
                    x >= static_cast<std::ptrdiff_t>(ow))
                  continue;
                out.at4(b, o, static_cast<std::size_t>(y),
                        static_cast<std::size_t>(x)) +=
                    input.at4(b, i, iy, ix) *
                    weight[((i * out_ch + o) * k + r) * k + c];
              }
  return out;
}

TEST(ConvTranspose2d, OutputShapeMatchesFormula) {
  num::Rng rng(1);
  const struct {
    std::size_t h, w, k, stride, pad, oh, ow;
  } cases[] = {
      {4, 4, 4, 2, 1, 8, 8},    // the DCGAN doubling block
      {4, 6, 3, 1, 1, 4, 6},    // same-size refinement
      {3, 3, 2, 2, 0, 6, 6},    // exact doubling, no padding
      {1, 1, 5, 3, 2, 1, 1},    // single pixel
      {5, 2, 3, 3, 0, 15, 6},   // stride > kernel leaves gaps
  };
  for (const auto& c : cases) {
    ConvTranspose2d layer(2, 3, c.k, c.stride, c.pad, rng);
    const Tensor out =
        layer.forward(random_tensor({2, 2, c.h, c.w}, 5), true);
    EXPECT_EQ(out.dim(0), 2u);
    EXPECT_EQ(out.dim(1), 3u);
    EXPECT_EQ(out.dim(2), c.oh) << "k=" << c.k << " s=" << c.stride;
    EXPECT_EQ(out.dim(3), c.ow) << "k=" << c.k << " s=" << c.stride;
  }
}

TEST(ConvTranspose2d, MatchesScatterReference) {
  num::Rng rng(2);
  const struct {
    std::size_t k, stride, pad;
  } cases[] = {{4, 2, 1}, {3, 1, 1}, {2, 2, 0}, {3, 3, 1}, {1, 1, 0}};
  for (const auto& c : cases) {
    ConvTranspose2d layer(2, 2, c.k, c.stride, c.pad, rng);
    const Tensor input = random_tensor({2, 2, 3, 4}, 7 + c.k);
    const Tensor out = layer.forward(input, true);
    const Tensor ref = scatter_reference(layer, input, c.stride, c.pad);
    ASSERT_EQ(out.shape(), ref.shape());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_NEAR(out[i], ref[i], 1e-12)
          << "k=" << c.k << " s=" << c.stride << " p=" << c.pad << " at "
          << i;
  }
}

TEST(ConvTranspose2d, Kernel1Stride1IsAPerPixelChannelMix) {
  // With k=1, s=1, p=0 the layer is a pointwise linear map across channels:
  // out[o](y,x) = bias[o] + sum_i w[i][o] * in[i](y,x).
  num::Rng rng(3);
  ConvTranspose2d layer(3, 2, 1, 1, 0, rng);
  const Vec& weight = *layer.params()[0].value;
  const Vec& bias = *layer.params()[1].value;
  const Tensor input = random_tensor({1, 3, 2, 2}, 9);
  const Tensor out = layer.forward(input, true);
  for (std::size_t o = 0; o < 2; ++o)
    for (std::size_t y = 0; y < 2; ++y)
      for (std::size_t x = 0; x < 2; ++x) {
        double expect = bias[o];
        for (std::size_t i = 0; i < 3; ++i)
          expect += weight[i * 2 + o] * input.at4(0, i, y, x);
        EXPECT_NEAR(out.at4(0, o, y, x), expect, 1e-13);
      }
}

TEST(ConvTranspose2d, GradientsMatchFiniteDifferences) {
  // The DCGAN doubling configuration (k=4, s=2, p=1) plus a gap-producing
  // stride-3 configuration that exercises the divisibility branches.
  {
    num::Rng rng(4);
    ConvTranspose2d layer(2, 2, 4, 2, 1, rng);
    GradientCheck{}.run(layer, random_tensor({2, 2, 3, 3}, 11));
  }
  {
    num::Rng rng(5);
    ConvTranspose2d layer(2, 3, 2, 3, 0, rng);
    GradientCheck{}.run(layer, random_tensor({1, 2, 2, 2}, 12));
  }
  {
    num::Rng rng(6);
    ConvTranspose2d layer(3, 1, 3, 1, 1, rng);
    GradientCheck{}.run(layer, random_tensor({2, 3, 3, 3}, 13));
  }
}

TEST(ConvTranspose2d, ForwardIsDeterministic) {
  num::Rng rng(8);
  ConvTranspose2d layer(2, 2, 4, 2, 1, rng);
  const Tensor input = random_tensor({2, 2, 4, 4}, 17);
  const Tensor a = layer.forward(input, true);
  const Tensor b = layer.forward(input, true);
  EXPECT_EQ(rcr::testkit::expect_bits(a.data(), b.data(), "repeat forward"),
            "");
}

TEST(ConvTranspose2d, RejectsBadConfigAndShapes) {
  num::Rng rng(9);
  EXPECT_THROW(ConvTranspose2d(1, 1, 0, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW(ConvTranspose2d(1, 1, 3, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(ConvTranspose2d(1, 1, 2, 1, 1, rng), std::invalid_argument);
  ConvTranspose2d layer(2, 1, 3, 1, 1, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 3, 4, 4}), true),
               std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor({4, 4}), true), std::invalid_argument);
}

}  // namespace
}  // namespace rcr::nn
