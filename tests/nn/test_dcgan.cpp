#include "rcr/nn/dcgan.hpp"

#include <gtest/gtest.h>

#include "gradient_check.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;

TEST(Reshape, RoundTrip) {
  Reshape layer({2, 3, 3});
  const Tensor x = random_tensor({4, 18}, 1);
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 2, 3, 3}));
  const Tensor back = layer.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(back[i], y[i]);
}

TEST(Reshape, CountMismatchThrows) {
  Reshape layer({5, 5});
  EXPECT_THROW(layer.forward(Tensor({2, 18}), true), std::invalid_argument);
}

TEST(Upsample2x, ForwardRepeatsPixels) {
  Upsample2x layer;
  Tensor x({1, 1, 2, 2}, Vec{1.0, 2.0, 3.0, 4.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 4, 4}));
  EXPECT_DOUBLE_EQ(y.at4(0, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(y.at4(0, 0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(y.at4(0, 0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(y.at4(0, 0, 0, 2), 2.0);
  EXPECT_DOUBLE_EQ(y.at4(0, 0, 3, 3), 4.0);
}

TEST(Upsample2x, GradientCheck) {
  Upsample2x layer;
  GradientCheck{}.run(layer, random_tensor({2, 2, 3, 3}, 2));
}

TEST(Dcgan, GeneratorOutputShapeAndRange) {
  DcganConfig config;
  Sequential g = build_dcgan_generator(config);
  num::Rng rng(3);
  Tensor z({2, config.latent_dim});
  for (double& v : z.data()) v = rng.normal();
  const Tensor img = g.forward(z, false);
  EXPECT_EQ(img.shape(), (std::vector<std::size_t>{2, 1, 16, 16}));
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_GT(img[i], 0.0);
    EXPECT_LT(img[i], 1.0);
  }
}

TEST(Dcgan, DiscriminatorOutputShape) {
  DcganConfig config;
  Sequential d = build_dcgan_discriminator(config);
  const Tensor logits = d.forward(Tensor({3, 1, 16, 16}), false);
  EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{3, 1}));
}

TEST(Dcgan, PlacementChangesParamCount) {
  DcganConfig none;
  none.placement = BatchNormPlacement::kNone;
  DcganConfig all;
  all.placement = BatchNormPlacement::kAllLayers;
  Sequential g_none = build_dcgan_generator(none);
  Sequential g_all = build_dcgan_generator(all);
  EXPECT_GT(g_all.param_count(), g_none.param_count());
}

std::vector<ImageSample> banded_images(std::size_t n, std::uint64_t seed) {
  // Spectrogram-like data: bright band in the middle rows.
  num::Rng rng(seed);
  std::vector<ImageSample> out;
  for (std::size_t i = 0; i < n; ++i) {
    ImageSample s;
    s.height = 16;
    s.width = 16;
    s.pixels.assign(256, 0.0);
    for (std::size_t r = 0; r < 16; ++r)
      for (std::size_t c = 0; c < 16; ++c) {
        const bool band = r >= 6 && r < 10;
        s.pixels[r * 16 + c] =
            band ? rng.uniform(0.7, 0.95) : rng.uniform(0.0, 0.1);
      }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(Dcgan, RejectsWrongImageSize) {
  std::vector<ImageSample> bad(1);
  bad[0].height = 8;
  bad[0].width = 8;
  bad[0].pixels.assign(64, 0.0);
  EXPECT_THROW(DcganTrainer(DcganConfig{}, bad), std::invalid_argument);
  EXPECT_THROW(DcganTrainer(DcganConfig{}, {}), std::invalid_argument);
}

TEST(Dcgan, TrainingMovesGeneratedStatisticsTowardData) {
  const auto data = banded_images(32, 5);
  DcganConfig config;
  config.steps = 0;
  config.seed = 6;
  DcganTrainer untrained(config, data);
  const DcganMetrics before = untrained.metrics(32);

  config.steps = 400;
  DcganTrainer trained(config, data);
  trained.train();
  const DcganMetrics after = trained.metrics(32);

  // The generator learns the dataset's mean brightness and row profile.
  EXPECT_LT(after.mean_pixel_error, 0.08);
  EXPECT_LT(after.mean_pixel_error, before.mean_pixel_error);
  EXPECT_GT(after.row_profile_cosine, 0.95);
  EXPECT_EQ(after.d_loss_history.size(), 400u);
}

TEST(Dcgan, DeterministicGivenSeed) {
  const auto data = banded_images(8, 7);
  DcganConfig config;
  config.steps = 20;
  config.seed = 8;
  DcganTrainer a(config, data);
  a.train();
  DcganTrainer b(config, data);
  b.train();
  const Tensor sa = a.sample(2);
  const Tensor sb = b.sample(2);
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

}  // namespace
}  // namespace rcr::nn
