#include "rcr/nn/fire.hpp"

#include <gtest/gtest.h>

#include "gradient_check.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;

TEST(Fire, OutputShapeConcatenatesExpandPaths) {
  num::Rng rng(1);
  Fire layer(3, 2, 4, 4, rng);
  const Tensor y = layer.forward(Tensor({2, 3, 6, 6}), true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 6, 6}));
  EXPECT_EQ(layer.out_channels(), 8u);
}

TEST(Fire, RejectsNoExpandChannels) {
  num::Rng rng(2);
  EXPECT_THROW(Fire(3, 2, 0, 0, rng), std::invalid_argument);
}

TEST(Fire, OutputsNonNegative) {
  num::Rng rng(3);
  Fire layer(2, 2, 3, 3, rng);
  const Tensor y = layer.forward(random_tensor({1, 2, 5, 5}, 40), true);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_GE(y[i], 0.0);
}

TEST(Fire, ParameterCountFormula) {
  num::Rng rng(4);
  const std::size_t in = 8;
  const std::size_t s = 3;
  const std::size_t e1 = 4;
  const std::size_t e3 = 4;
  Fire layer(in, s, e1, e3, rng);
  const std::size_t expected = (in * s * 1 * 1 + s) +      // squeeze
                               (s * e1 * 1 * 1 + e1) +     // expand 1x1
                               (s * e3 * 3 * 3 + e3);      // expand 3x3
  EXPECT_EQ(layer.param_count(), expected);
}

TEST(Fire, FewerParamsThanEquivalentConv) {
  // The SqueezeNet claim behind MSY3I (Sec. II-B-1): a fire layer producing
  // C output channels from C inputs uses far fewer parameters than a 3x3
  // conv C -> C.
  num::Rng rng(5);
  const std::size_t c = 16;
  Fire fire(c, c / 4, c / 2, c / 2, rng);
  Conv2d conv(c, c, 3, 1, 1, rng);
  EXPECT_LT(fire.param_count(), conv.param_count() / 2);
}

TEST(Fire, GradientCheck) {
  num::Rng rng(6);
  Fire layer(2, 2, 2, 2, rng);
  GradientCheck check;
  check.tolerance = 1e-4;
  check.run(layer, random_tensor({1, 2, 4, 4}, 41));
}

TEST(SpecialFire, HalvesSpatialDimensions) {
  num::Rng rng(7);
  SpecialFire layer(3, 2, 4, 4, rng);
  const Tensor y = layer.forward(Tensor({1, 3, 8, 8}), true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 8, 4, 4}));
  EXPECT_EQ(layer.name(), "special_fire");
}

TEST(SpecialFire, GradientCheck) {
  num::Rng rng(8);
  SpecialFire layer(2, 2, 2, 2, rng);
  GradientCheck check;
  check.tolerance = 1e-4;
  check.run(layer, random_tensor({1, 2, 6, 6}, 42));
}

}  // namespace
}  // namespace rcr::nn
