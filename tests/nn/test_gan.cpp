#include "rcr/nn/gan.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::nn {
namespace {

TEST(RingDistribution, CentersOnCircle) {
  RingDistribution ring;
  ring.modes = 8;
  ring.radius = 2.0;
  for (std::size_t k = 0; k < 8; ++k) {
    const Vec c = ring.center(k);
    EXPECT_NEAR(std::hypot(c[0], c[1]), 2.0, 1e-12);
  }
}

TEST(RingDistribution, SamplesNearSomeMode) {
  RingDistribution ring;
  num::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Vec p = ring.sample(rng);
    EXPECT_LT(ring.distance_to_mode(p[0], p[1]), 5.0 * ring.stddev);
  }
}

TEST(RingDistribution, NearestModeConsistent) {
  RingDistribution ring;
  for (std::size_t k = 0; k < ring.modes; ++k) {
    const Vec c = ring.center(k);
    EXPECT_EQ(ring.nearest_mode(c[0], c[1]), k);
  }
}

TEST(GanTrainer, ParamCountsPositiveAndPlacementAddsParams) {
  RingDistribution ring;
  GanConfig base;
  base.steps = 0;
  GanTrainer plain(base, ring);
  GanConfig bn = base;
  bn.placement = BatchNormPlacement::kAllLayers;
  GanTrainer with_bn(bn, ring);
  EXPECT_GT(plain.generator_param_count(), 0u);
  EXPECT_GT(with_bn.generator_param_count(), plain.generator_param_count());
  EXPECT_GT(with_bn.discriminator_param_count(),
            plain.discriminator_param_count());
}

TEST(GanTrainer, SampleCountAndShape) {
  RingDistribution ring;
  GanConfig config;
  config.steps = 0;
  GanTrainer trainer(config, ring);
  const auto pts = trainer.sample(37);
  EXPECT_EQ(pts.size(), 37u);
  for (const Vec& p : pts) EXPECT_EQ(p.size(), 2u);
}

TEST(GanTrainer, TrainingImprovesSampleQuality) {
  RingDistribution ring;
  ring.modes = 4;       // easier target for a quick test
  ring.stddev = 0.1;
  GanConfig config;
  config.steps = 0;
  config.seed = 3;
  GanTrainer untrained(config, ring);
  const GanMetrics before = untrained.metrics(512);

  config.steps = 600;
  GanTrainer trained(config, ring);
  trained.train();
  const GanMetrics after = trained.metrics(512);
  EXPECT_GT(after.high_quality_fraction, before.high_quality_fraction);
  EXPECT_GE(after.modes_covered, 1u);
}

TEST(GanTrainer, MixtureCoversAtLeastAsManyModes) {
  // The paper's DCGAN #3 story: an additional generator mitigates mode
  // collapse.  Aggregate across seeds for robustness.
  RingDistribution ring;
  ring.modes = 8;
  std::size_t single_total = 0;
  std::size_t mixture_total = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    GanConfig single;
    single.steps = 500;
    single.seed = seed;
    GanTrainer a(single, ring);
    a.train();
    single_total += a.metrics(512).modes_covered;

    GanConfig mixture = single;
    mixture.generators = 4;
    mixture.steps = 2000;  // same per-generator update budget
    GanTrainer b(mixture, ring);
    b.train();
    mixture_total += b.metrics(512).modes_covered;
  }
  EXPECT_GE(mixture_total, single_total);
}

TEST(GanTrainer, MetricsFieldsPopulated) {
  RingDistribution ring;
  GanConfig config;
  config.steps = 50;
  GanTrainer trainer(config, ring);
  trainer.train();
  const GanMetrics m = trainer.metrics(128);
  EXPECT_EQ(m.d_loss_history.size(), 50u);
  EXPECT_EQ(m.g_loss_history.size(), 50u);
  EXPECT_GE(m.forward_amplification, 0.0);
  EXPECT_GE(m.d_loss_oscillation, 0.0);
  EXPECT_LE(m.high_quality_fraction, 1.0);
}

TEST(GanTrainer, DeterministicGivenSeed) {
  RingDistribution ring;
  GanConfig config;
  config.steps = 30;
  config.seed = 9;
  GanTrainer a(config, ring);
  a.train();
  GanTrainer b(config, ring);
  b.train();
  const auto pa = a.sample(8);
  const auto pb = b.sample(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(pa[i][0], pb[i][0]);
    EXPECT_DOUBLE_EQ(pa[i][1], pb[i][1]);
  }
}

TEST(GanTrainer, ForwardAmplificationFiniteAndBounded) {
  RingDistribution ring;
  GanConfig config;
  config.steps = 200;
  config.seed = 4;
  GanTrainer trainer(config, ring);
  trainer.train();
  const GanMetrics m = trainer.metrics(128);
  EXPECT_TRUE(std::isfinite(m.forward_amplification));
  // A dense net with moderate weights cannot amplify unboundedly.
  EXPECT_LT(m.forward_amplification, 1e3);
}

}  // namespace
}  // namespace rcr::nn
