// Gradient coverage for the layer paths the original suite skipped:
// batchnorm running-statistics (eval) mode, the Fire / SpecialFire
// squeeze-expand forks, and composed DCGAN generator blocks (including the
// transposed-conv upsampler) checked end-to-end through the SequentialLayer
// adapter.
#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "rcr/nn/batchnorm.hpp"
#include "rcr/nn/conv.hpp"
#include "rcr/nn/fire.hpp"
#include "rcr/nn/layers_basic.hpp"
#include "rcr/nn/network.hpp"
#include "rcr/nn/shape_ops.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;
namespace tk = rcr::testkit;

// Drive the running statistics away from their (0, 1) initialization so the
// eval-mode path normalizes with genuinely batch-independent constants.
void warm_up_running_stats(Layer& bn, const std::vector<std::size_t>& shape) {
  for (std::uint64_t s = 0; s < 5; ++s) {
    Tensor batch = random_tensor(shape, 100 + s);
    for (double& v : batch.data()) v = 2.0 * v + 0.5;
    bn.forward(batch, /*training=*/true);
  }
}

TEST(GradCoverage, BatchNorm1dEvalModeIsAnAffineMap) {
  BatchNorm1d bn(3);
  warm_up_running_stats(bn, {6, 3});
  GradientCheck check;
  check.training = false;
  check.run(bn, random_tensor({4, 3}, 21));
}

TEST(GradCoverage, BatchNorm2dEvalModeIsAnAffineMap) {
  BatchNorm2d bn(2);
  warm_up_running_stats(bn, {3, 2, 4, 4});
  GradientCheck check;
  check.training = false;
  check.run(bn, random_tensor({2, 2, 3, 3}, 22));
}

TEST(GradCoverage, BatchNormEvalInputGradIsGammaTimesInvStd) {
  // The closed form the finite-difference check certifies: in eval mode
  // grad_input = gamma * running_inv_std * upstream, elementwise per
  // feature -- no batch coupling at all.
  BatchNorm1d bn(2);
  warm_up_running_stats(bn, {8, 2});
  const Tensor x = random_tensor({3, 2}, 23);
  bn.forward(x, /*training=*/false);
  Tensor upstream({3, 2});
  for (std::size_t i = 0; i < upstream.size(); ++i)
    upstream[i] = static_cast<double>(i + 1);
  const Tensor grad = bn.backward(upstream);
  const Vec& rv = bn.running_var();
  for (std::size_t b = 0; b < 3; ++b)
    for (std::size_t f = 0; f < 2; ++f) {
      const double inv_std = 1.0 / std::sqrt(rv[f] + 1e-5);
      EXPECT_NEAR(grad.at2(b, f), upstream.at2(b, f) * inv_std, 1e-12)
          << "(gamma = 1) feature " << f;
    }
}

TEST(GradCoverage, BatchNormTrainingModeStillCouplesTheBatch) {
  // Regression guard for the fix: the training-mode Jacobian must remain
  // the full batch-statistics form, not the eval affine form.
  BatchNorm1d bn(2);
  GradientCheck{}.run(bn, random_tensor({5, 2}, 24));
}

TEST(GradCoverage, FireLayerSqueezeExpandFork) {
  num::Rng rng(31);
  Fire fire(3, 2, 2, 2, rng);
  GradientCheck{}.run(fire, random_tensor({2, 3, 4, 4}, 32));
}

TEST(GradCoverage, SpecialFireStride2Downsampler) {
  num::Rng rng(33);
  SpecialFire fire(2, 2, 2, 2, rng);
  GradientCheck{}.run(fire, random_tensor({2, 2, 4, 4}, 34));
}

TEST(GradCoverage, DcganGeneratorUpsampleConvBlock) {
  // The [Upsample2x -> Conv -> BN -> ReLU] doubling block from the
  // convolutional generator, checked as a unit through SequentialLayer.
  num::Rng rng(41);
  Sequential block;
  block.emplace<Upsample2x>();
  block.emplace<Conv2d>(2, 2, 3, 1, 1, rng);
  block.emplace<BatchNorm2d>(2);
  block.emplace<Relu>();
  tk::SequentialLayer layer(block, "dcgan_upsample_block");
  GradientCheck{}.run(layer, random_tensor({2, 2, 3, 3}, 42));
}

TEST(GradCoverage, DcganTransposedConvGeneratorHead) {
  // Transposed-conv variant of the generator head: latent -> Dense ->
  // reshape 2x2 -> ConvTranspose2d(k=4, s=2, p=1) -> Sigmoid gives a 4x4
  // image; every parameter and the latent gradient must survive the
  // composition.
  num::Rng rng(43);
  Sequential head;
  head.emplace<Dense>(3, 2 * 2 * 2, rng);
  head.emplace<Relu>();
  head.emplace<Reshape>(std::vector<std::size_t>{2, 2, 2});
  head.emplace<ConvTranspose2d>(2, 1, 4, 2, 1, rng);
  head.emplace<Sigmoid>();
  tk::SequentialLayer layer(head, "dcgan_transposed_head");
  GradientCheck{}.run(layer, random_tensor({2, 3}, 44));
}

TEST(GradCoverage, EvalModeBlockWithInteriorBatchNorm) {
  // A conv block evaluated in inference mode: the batchnorm inside must use
  // the eval-mode Jacobian for the whole block's input gradient to check.
  num::Rng rng(45);
  Sequential block;
  block.emplace<Conv2d>(2, 2, 3, 1, 1, rng);
  BatchNorm2d* bn_raw = nullptr;
  {
    auto bn = std::make_unique<BatchNorm2d>(2);
    bn_raw = bn.get();
    block.add(std::move(bn));
  }
  block.emplace<Relu>();
  warm_up_running_stats(*bn_raw, {4, 2, 3, 3});
  tk::SequentialLayer layer(block, "eval_conv_bn_block");
  GradientCheck check;
  check.training = false;
  check.run(layer, random_tensor({2, 2, 3, 3}, 46));
}

}  // namespace
}  // namespace rcr::nn
