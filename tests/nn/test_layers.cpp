#include "rcr/nn/layers_basic.hpp"

#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "rcr/nn/conv.hpp"

namespace rcr::nn {
namespace {

using testing::GradientCheck;
using testing::random_tensor;

TEST(Dense, ForwardKnownValues) {
  num::Rng rng(1);
  Dense layer(2, 1, rng);
  auto params = layer.params();
  (*params[0].value) = {2.0, -1.0};  // weight row
  (*params[1].value) = {0.5};        // bias
  Tensor x({1, 2}, Vec{3.0, 4.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_DOUBLE_EQ(y.at2(0, 0), 2.0 * 3.0 - 4.0 + 0.5);
}

TEST(Dense, ShapeValidation) {
  num::Rng rng(2);
  Dense layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 4}), true), std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor({4}), true), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  num::Rng rng(3);
  Dense layer(4, 3, rng);
  GradientCheck{}.run(layer, random_tensor({2, 4}, 10));
}

TEST(Dense, ParamCount) {
  num::Rng rng(4);
  Dense layer(5, 3, rng);
  EXPECT_EQ(layer.param_count(), 5u * 3u + 3u);
}

TEST(Relu, ForwardClampsNegatives) {
  Relu layer;
  Tensor x({1, 3}, Vec{-1.0, 0.0, 2.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(Relu, GradientCheck) {
  Relu layer;
  GradientCheck{}.run(layer, random_tensor({3, 5}, 11));
}

TEST(LeakyRelu, ForwardSlope) {
  LeakyRelu layer(0.2);
  Tensor x({1, 2}, Vec{-5.0, 5.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(LeakyRelu, GradientCheck) {
  LeakyRelu layer(0.2);
  GradientCheck{}.run(layer, random_tensor({2, 6}, 12));
}

TEST(Sigmoid, ForwardRangeAndMidpoint) {
  Sigmoid layer;
  Tensor x({1, 3}, Vec{-100.0, 0.0, 100.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(Sigmoid, GradientCheck) {
  Sigmoid layer;
  GradientCheck{}.run(layer, random_tensor({2, 4}, 13));
}

TEST(Tanh, GradientCheck) {
  Tanh layer;
  GradientCheck{}.run(layer, random_tensor({2, 4}, 14));
}

TEST(Flatten, RoundTripShapes) {
  Flatten layer;
  const Tensor x = random_tensor({2, 3, 4, 4}, 15);
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));
  const Tensor back = layer.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Flatten, GradientCheck) {
  Flatten layer;
  GradientCheck{}.run(layer, random_tensor({2, 2, 3, 3}, 16));
}

TEST(Conv2d, OutputShapeWithStrideAndPadding) {
  num::Rng rng(5);
  Conv2d same(1, 4, 3, 1, 1, rng);
  EXPECT_EQ(same.forward(Tensor({2, 1, 8, 8}), true).shape(),
            (std::vector<std::size_t>{2, 4, 8, 8}));
  Conv2d strided(1, 2, 3, 2, 1, rng);
  EXPECT_EQ(strided.forward(Tensor({1, 1, 8, 8}), true).shape(),
            (std::vector<std::size_t>{1, 2, 4, 4}));
  Conv2d valid(1, 2, 3, 1, 0, rng);
  EXPECT_EQ(valid.forward(Tensor({1, 1, 8, 8}), true).shape(),
            (std::vector<std::size_t>{1, 2, 6, 6}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  num::Rng rng(6);
  Conv2d layer(1, 1, 1, 1, 0, rng);
  auto params = layer.params();
  (*params[0].value) = {1.0};
  (*params[1].value) = {0.0};
  const Tensor x = random_tensor({1, 1, 4, 4}, 17);
  const Tensor y = layer.forward(x, true);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Conv2d, AveragingKernelComputesLocalMean) {
  num::Rng rng(7);
  Conv2d layer(1, 1, 3, 1, 0, rng);
  auto params = layer.params();
  for (double& w : *params[0].value) w = 1.0 / 9.0;
  (*params[1].value) = {0.0};
  Tensor x({1, 1, 3, 3}, Vec{1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_NEAR(y[0], 5.0, 1e-12);
}

TEST(Conv2d, ChannelMismatchThrows) {
  num::Rng rng(8);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 1, 8, 8}), true),
               std::invalid_argument);
}

TEST(Conv2d, GradientCheckUnitStride) {
  num::Rng rng(9);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  GradientCheck{}.run(layer, random_tensor({2, 2, 5, 5}, 18));
}

TEST(Conv2d, GradientCheckStrideTwoNoPad) {
  num::Rng rng(10);
  Conv2d layer(1, 2, 3, 2, 0, rng);
  GradientCheck{}.run(layer, random_tensor({1, 1, 7, 7}, 19));
}

TEST(MaxPool2d, ForwardSelectsMaxima) {
  MaxPool2d layer;
  Tensor x({1, 1, 2, 2}, Vec{1.0, 5.0, 3.0, 2.0});
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(MaxPool2d, OddDimensionsThrow) {
  MaxPool2d layer;
  EXPECT_THROW(layer.forward(Tensor({1, 1, 3, 4}), true),
               std::invalid_argument);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d layer;
  Tensor x({1, 1, 2, 2}, Vec{1.0, 5.0, 3.0, 2.0});
  layer.forward(x, true);
  Tensor g({1, 1, 1, 1}, Vec{7.0});
  const Tensor gi = layer.backward(g);
  EXPECT_DOUBLE_EQ(gi[1], 7.0);  // position of the max
  EXPECT_DOUBLE_EQ(gi[0], 0.0);
}

TEST(MaxPool2d, GradientCheck) {
  MaxPool2d layer;
  GradientCheck{}.run(layer, random_tensor({2, 2, 4, 4}, 20));
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool layer;
  Tensor x({1, 2, 2, 2}, Vec{1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = layer.forward(x, true);
  EXPECT_DOUBLE_EQ(y.at2(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(y.at2(0, 1), 25.0);
}

TEST(GlobalAvgPool, GradientCheck) {
  GlobalAvgPool layer;
  GradientCheck{}.run(layer, random_tensor({2, 3, 4, 4}, 21));
}

}  // namespace
}  // namespace rcr::nn
