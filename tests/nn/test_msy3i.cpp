#include "rcr/nn/msy3i.hpp"

#include <gtest/gtest.h>

#include "rcr/numerics/rng.hpp"

namespace rcr::nn {
namespace {

// Tiny synthetic image dataset: class = brightest quadrant.
std::vector<ImageSample> quadrant_dataset(std::size_t per_class,
                                          std::size_t size,
                                          std::uint64_t seed) {
  num::Rng rng(seed);
  std::vector<ImageSample> out;
  for (std::size_t label = 0; label < 3; ++label) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ImageSample s;
      s.height = size;
      s.width = size;
      s.label = label;
      s.pixels.assign(size * size, 0.0);
      for (std::size_t r = 0; r < size; ++r)
        for (std::size_t c = 0; c < size; ++c) {
          double v = rng.uniform(0.0, 0.2);
          const bool top = r < size / 2;
          const bool left = c < size / 2;
          if ((label == 0 && top && left) || (label == 1 && top && !left) ||
              (label == 2 && !top && left))
            v += rng.uniform(0.6, 0.9);
          s.pixels[r * size + c] = std::min(1.0, v);
        }
      out.push_back(std::move(s));
    }
  }
  return out;
}

Msy3iConfig small_config() {
  Msy3iConfig cfg;
  cfg.image_size = 16;
  cfg.classes = 3;
  cfg.stem_filters = 4;
  cfg.fire_squeeze = 2;
  cfg.fire_expand = 4;
  cfg.num_fire_blocks = 1;
  cfg.seed = 5;
  return cfg;
}

TEST(Msy3i, ClassifierOutputShape) {
  Sequential net = build_msy3i_classifier(small_config());
  const Tensor y = net.forward(Tensor({2, 1, 16, 16}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 3}));
}

TEST(Msy3i, BaselineOutputShape) {
  Sequential net = build_conv_baseline(small_config());
  const Tensor y = net.forward(Tensor({2, 1, 16, 16}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 3}));
}

TEST(Msy3i, DetectorOutputsNormalizedBox) {
  Sequential net = build_msy3i_detector(small_config());
  const Tensor y = net.forward(Tensor({1, 1, 16, 16}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 4}));
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(y.at2(0, k), 0.0);
    EXPECT_LT(y.at2(0, k), 1.0);
  }
}

TEST(Msy3i, SqueezedHasFewerParamsThanConvBaseline) {
  // The E7 headline: fire layers cut the parameter count substantially.
  const Msy3iConfig cfg = small_config();
  Sequential squeezed = build_msy3i_classifier(cfg);
  Sequential baseline = build_conv_baseline(cfg);
  EXPECT_LT(squeezed.param_count(), baseline.param_count() / 2);
}

TEST(Msy3i, MaxpoolVariantBuildsAndRuns) {
  Msy3iConfig cfg = small_config();
  cfg.use_special_fire = false;
  cfg.num_fire_blocks = 2;
  Sequential net = build_msy3i_classifier(cfg);
  const Tensor y = net.forward(Tensor({1, 1, 16, 16}), false);
  EXPECT_EQ(y.dim(1), 3u);
}

TEST(BatchImages, ValidationAndLayout) {
  std::vector<ImageSample> samples = quadrant_dataset(1, 8, 1);
  const Tensor b = batch_images(samples, {0, 2});
  EXPECT_EQ(b.shape(), (std::vector<std::size_t>{2, 1, 8, 8}));
  EXPECT_THROW(batch_images(samples, {}), std::invalid_argument);
  samples[1].width = 4;  // corrupt
  EXPECT_THROW(batch_images(samples, {0, 1}), std::invalid_argument);
}

TEST(TrainClassifier, LearnsQuadrantTask) {
  const auto train = quadrant_dataset(16, 16, 2);
  const auto test = quadrant_dataset(6, 16, 3);
  Sequential net = build_msy3i_classifier(small_config());
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 8;
  tc.learning_rate = 5e-3;
  const TrainReport report = train_classifier(net, train, test, tc);
  EXPECT_EQ(report.loss_history.size(), 20u);
  EXPECT_LT(report.loss_history.back(), report.loss_history.front());
  EXPECT_GT(report.test_accuracy, 0.7);
  EXPECT_EQ(report.param_count, net.param_count());
}

TEST(TrainClassifier, EmptyDatasetThrows) {
  Sequential net = build_msy3i_classifier(small_config());
  EXPECT_THROW(train_classifier(net, {}, {}, TrainConfig{}),
               std::invalid_argument);
}

TEST(EvaluateClassifier, EmptyIsZero) {
  Sequential net = build_msy3i_classifier(small_config());
  EXPECT_DOUBLE_EQ(evaluate_classifier(net, {}), 0.0);
}

TEST(TrainDetector, LossDecreasesAndIouReported) {
  // Synthetic detection: bright box at a known location.
  num::Rng rng(4);
  auto make_samples = [&](std::size_t n) {
    std::vector<BoxSample> out;
    for (std::size_t i = 0; i < n; ++i) {
      BoxSample s;
      s.height = 16;
      s.width = 16;
      s.pixels.assign(256, 0.0);
      const std::size_t cx = 4 + static_cast<std::size_t>(rng.uniform_int(0, 7));
      const std::size_t cy = 4 + static_cast<std::size_t>(rng.uniform_int(0, 7));
      for (std::size_t r = cy - 2; r <= cy + 2; ++r)
        for (std::size_t c = cx - 2; c <= cx + 2; ++c)
          s.pixels[r * 16 + c] = 0.9;
      s.box[0] = static_cast<double>(cx) / 16.0;
      s.box[1] = static_cast<double>(cy) / 16.0;
      s.box[2] = 5.0 / 16.0;
      s.box[3] = 5.0 / 16.0;
      out.push_back(std::move(s));
    }
    return out;
  };
  const auto train = make_samples(24);
  const auto test = make_samples(8);
  Sequential net = build_msy3i_detector(small_config());
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 8;
  tc.learning_rate = 3e-3;
  const DetectReport report = train_detector(net, train, test, tc);
  EXPECT_LT(report.loss_history.back(), report.loss_history.front());
  EXPECT_GT(report.mean_iou, 0.2);
}

}  // namespace
}  // namespace rcr::nn
