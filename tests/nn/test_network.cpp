#include "rcr/nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradient_check.hpp"
#include "rcr/nn/layers_basic.hpp"
#include "rcr/numerics/stable.hpp"

namespace rcr::nn {
namespace {

using testing::random_tensor;

TEST(Sequential, ForwardComposesLayers) {
  num::Rng rng(1);
  Sequential net;
  net.emplace<Dense>(2, 3, rng);
  net.emplace<Relu>();
  net.emplace<Dense>(3, 1, rng);
  const Tensor y = net.forward(Tensor({4, 2}), true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 1}));
  EXPECT_EQ(net.layer_count(), 3u);
}

TEST(Sequential, ParamCountSumsLayers) {
  num::Rng rng(2);
  Sequential net;
  net.emplace<Dense>(2, 3, rng);  // 9
  net.emplace<Dense>(3, 1, rng);  // 4
  EXPECT_EQ(net.param_count(), 13u);
}

TEST(Sequential, ZeroGradClearsAll) {
  num::Rng rng(3);
  Sequential net;
  net.emplace<Dense>(2, 2, rng);
  const Tensor x = random_tensor({2, 2}, 50);
  const Tensor y = net.forward(x, true);
  net.backward(y);  // nonzero grads
  net.zero_grad();
  for (auto& p : net.params())
    for (double g : *p.grad) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(SoftmaxCrossEntropy, MatchesManualComputation) {
  Tensor logits({1, 3}, Vec{1.0, 2.0, 3.0});
  const LossResult r = softmax_cross_entropy(logits, {2});
  const Vec lp = num::log_softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(r.value, -lp[2], 1e-12);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits({2, 4}, Vec{0.1, -0.2, 0.3, 0.4, 1.0, 2.0, 3.0, 4.0});
  const LossResult r = softmax_cross_entropy(logits, {1, 3});
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 4; ++k) sum += r.grad.at2(b, k);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumerical) {
  Tensor logits({2, 3}, Vec{0.5, -1.0, 0.2, 1.5, 0.0, -0.5});
  const std::vector<std::size_t> labels = {0, 2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double h = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits;
    lp[i] += h;
    Tensor lm = logits;
    lm[i] -= h;
    const double numeric = (softmax_cross_entropy(lp, labels).value -
                            softmax_cross_entropy(lm, labels).value) /
                           (2.0 * h);
    EXPECT_NEAR(r.grad[i], numeric, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, StableForExtremeLogits) {
  Tensor logits({1, 2}, Vec{1000.0, -1000.0});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(SoftmaxCrossEntropy, InvalidInputsThrow) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 5}), std::invalid_argument);
}

TEST(BceWithLogits, MatchesManual) {
  Tensor logits({2, 1}, Vec{0.0, 2.0});
  const LossResult r = bce_with_logits(logits, {1.0, 0.0});
  const double expected =
      0.5 * (-std::log(0.5) - std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))));
  EXPECT_NEAR(r.value, expected, 1e-12);
}

TEST(BceWithLogits, GradientMatchesNumerical) {
  Tensor logits({3, 1}, Vec{0.3, -1.2, 2.0});
  const Vec targets = {1.0, 0.0, 0.5};
  const LossResult r = bce_with_logits(logits, targets);
  const double h = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits;
    lp[i] += h;
    Tensor lm = logits;
    lm[i] -= h;
    const double numeric =
        (bce_with_logits(lp, targets).value - bce_with_logits(lm, targets).value) /
        (2.0 * h);
    EXPECT_NEAR(r.grad[i], numeric, 1e-6);
  }
}

TEST(BceWithLogits, StableForExtremeLogits) {
  Tensor logits({2, 1}, Vec{1000.0, -1000.0});
  const LossResult r = bce_with_logits(logits, {1.0, 0.0});
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor out({1, 2}, Vec{1.0, 3.0});
  Tensor target({1, 2}, Vec{0.0, 1.0});
  const LossResult r = mse_loss(out, target);
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 2.0 * 2.0 / 2.0);
}

TEST(ArgmaxRows, PicksLargest) {
  Tensor logits({2, 3}, Vec{0.1, 0.9, 0.2, 5.0, 1.0, 2.0});
  const auto pred = argmax_rows(logits);
  EXPECT_EQ(pred[0], 1u);
  EXPECT_EQ(pred[1], 0u);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Vec w = {1.0};
  Vec g = {2.0};
  Sgd opt(0.1);
  opt.step({{&w, &g, "w"}});
  EXPECT_NEAR(w[0], 1.0 - 0.1 * 2.0, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  Vec w = {0.0};
  Vec g = {1.0};
  Sgd opt(0.1, 0.9);
  opt.step({{&w, &g, "w"}});
  const double w1 = w[0];
  opt.step({{&w, &g, "w"}});
  // Second step is larger in magnitude than the first.
  EXPECT_LT(w[0] - w1, w1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by iterating on its analytic gradient.
  Vec w = {0.0};
  Vec g(1);
  Adam opt(0.1);
  for (int it = 0; it < 500; ++it) {
    g[0] = 2.0 * (w[0] - 3.0);
    opt.step({{&w, &g, "w"}});
  }
  EXPECT_NEAR(w[0], 3.0, 1e-2);
}

TEST(Training, XorProblemLearned) {
  num::Rng rng(7);
  Sequential net;
  net.emplace<Dense>(2, 8, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(8, 2, rng);

  const Vec inputs = {0, 0, 0, 1, 1, 0, 1, 1};
  const std::vector<std::size_t> labels = {0, 1, 1, 0};
  Tensor x({4, 2}, inputs);

  Adam opt(0.05);
  double final_loss = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    net.zero_grad();
    const Tensor logits = net.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step(net.params());
    final_loss = loss.value;
  }
  EXPECT_LT(final_loss, 0.05);
  const Tensor logits = net.forward(x, false);
  EXPECT_EQ(argmax_rows(logits), labels);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  num::Rng rng(8);
  Sequential net;
  net.emplace<Dense>(3, 6, rng);
  net.emplace<Relu>();
  net.emplace<Dense>(6, 2, rng);
  const Tensor x = random_tensor({8, 3}, 60);
  std::vector<std::size_t> labels(8);
  for (std::size_t i = 0; i < 8; ++i) labels[i] = i % 2;

  Adam opt(0.02);
  Vec losses;
  for (int epoch = 0; epoch < 100; ++epoch) {
    net.zero_grad();
    const LossResult loss =
        softmax_cross_entropy(net.forward(x, true), labels);
    net.backward(loss.grad);
    opt.step(net.params());
    losses.push_back(loss.value);
  }
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

}  // namespace
}  // namespace rcr::nn
