#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "rcr/nn/msy3i.hpp"
#include "rcr/nn/network.hpp"

namespace rcr::nn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

Sequential small_net(std::uint64_t seed) {
  num::Rng rng(seed);
  Sequential net;
  net.emplace<Dense>(3, 8, rng);
  net.emplace<Relu>();
  net.emplace<Dense>(8, 2, rng);
  return net;
}

TEST(Serialization, RoundTripPreservesOutputs) {
  Sequential a = small_net(1);
  const std::string path = temp_path("net_roundtrip.txt");
  save_parameters(a, path);

  Sequential b = small_net(99);  // different random init
  Tensor x({2, 3}, Vec{0.1, -0.4, 0.7, 1.2, 0.0, -0.9});
  const Tensor before = b.forward(x, false);
  load_parameters(b, path);
  const Tensor after = b.forward(x, false);
  const Tensor reference = a.forward(x, false);

  bool changed = false;
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_NEAR(after[i], reference[i], 1e-12);
    changed |= std::abs(after[i] - before[i]) > 1e-12;
  }
  EXPECT_TRUE(changed);  // the load actually did something
  std::remove(path.c_str());
}

TEST(Serialization, StructuralMismatchThrows) {
  Sequential a = small_net(2);
  const std::string path = temp_path("net_mismatch.txt");
  save_parameters(a, path);

  num::Rng rng(3);
  Sequential wrong_shape;
  wrong_shape.emplace<Dense>(3, 9, rng);  // different width
  wrong_shape.emplace<Relu>();
  wrong_shape.emplace<Dense>(9, 2, rng);
  EXPECT_THROW(load_parameters(wrong_shape, path), std::invalid_argument);

  Sequential wrong_depth;
  wrong_depth.emplace<Dense>(3, 2, rng);
  EXPECT_THROW(load_parameters(wrong_depth, path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  Sequential a = small_net(4);
  EXPECT_THROW(load_parameters(a, "/nonexistent/dir/net.txt"),
               std::runtime_error);
  EXPECT_THROW(save_parameters(a, "/nonexistent/dir/net.txt"),
               std::runtime_error);
}

TEST(Serialization, TruncatedFileThrows) {
  Sequential a = small_net(5);
  const std::string path = temp_path("net_trunc.txt");
  save_parameters(a, path);
  // Truncate the file to its first 20 bytes.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), 20), 0);
  }
  Sequential b = small_net(6);
  EXPECT_ANY_THROW(load_parameters(b, path));
  std::remove(path.c_str());
}

TEST(Serialization, TrainedMsy3iSurvivesRoundTrip) {
  // End-to-end: train briefly, save, reload into a fresh net, and verify
  // predictions match exactly.
  Msy3iConfig cfg;
  cfg.image_size = 16;
  cfg.classes = 3;
  cfg.stem_filters = 4;
  cfg.fire_squeeze = 2;
  cfg.fire_expand = 4;
  cfg.num_fire_blocks = 1;
  cfg.seed = 7;

  Sequential trained = build_msy3i_classifier(cfg);
  num::Rng rng(8);
  std::vector<ImageSample> data;
  for (std::size_t label = 0; label < 3; ++label)
    for (int i = 0; i < 4; ++i) {
      ImageSample s;
      s.height = 16;
      s.width = 16;
      s.label = label;
      s.pixels = rng.uniform_vec(256, 0.0, 1.0);
      data.push_back(std::move(s));
    }
  TrainConfig tc;
  tc.epochs = 2;
  train_classifier(trained, data, data, tc);

  const std::string path = temp_path("msy3i.txt");
  save_parameters(trained, path);
  Sequential fresh = build_msy3i_classifier(cfg);
  load_parameters(fresh, path);

  const Tensor x = batch_images(data, {0, 5, 10});
  const Tensor ya = trained.forward(x, false);
  const Tensor yb = fresh.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i)
    EXPECT_NEAR(ya[i], yb[i], 1e-12);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rcr::nn
