#include "rcr/nn/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rcr::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4, 4});
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.size(), 96u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_string(), "2x3x4x4");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 3});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, Vec{1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(Tensor({2, 2}, Vec{1.0}), std::invalid_argument);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3}, Vec{0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(t.at2(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(t.at2(1, 0), 3.0);
  t.at2(1, 1) = 9.0;
  EXPECT_DOUBLE_EQ(t[4], 9.0);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0;
  EXPECT_DOUBLE_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.5;
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_DOUBLE_EQ(r[7], 3.5);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, ZerosLikeMatchesShape) {
  Tensor t({4, 2});
  t[0] = 1.0;
  const Tensor z = t.zeros_like();
  EXPECT_EQ(z.shape(), t.shape());
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(Tensor, ElementCountOfEmptyShape) {
  EXPECT_EQ(Tensor::element_count({}), 0u);
  EXPECT_EQ(Tensor::element_count({5}), 5u);
}

}  // namespace
}  // namespace rcr::nn
