#include "rcr/numerics/approx.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::num {
namespace {

TEST(ExpTaylor, ConvergesToExp) {
  EXPECT_NEAR(exp_taylor(1.0, 30), std::exp(1.0), 1e-14);
  EXPECT_NEAR(exp_taylor(-2.0, 40), std::exp(-2.0), 1e-13);
}

TEST(ExpTaylor, TruncationErrorDecreasesWithTerms) {
  const double e5 = exp_taylor_error(2.0, 5);
  const double e10 = exp_taylor_error(2.0, 10);
  const double e20 = exp_taylor_error(2.0, 20);
  EXPECT_GT(e5, e10);
  EXPECT_GT(e10, e20);
}

TEST(ExpTaylor, ZeroTermsIsOne) { EXPECT_DOUBLE_EQ(exp_taylor(3.0, 0), 1.0); }

TEST(ExpTaylor, TermsForToleranceGrowsWithX) {
  const std::size_t n_small = exp_taylor_terms_for(1.0, 1e-10);
  const std::size_t n_large = exp_taylor_terms_for(5.0, 1e-10);
  EXPECT_LT(n_small, n_large);
  EXPECT_LE(exp_taylor_error(1.0, n_small), 1e-10);
}

TEST(Trapezoid, ExactForLinearFunctions) {
  const auto f = [](double x) { return 2.0 * x + 1.0; };
  // Exact integral over [0, 2] is 6.
  EXPECT_NEAR(trapezoid(f, 0.0, 2.0, 1), 6.0, 1e-14);
  EXPECT_NEAR(trapezoid(f, 0.0, 2.0, 17), 6.0, 1e-13);
}

TEST(Trapezoid, ConvergesQuadratically) {
  const auto f = [](double x) { return std::sin(x); };
  const double exact = 1.0 - std::cos(1.0);
  const double e10 = std::abs(trapezoid(f, 0.0, 1.0, 10) - exact);
  const double e20 = std::abs(trapezoid(f, 0.0, 1.0, 20) - exact);
  // Halving h should cut the error by ~4x.
  EXPECT_NEAR(e10 / e20, 4.0, 0.3);
}

TEST(Trapezoid, InvalidArgumentsThrow) {
  const auto f = [](double) { return 0.0; };
  EXPECT_THROW(trapezoid(f, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(trapezoid(f, 1.0, 0.0, 4), std::invalid_argument);
}

TEST(Trapezoid, ErrorEstimateBoundsTrueError) {
  const auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  const double est = trapezoid_error_estimate(f, 0.0, 1.0, 16);
  const double err = std::abs(trapezoid(f, 0.0, 1.0, 16) - exact);
  // The Richardson estimate should be the right order of magnitude.
  EXPECT_GT(est, err / 10.0);
  EXPECT_LT(est, err * 10.0);
}

TEST(Simpson, MoreAccurateThanTrapezoid) {
  const auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  const double e_trap = std::abs(trapezoid(f, 0.0, 1.0, 16) - exact);
  const double e_simp = std::abs(simpson(f, 0.0, 1.0, 16) - exact);
  EXPECT_LT(e_simp, e_trap / 100.0);
}

TEST(Simpson, RequiresEvenIntervals) {
  const auto f = [](double) { return 1.0; };
  EXPECT_THROW(simpson(f, 0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(simpson(f, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(CentralDifference, ApproximatesDerivative) {
  const auto f = [](double x) { return x * x * x; };
  EXPECT_NEAR(central_difference(f, 2.0, 1e-6), 12.0, 1e-5);
}

TEST(NumericalGradient, MatchesAnalyticQuadratic) {
  const auto f = [](const Vec& x) {
    return x[0] * x[0] + 3.0 * x[0] * x[1] + 2.0 * x[1] * x[1];
  };
  const Vec g = numerical_gradient(f, {1.0, 2.0});
  EXPECT_NEAR(g[0], 2.0 * 1.0 + 3.0 * 2.0, 1e-6);
  EXPECT_NEAR(g[1], 3.0 * 1.0 + 4.0 * 2.0, 1e-6);
}

}  // namespace
}  // namespace rcr::num
