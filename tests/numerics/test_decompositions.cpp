#include "rcr/numerics/decompositions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/rng.hpp"

namespace rcr::num {
namespace {

Matrix random_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, rng);
  Matrix m = a * a.transpose();
  for (std::size_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);
  return m;
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const Vec x = solve(a, Vec{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, DeterminantSignAndValue) {
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};  // permutation: det = -1
  EXPECT_NEAR(lu_decompose(a).determinant(), -1.0, 1e-12);
  const Matrix b = {{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(lu_decompose(b).determinant(), 6.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  const LuDecomposition f = lu_decompose(a);
  EXPECT_TRUE(f.singular);
  EXPECT_DOUBLE_EQ(f.determinant(), 0.0);
  EXPECT_THROW(f.solve(Vec{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, NotSquareThrows) {
  EXPECT_THROW(lu_decompose(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix a = random_matrix(6, rng);
    const Vec x_true = rng.normal_vec(6);
    const Vec b = matvec(a, x_true);
    const Vec x = solve(a, b);
    EXPECT_TRUE(approx_equal(x, x_true, 1e-8));
  }
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Rng rng(2);
  const Matrix a = random_matrix(5, rng);
  const Matrix ainv = inverse(a);
  EXPECT_TRUE(approx_equal(a * ainv, Matrix::identity(5), 1e-9));
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(3);
  const Matrix a = random_spd(5, rng);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(approx_equal((*l) * l->transpose(), a, 1e-9));
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = {{1.0, 0.0}, {0.0, -1.0}};
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, SolveMatchesLu) {
  Rng rng(4);
  const Matrix a = random_spd(6, rng);
  const Vec b = rng.normal_vec(6);
  EXPECT_TRUE(approx_equal(cholesky_solve(a, b), solve(a, b), 1e-8));
}

TEST(Cholesky, SolveThrowsOnNonSpd) {
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(cholesky_solve(a, Vec{1.0, 1.0}), std::runtime_error);
}

TEST(Ldlt, ReconstructsSymmetricIndefinite) {
  // Indefinite but LDL^T-factorizable without pivoting.
  const Matrix a = {{2.0, 1.0, 0.0}, {1.0, -3.0, 0.5}, {0.0, 0.5, 1.0}};
  const auto f = ldlt(a);
  ASSERT_TRUE(f.has_value());
  const Matrix d = Matrix::diag(f->d);
  EXPECT_TRUE(approx_equal(f->l * d * f->l.transpose(), a, 1e-10));
  // Indefinite: D has a negative entry.
  bool has_negative = false;
  for (double v : f->d) has_negative |= v < 0.0;
  EXPECT_TRUE(has_negative);
}

TEST(Ldlt, SolveMatchesLu) {
  Rng rng(5);
  const Matrix a = random_spd(4, rng);
  const Vec b = rng.normal_vec(4);
  const auto f = ldlt(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(approx_equal(f->solve(b), solve(a, b), 1e-8));
}

TEST(IsPsd, Classification) {
  EXPECT_TRUE(is_psd(Matrix::identity(3)));
  EXPECT_TRUE(is_psd(Matrix(3, 3)));  // zero matrix is PSD
  EXPECT_FALSE(is_psd(Matrix{{-1.0, 0.0}, {0.0, 1.0}}));
  Rng rng(6);
  EXPECT_TRUE(is_psd(random_spd(5, rng)));
}

TEST(ConditionNumber, IdentityIsOne) {
  EXPECT_NEAR(condition_number_1(Matrix::identity(4)), 1.0, 1e-12);
}

TEST(ConditionNumber, SingularIsInfinite) {
  const Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(std::isinf(condition_number_1(a)));
}

TEST(ConditionNumber, GrowsWithIllConditioning) {
  const Matrix mild = Matrix::diag({1.0, 0.5});
  const Matrix harsh = Matrix::diag({1.0, 1e-8});
  EXPECT_LT(condition_number_1(mild), condition_number_1(harsh));
}

TEST(SolveMatrix, MultipleRightHandSides) {
  Rng rng(7);
  const Matrix a = random_matrix(4, rng);
  const Matrix x_true = random_matrix(4, rng);
  const Matrix b = a * x_true;
  EXPECT_TRUE(approx_equal(solve(a, b), x_true, 1e-8));
}

}  // namespace
}  // namespace rcr::num
