#include "rcr/numerics/eigen.hpp"

#include <gtest/gtest.h>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::num {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  m.symmetrize();
  return m;
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix d = Matrix::diag({3.0, 1.0, 2.0});
  const EigenDecomposition e = eigen_symmetric(d);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  const EigenDecomposition e = eigen_symmetric(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(Eigen, RejectsAsymmetric) {
  const Matrix a = {{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Eigen, ReconstructionRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const Matrix a = random_symmetric(7, rng);
    const EigenDecomposition e = eigen_symmetric(a);
    EXPECT_TRUE(approx_equal(e.reconstruct(e.eigenvalues), a, 1e-9));
  }
}

TEST(Eigen, EigenvectorsOrthonormal) {
  Rng rng(2);
  const Matrix a = random_symmetric(6, rng);
  const EigenDecomposition e = eigen_symmetric(a);
  const Matrix vtv = e.eigenvectors.transpose() * e.eigenvectors;
  EXPECT_TRUE(approx_equal(vtv, Matrix::identity(6), 1e-9));
}

TEST(Eigen, EigenvalueEquationHolds) {
  Rng rng(3);
  const Matrix a = random_symmetric(5, rng);
  const EigenDecomposition e = eigen_symmetric(a);
  for (std::size_t k = 0; k < 5; ++k) {
    const Vec v = e.eigenvectors.col(k);
    const Vec av = matvec(a, v);
    const Vec lv = scale(v, e.eigenvalues[k]);
    EXPECT_TRUE(approx_equal(av, lv, 1e-8));
  }
}

TEST(Eigen, TraceEqualsEigenvalueSum) {
  Rng rng(4);
  const Matrix a = random_symmetric(6, rng);
  const EigenDecomposition e = eigen_symmetric(a);
  double sum = 0.0;
  for (double l : e.eigenvalues) sum += l;
  EXPECT_NEAR(sum, a.trace(), 1e-9);
}

TEST(ProjectPsd, AlreadyPsdUnchanged) {
  Rng rng(5);
  Matrix a = random_symmetric(4, rng);
  a = a * a.transpose();  // PSD
  a.symmetrize();
  EXPECT_TRUE(approx_equal(project_psd(a), a, 1e-8));
}

TEST(ProjectPsd, ClampsNegativeEigenvalues) {
  const Matrix a = Matrix::diag({2.0, -3.0});
  const Matrix p = project_psd(a);
  EXPECT_NEAR(p(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(p(1, 1), 0.0, 1e-12);
  EXPECT_TRUE(is_psd(p));
}

TEST(ProjectPsd, ResultIsAlwaysPsd) {
  Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    const Matrix a = random_symmetric(5, rng);
    EXPECT_TRUE(is_psd(project_psd(a)));
  }
}

TEST(ProjectPsd, IsIdempotent) {
  Rng rng(7);
  const Matrix a = random_symmetric(5, rng);
  const Matrix p = project_psd(a);
  EXPECT_TRUE(approx_equal(project_psd(p), p, 1e-8));
}

TEST(ProjectPsdFloor, EnforcesMinimumEigenvalue) {
  const Matrix a = Matrix::diag({2.0, -1.0, 0.001});
  const Matrix p = project_psd_floor(a, 0.5);
  EXPECT_GE(min_eigenvalue(p), 0.5 - 1e-9);
}

TEST(SymmetricRank, MatchesConstruction) {
  Rng rng(8);
  const Vec v1 = rng.normal_vec(6);
  const Vec v2 = rng.normal_vec(6);
  Matrix rank2 = outer(v1, v1) + outer(v2, v2);
  rank2.symmetrize();
  EXPECT_EQ(symmetric_rank(rank2), 2u);
  EXPECT_EQ(symmetric_rank(Matrix(4, 4)), 0u);
  EXPECT_EQ(symmetric_rank(Matrix::identity(4)), 4u);
}

TEST(MinMaxEigenvalue, Diagonal) {
  const Matrix a = Matrix::diag({-5.0, 2.0, 7.0});
  EXPECT_NEAR(min_eigenvalue(a), -5.0, 1e-12);
  EXPECT_NEAR(max_eigenvalue(a), 7.0, 1e-12);
}

TEST(SpectralNorm, MatchesLargestSingularValue) {
  const Matrix a = {{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_NEAR(spectral_norm(a), 4.0, 1e-9);
  // Rectangular case.
  const Matrix b = {{1.0, 0.0, 0.0}, {0.0, 2.0, 0.0}};
  EXPECT_NEAR(spectral_norm(b), 2.0, 1e-9);
}

}  // namespace
}  // namespace rcr::num
