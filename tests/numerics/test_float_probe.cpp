#include "rcr/numerics/float_probe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rcr::num {
namespace {

TEST(Classify, AllClasses) {
  EXPECT_EQ(classify(1.0), FloatClass::kNormal);
  EXPECT_EQ(classify(0.0), FloatClass::kZero);
  EXPECT_EQ(classify(-0.0), FloatClass::kZero);
  EXPECT_EQ(classify(std::numeric_limits<double>::denorm_min()),
            FloatClass::kSubnormal);
  EXPECT_EQ(classify(std::numeric_limits<double>::infinity()),
            FloatClass::kOverflow);
  EXPECT_EQ(classify(-std::numeric_limits<double>::infinity()),
            FloatClass::kOverflow);
  EXPECT_EQ(classify(std::nan("")), FloatClass::kNan);
}

TEST(Classify, ToStringNames) {
  EXPECT_EQ(to_string(FloatClass::kNormal), "normal");
  EXPECT_EQ(to_string(FloatClass::kNan), "nan");
  EXPECT_EQ(to_string(FloatClass::kOverflow), "overflow");
}

TEST(Profile, CountsAndCleanFlag) {
  const Vec v = {1.0, 0.0, std::numeric_limits<double>::denorm_min()};
  const FloatProfile p = profile(v);
  EXPECT_EQ(p.normals, 1u);
  EXPECT_EQ(p.zeros, 1u);
  EXPECT_EQ(p.subnormals, 1u);
  EXPECT_TRUE(p.clean());
  EXPECT_TRUE(p.underflowing());
}

TEST(Profile, DirtyOnInfNan) {
  const Vec v = {std::numeric_limits<double>::infinity(), std::nan("")};
  const FloatProfile p = profile(v);
  EXPECT_EQ(p.overflows, 1u);
  EXPECT_EQ(p.nans, 1u);
  EXPECT_FALSE(p.clean());
}

TEST(UlpDistance, ZeroForEqual) { EXPECT_DOUBLE_EQ(ulp_distance(1.5, 1.5), 0.0); }

TEST(UlpDistance, OneForAdjacent) {
  const double x = 1.0;
  const double next = std::nextafter(x, 2.0);
  EXPECT_DOUBLE_EQ(ulp_distance(x, next), 1.0);
}

TEST(UlpDistance, SaturatesOnSignMismatchAndNonFinite) {
  EXPECT_GT(ulp_distance(-1.0, 1.0), 1e17);
  EXPECT_GT(ulp_distance(1.0, std::nan("")), 1e17);
}

TEST(MatchingDigits, Extremes) {
  EXPECT_EQ(matching_digits(1.0, 1.0), 17);
  EXPECT_EQ(matching_digits(1.0, 2.0), 0);
  EXPECT_EQ(matching_digits(0.0, 0.0), 17);
}

TEST(MatchingDigits, Graduated) {
  EXPECT_GE(matching_digits(1.0, 1.0 + 1e-9), 8);
  EXPECT_LE(matching_digits(1.0, 1.001), 4);
}

}  // namespace
}  // namespace rcr::num
