#include "rcr/numerics/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rcr::num {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, RowColDiagonalExtraction) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row(1), (Vec{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col(2), (Vec{3.0, 6.0}));
  EXPECT_EQ(m.diagonal(), (Vec{1.0, 5.0}));
  EXPECT_THROW(m.row(2), std::out_of_range);
  EXPECT_THROW(m.col(3), std::out_of_range);
}

TEST(Matrix, Transpose) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TraceRequiresSquare) {
  const Matrix sq = {{1.0, 9.0}, {9.0, 2.0}};
  EXPECT_DOUBLE_EQ(sq.trace(), 3.0);
  const Matrix rect(2, 3);
  EXPECT_THROW(rect.trace(), std::invalid_argument);
}

TEST(Matrix, MultiplyMatchesHandComputed) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(approx_equal(a * Matrix::identity(2), a, 1e-15));
  EXPECT_TRUE(approx_equal(Matrix::identity(2) * a, a, 1e-15));
}

TEST(Matrix, MatvecAndTransposedMatvec) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(matvec(a, {1.0, 1.0}), (Vec{3.0, 7.0, 11.0}));
  EXPECT_EQ(matvec_transposed(a, {1.0, 1.0, 1.0}), (Vec{9.0, 12.0}));
  EXPECT_THROW(matvec(a, {1.0}), std::invalid_argument);
  EXPECT_THROW(matvec_transposed(a, {1.0}), std::invalid_argument);
}

TEST(Matrix, QuadFormAndOuter) {
  const Matrix a = {{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(quad_form({1.0, 2.0}, a, {1.0, 2.0}), 2.0 + 12.0);
  const Matrix o = outer({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(o(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(o(0, 1), 4.0);
}

TEST(Matrix, SymmetrizeAndIsSymmetric) {
  Matrix m = {{1.0, 2.0}, {4.0, 5.0}};
  EXPECT_FALSE(m.is_symmetric());
  m.symmetrize();
  EXPECT_TRUE(m.is_symmetric());
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, FrobeniusNormAndDot) {
  const Matrix m = {{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_dot(m, Matrix::identity(2)), 7.0);
}

TEST(Matrix, ArithmeticOperators) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(approx_equal(a + b, Matrix{{2.0, 3.0}, {4.0, 5.0}}, 1e-15));
  EXPECT_TRUE(approx_equal(a - b, Matrix{{0.0, 1.0}, {2.0, 3.0}}, 1e-15));
  EXPECT_TRUE(approx_equal(2.0 * a, Matrix{{2.0, 4.0}, {6.0, 8.0}}, 1e-15));
}

TEST(Matrix, MaxAbs) {
  const Matrix m = {{-9.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 9.0);
}

}  // namespace
}  // namespace rcr::num
