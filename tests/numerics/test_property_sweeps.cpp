// Parameterized property sweeps over matrix sizes: the invariants every
// decomposition must satisfy regardless of dimension.
#include <gtest/gtest.h>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/rng.hpp"

namespace rcr::num {
namespace {

class SizeSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  Matrix random_matrix(Rng& rng) const {
    const std::size_t n = GetParam();
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
    return m;
  }

  Matrix random_spd(Rng& rng) const {
    Matrix a = random_matrix(rng);
    Matrix m = a * a.transpose();
    for (std::size_t i = 0; i < m.rows(); ++i)
      m(i, i) += static_cast<double>(m.rows());
    return m;
  }
};

TEST_P(SizeSweep, LuSolveResidualSmall) {
  Rng rng(GetParam());
  const Matrix a = random_matrix(rng);
  const Vec b = rng.normal_vec(GetParam());
  const Vec x = solve(a, b);
  const Vec residual = sub(matvec(a, x), b);
  EXPECT_LT(norm_inf(residual), 1e-8 * (1.0 + norm_inf(b)));
}

TEST_P(SizeSweep, DeterminantMatchesEigenvalueProduct) {
  Rng rng(GetParam() + 10);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const double det = lu_decompose(a).determinant();
  double prod = 1.0;
  for (double l : eigen_symmetric(a).eigenvalues) prod *= l;
  EXPECT_NEAR(det, prod, 1e-6 * (1.0 + std::abs(prod)));
}

TEST_P(SizeSweep, CholeskyMatchesLdltForSpd) {
  Rng rng(GetParam() + 20);
  const Matrix a = random_spd(rng);
  const Vec b = rng.normal_vec(GetParam());
  const auto f = ldlt(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(approx_equal(cholesky_solve(a, b), f->solve(b), 1e-7));
  // All LDL^T pivots of an SPD matrix are positive.
  for (double d : f->d) EXPECT_GT(d, 0.0);
}

TEST_P(SizeSweep, PsdProjectionVariationalInequality) {
  // P = proj_PSD(A) is the closest PSD matrix to A in Frobenius norm:
  // for any PSD Z,  <A - P, Z - P> <= 0.
  Rng rng(GetParam() + 30);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const Matrix p = project_psd(a);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix z = random_matrix(rng);
    z = z * z.transpose();
    z.symmetrize();
    EXPECT_LE(frobenius_dot(a - p, z - p), 1e-8 * (1.0 + a.frobenius_norm() *
                                                             z.frobenius_norm()));
  }
}

TEST_P(SizeSweep, ProjectionDistanceIsNegativeEigenvalueMass) {
  // ||A - proj(A)||_F^2 equals the sum of squared negative eigenvalues.
  Rng rng(GetParam() + 40);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const Matrix p = project_psd(a);
  double neg_mass = 0.0;
  for (double l : eigen_symmetric(a).eigenvalues)
    if (l < 0.0) neg_mass += l * l;
  const double dist2 = std::pow((a - p).frobenius_norm(), 2.0);
  EXPECT_NEAR(dist2, neg_mass, 1e-6 * (1.0 + neg_mass));
}

TEST_P(SizeSweep, SpectralNormBoundsFrobenius) {
  // ||A||_2 <= ||A||_F <= sqrt(n) ||A||_2.
  Rng rng(GetParam() + 50);
  const Matrix a = random_matrix(rng);
  const double s = spectral_norm(a);
  const double f = a.frobenius_norm();
  EXPECT_LE(s, f + 1e-9);
  EXPECT_LE(f, std::sqrt(static_cast<double>(GetParam())) * s + 1e-9);
}

TEST_P(SizeSweep, InverseOfInverseIsIdentityMap) {
  Rng rng(GetParam() + 60);
  const Matrix a = random_spd(rng);  // well-conditioned
  EXPECT_TRUE(approx_equal(inverse(inverse(a)), a, 1e-6 * (1.0 + a.max_abs())));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace rcr::num
