// Parameterized property sweeps over matrix sizes: the invariants every
// decomposition must satisfy regardless of dimension -- plus testkit-driven
// sweeps over *near-singular* matrices, where condition numbers are
// controlled by construction and reported in every failure diagnostic.
#include <gtest/gtest.h>

#include <sstream>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/testkit.hpp"

namespace rcr::num {
namespace {

class SizeSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  Matrix random_matrix(Rng& rng) const {
    const std::size_t n = GetParam();
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
    return m;
  }

  Matrix random_spd(Rng& rng) const {
    Matrix a = random_matrix(rng);
    Matrix m = a * a.transpose();
    for (std::size_t i = 0; i < m.rows(); ++i)
      m(i, i) += static_cast<double>(m.rows());
    return m;
  }
};

TEST_P(SizeSweep, LuSolveResidualSmall) {
  Rng rng(GetParam());
  const Matrix a = random_matrix(rng);
  const Vec b = rng.normal_vec(GetParam());
  const Vec x = solve(a, b);
  const Vec residual = sub(matvec(a, x), b);
  EXPECT_LT(norm_inf(residual), 1e-8 * (1.0 + norm_inf(b)));
}

TEST_P(SizeSweep, DeterminantMatchesEigenvalueProduct) {
  Rng rng(GetParam() + 10);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const double det = lu_decompose(a).determinant();
  double prod = 1.0;
  for (double l : eigen_symmetric(a).eigenvalues) prod *= l;
  EXPECT_NEAR(det, prod, 1e-6 * (1.0 + std::abs(prod)));
}

TEST_P(SizeSweep, CholeskyMatchesLdltForSpd) {
  Rng rng(GetParam() + 20);
  const Matrix a = random_spd(rng);
  const Vec b = rng.normal_vec(GetParam());
  const auto f = ldlt(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(approx_equal(cholesky_solve(a, b), f->solve(b), 1e-7));
  // All LDL^T pivots of an SPD matrix are positive.
  for (double d : f->d) EXPECT_GT(d, 0.0);
}

TEST_P(SizeSweep, PsdProjectionVariationalInequality) {
  // P = proj_PSD(A) is the closest PSD matrix to A in Frobenius norm:
  // for any PSD Z,  <A - P, Z - P> <= 0.
  Rng rng(GetParam() + 30);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const Matrix p = project_psd(a);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix z = random_matrix(rng);
    z = z * z.transpose();
    z.symmetrize();
    EXPECT_LE(frobenius_dot(a - p, z - p), 1e-8 * (1.0 + a.frobenius_norm() *
                                                             z.frobenius_norm()));
  }
}

TEST_P(SizeSweep, ProjectionDistanceIsNegativeEigenvalueMass) {
  // ||A - proj(A)||_F^2 equals the sum of squared negative eigenvalues.
  Rng rng(GetParam() + 40);
  Matrix a = random_matrix(rng);
  a.symmetrize();
  const Matrix p = project_psd(a);
  double neg_mass = 0.0;
  for (double l : eigen_symmetric(a).eigenvalues)
    if (l < 0.0) neg_mass += l * l;
  const double dist2 = std::pow((a - p).frobenius_norm(), 2.0);
  EXPECT_NEAR(dist2, neg_mass, 1e-6 * (1.0 + neg_mass));
}

TEST_P(SizeSweep, SpectralNormBoundsFrobenius) {
  // ||A||_2 <= ||A||_F <= sqrt(n) ||A||_2.
  Rng rng(GetParam() + 50);
  const Matrix a = random_matrix(rng);
  const double s = spectral_norm(a);
  const double f = a.frobenius_norm();
  EXPECT_LE(s, f + 1e-9);
  EXPECT_LE(f, std::sqrt(static_cast<double>(GetParam())) * s + 1e-9);
}

TEST_P(SizeSweep, InverseOfInverseIsIdentityMap) {
  Rng rng(GetParam() + 60);
  const Matrix a = random_spd(rng);  // well-conditioned
  EXPECT_TRUE(approx_equal(inverse(inverse(a)), a, 1e-6 * (1.0 + a.max_abs())));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

// ---------------------------------------------------------------------------
// Near-singular sweeps.  Matrices are built as Q1 diag(s) Q2^T with log-
// spaced spectra, so the conditioning is a controlled input rather than an
// accident of sampling, and every diagnostic carries the measured condition
// number (the failure mode these sweeps exist to catch -- pivoting bugs --
// scales with it).

namespace tk = rcr::testkit;

std::string cond_tag(const Matrix& m) {
  std::ostringstream os;
  os.precision(3);
  os << " [cond_1 ~ " << condition_number_1(m) << ", n = " << m.rows() << "]";
  return os.str();
}

TEST(NearSingularSweep, LuDecomposeIntoBitIdenticalAcrossConditioning) {
  RCR_EXPECT_PROP(tk::check<Matrix>(
      "lu_decompose_into == lu_decompose on near-singular input",
      tk::gen_near_singular(2, 8, 1.0, 12.0), [](const Matrix& m) {
        const LuDecomposition fresh = lu_decompose(m);
        LuDecomposition into;
        lu_decompose_into(m, into);
        std::string diag = tk::expect_bits(fresh.lu, into.lu, "lu factors");
        if (diag.empty() && fresh.perm != into.perm) diag = "pivot order";
        if (diag.empty() && fresh.singular != into.singular)
          diag = "singularity flag";
        return diag.empty() ? diag : diag + cond_tag(m);
      }));
}

TEST(NearSingularSweep, SolveResidualStaysSmallUpToExtremeConditioning) {
  // Partial-pivoted LU is backward stable: the *residual* ||Ax - b|| stays
  // ~eps regardless of conditioning, even when the error ||x - x*|| blows
  // up with cond(A).  A residual excursion means lost pivoting accuracy.
  RCR_EXPECT_PROP(tk::check<Matrix>(
      "near-singular solve residual bounded independent of cond",
      tk::gen_near_singular(2, 8, 1.0, 10.0), [](const Matrix& m) {
        const LuDecomposition f = lu_decompose(m);
        if (f.singular) return std::string();  // 10^10 should never trip this
        const Vec b(m.rows(), 1.0);
        Vec x;
        f.solve_into(b, x);
        std::string diag =
            tk::expect_bits(f.solve(b), x, "solve_into vs solve");
        if (!diag.empty()) return diag + cond_tag(m);
        const Vec residual = sub(matvec(m, x), b);
        const double rel = norm_inf(residual) / (1.0 + norm_inf(x));
        if (rel > 1e-11 * static_cast<double>(m.rows())) {
          std::ostringstream os;
          os << "relative residual " << rel << cond_tag(m);
          return os.str();
        }
        return std::string();
      }));
}

TEST(NearSingularSweep, ForwardErrorScalesWithConditionNumber) {
  // Solve A x = A x_true and compare to x_true: the error is bounded by
  // ~cond(A) * eps with a generous constant.  Exceeding it by orders of
  // magnitude indicates an unstable elimination, not just ill conditioning.
  RCR_EXPECT_PROP(tk::check<Matrix>(
      "near-singular forward error ~ cond * eps",
      tk::gen_near_singular(2, 8, 1.0, 9.0), [](const Matrix& m) {
        const double cond = condition_number_1(m);
        if (!std::isfinite(cond)) return std::string();
        const Vec x_true(m.rows(), 1.0);
        const Vec b = matvec(m, x_true);
        const Vec x = solve(m, b);
        const double err = norm_inf(sub(x, x_true));
        const double bound =
            1e-12 * cond * static_cast<double>(m.rows()) + 1e-12;
        if (err > bound) {
          std::ostringstream os;
          os << "forward error " << err << " exceeds " << bound
             << cond_tag(m);
          return os.str();
        }
        return std::string();
      }));
}

TEST(NearSingularSweep, ConditionEstimateTracksTheConstructedSpectrum) {
  // The 1-norm estimate must be within a dimension-sized factor of the
  // spectral condition number we constructed.
  RCR_EXPECT_PROP(tk::check<std::size_t>(
      "condition_number_1 tracks the built-in spectrum", tk::gen_size(2, 8),
      [](const std::size_t& n) {
        num::Rng rng(1000 + n);
        for (double log_cond : {2.0, 5.0, 8.0}) {
          Vec spectrum(n);
          for (std::size_t i = 0; i < n; ++i) {
            const double t = n == 1 ? 0.0
                                    : static_cast<double>(i) /
                                          static_cast<double>(n - 1);
            spectrum[i] = std::pow(10.0, -log_cond * t);
          }
          const Matrix m = tk::matrix_with_spectrum(spectrum, rng);
          const double cond = condition_number_1(m);
          const double target = std::pow(10.0, log_cond);
          const double dim = static_cast<double>(n);
          if (cond < target / (dim * dim * 10.0) ||
              cond > target * dim * dim * 10.0) {
            std::ostringstream os;
            os << "cond_1 " << cond << " far from constructed " << target
               << " at n = " << n;
            return os.str();
          }
        }
        return std::string();
      }));
}

}  // namespace
}  // namespace rcr::num
