#include "rcr/numerics/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rcr::num {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i)
    differ |= a.uniform() != b.uniform();
  EXPECT_TRUE(differ);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const std::size_t n = 20000;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += rng.normal(2.0, 3.0);
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(Rng, RayleighMeanMatchesTheory) {
  // E[Rayleigh(sigma)] = sigma * sqrt(pi/2).
  Rng rng(6);
  const double sigma = 2.0;
  const std::size_t n = 20000;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += rng.rayleigh(sigma);
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, sigma * std::sqrt(std::acos(-1.0) / 2.0), 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(7);
  std::size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[rng.categorical({1.0, 2.0, 7.0})];
  const double total = 30000.0;
  EXPECT_NEAR(counts[0] / total, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / total, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / total, 0.7, 0.02);
}

TEST(Rng, CategoricalNeverPicksZeroWeight) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i)
    EXPECT_NE(rng.categorical({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, CategoricalInvalidInputsThrow) {
  Rng rng(9);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(10);
  auto p = rng.permutation(20);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, VectorHelpersSized) {
  Rng rng(12);
  EXPECT_EQ(rng.uniform_vec(7).size(), 7u);
  EXPECT_EQ(rng.normal_vec(5).size(), 5u);
}

}  // namespace
}  // namespace rcr::num
