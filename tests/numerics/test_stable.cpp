#include "rcr/numerics/stable.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rcr::num {
namespace {

TEST(KahanSum, MatchesNaiveOnBenignInput) {
  const Vec v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(kahan_sum(v), 10.0);
  EXPECT_DOUBLE_EQ(naive_sum(v), 10.0);
}

TEST(KahanSum, BeatsNaiveOnCancellation) {
  // Many tiny values against a huge one: naive summation loses them all.
  Vec v;
  v.push_back(1e16);
  for (int i = 0; i < 10000; ++i) v.push_back(1.0);
  v.push_back(-1e16);
  const double exact = 10000.0;
  EXPECT_DOUBLE_EQ(kahan_sum(v), exact);
  EXPECT_NE(naive_sum(v), exact);  // demonstrates the round-off loss
}

TEST(LogSumExp, MatchesDirectForSmallInputs) {
  const Vec x = {0.0, 1.0, 2.0};
  const double direct =
      std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(log_sum_exp(x), direct, 1e-12);
}

TEST(LogSumExp, NoOverflowForHugeLogits) {
  const Vec x = {1000.0, 1000.0};
  EXPECT_NEAR(log_sum_exp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
  EXPECT_LT(log_sum_exp({}), 0.0);
}

TEST(Softmax, SumsToOneAndOrdersPreserved) {
  const Vec p = softmax({1.0, 2.0, 3.0});
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableForHugeLogitsWhereNaiveOverflows) {
  const Vec x = {800.0, 800.5};
  const Vec stable = softmax(x);
  EXPECT_TRUE(all_finite(stable));
  EXPECT_NEAR(stable[0] + stable[1], 1.0, 1e-12);

  const Vec naive = softmax_naive(x);
  EXPECT_FALSE(all_finite(naive));  // exp(800) overflows
}

TEST(LogSoftmax, FusedIsFiniteWhereNaiveUnderflows) {
  // Sec. V of the paper: "as the softmax output approaches 0, the log output
  // approaches infinity".  A large logit spread underflows the naive path.
  const Vec x = {0.0, 1000.0};
  const Vec fused = log_softmax(x);
  EXPECT_TRUE(all_finite(fused));
  EXPECT_NEAR(fused[1], 0.0, 1e-9);
  EXPECT_NEAR(fused[0], -1000.0, 1e-6);

  const Vec naive = log_softmax_naive(x);
  EXPECT_FALSE(all_finite(naive));  // log(0) = -inf
}

TEST(LogSoftmax, AgreesWithNaiveInBenignRegime) {
  const Vec x = {0.1, -0.3, 0.7};
  const Vec fused = log_softmax(x);
  const Vec naive = log_softmax_naive(x);
  EXPECT_TRUE(approx_equal(fused, naive, 1e-12));
}

TEST(StableNorm2, MatchesHypotOnExtremeValues) {
  // Components whose squares overflow.
  const Vec x = {1e200, 1e200};
  EXPECT_NEAR(stable_norm2(x) / (std::sqrt(2.0) * 1e200), 1.0, 1e-12);
  // Components whose squares underflow.
  const Vec y = {3e-200, 4e-200};
  EXPECT_NEAR(stable_norm2(y) / 5e-200, 1.0, 1e-12);
}

TEST(StableNorm2, ZeroVector) { EXPECT_DOUBLE_EQ(stable_norm2({0.0, 0.0}), 0.0); }

TEST(StableHypot, Basic) { EXPECT_DOUBLE_EQ(stable_hypot(3.0, 4.0), 5.0); }

TEST(RelativeError, Basics) {
  EXPECT_NEAR(relative_error(1.01, 1.0), 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(AllFinite, DetectsInfAndNan) {
  EXPECT_TRUE(all_finite({1.0, -2.0}));
  EXPECT_FALSE(all_finite({1.0, std::numeric_limits<double>::infinity()}));
  EXPECT_FALSE(all_finite({std::nan("")}));
}

}  // namespace
}  // namespace rcr::num
