#include "rcr/numerics/vector_ops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rcr::num {
namespace {

TEST(VectorOps, AddSubtractScale) {
  const Vec a = {1.0, 2.0, 3.0};
  const Vec b = {4.0, -5.0, 6.0};
  EXPECT_EQ(add(a, b), (Vec{5.0, -3.0, 9.0}));
  EXPECT_EQ(sub(a, b), (Vec{-3.0, 7.0, -3.0}));
  EXPECT_EQ(scale(a, 2.0), (Vec{2.0, 4.0, 6.0}));
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vec a = {1.0, 2.0};
  const Vec b = {1.0};
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(sub(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(hadamard(a, b), std::invalid_argument);
}

TEST(VectorOps, AxpyAccumulates) {
  const Vec x = {1.0, 2.0};
  Vec y = {10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(VectorOps, DotAndNorms) {
  const Vec a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
}

TEST(VectorOps, NormsOfEmptyVector) {
  const Vec e;
  EXPECT_DOUBLE_EQ(norm2(e), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(e), 0.0);
  EXPECT_DOUBLE_EQ(norm1(e), 0.0);
}

TEST(VectorOps, NormInfHandlesNegatives) {
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
}

TEST(VectorOps, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(VectorOps, Hadamard) {
  EXPECT_EQ(hadamard({1.0, 2.0, 3.0}, {2.0, 0.5, -1.0}),
            (Vec{2.0, 1.0, -3.0}));
}

TEST(VectorOps, ClampRespectsBounds) {
  const Vec v = {-2.0, 0.5, 9.0};
  const Vec lo = {0.0, 0.0, 0.0};
  const Vec hi = {1.0, 1.0, 1.0};
  EXPECT_EQ(clamp(v, lo, hi), (Vec{0.0, 0.5, 1.0}));
}

TEST(VectorOps, LerpEndpointsAndMidpoint) {
  const Vec a = {0.0, 10.0};
  const Vec b = {2.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec{1.0, 15.0}));
}

TEST(VectorOps, ApproxEqual) {
  EXPECT_TRUE(approx_equal({1.0, 2.0}, {1.0 + 1e-12, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0, 2.0}, {1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0}, {1.0, 2.0}, 1e-9));
}

TEST(VectorOps, ConstantFill) {
  const Vec c = constant(4, 3.5);
  ASSERT_EQ(c.size(), 4u);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 3.5);
}

}  // namespace
}  // namespace rcr::num
