// Minimal JSON DOM parser for the observability test battery.
//
// trace_json() / metrics_json() emit machine-readable exports; these tests
// must validate their *structure* (chrome trace-event schema, metrics field
// sets) without taking a JSON library dependency.  This is a strict
// recursive-descent parser over the JSON subset rcr::obs emits: objects,
// arrays, strings with escapes, numbers, true/false/null.  Object key order
// is preserved so exports can also be checked for determinism.  Test-only;
// throws std::runtime_error with a byte offset on any malformed input so a
// schema regression fails loudly.
#pragma once

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rcr::obstest {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// First member named `key`, or nullptr.
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Member access that throws on absence -- keeps test bodies terse.
  const JsonValue& at(const std::string& key) const {
    const JsonValue* v = find(key);
    if (v == nullptr) throw std::runtime_error("missing key: " + key);
    return *v;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
          // rcr::obs only escapes control bytes; anything else is suspect.
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = parse_string();
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string slice = text_.substr(start, pos_ - start);
    v.number = std::strtod(slice.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue parse_json(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace rcr::obstest
