// rcr::obs metrics registry semantics: counter/gauge/histogram arithmetic,
// labelled cells, disabled-path no-ops, reset, snapshot determinism, the two
// export formats, and exact merges under concurrent writers (the property
// the lock-sharded registry + thread-local cache must never lose).
//
// Metric names here are test-local literals ("test.obs.*") so the suite
// never collides with solver instrumentation counters registered by other
// binaries' workloads; the registry is process-global and cells persist,
// which is why every case pins values via ScopedMetrics (arm + zero).
#include "rcr/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs_json.hpp"

namespace rcr::obs {
namespace {

const MetricSample* find_sample(const std::vector<MetricSample>& snapshot,
                                const std::string& name,
                                const std::string& label_value = "") {
  for (const MetricSample& s : snapshot)
    if (s.name == name && s.label_value == label_value) return &s;
  return nullptr;
}

TEST(Metrics, CounterAccumulatesDeltas) {
  ScopedMetrics scope;
  counter_add("test.obs.counter");
  counter_add("test.obs.counter");
  counter_add("test.obs.counter", 5);
  const auto snap = metrics_snapshot();
  const MetricSample* s = find_sample(snap, "test.obs.counter");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, "counter");
  EXPECT_DOUBLE_EQ(s->value, 7.0);
  EXPECT_TRUE(s->label_key.empty());
}

TEST(Metrics, LabelledCountersKeepSeparateCells) {
  ScopedMetrics scope;
  counter_add("test.obs.labelled", "site", "alpha", 2);
  counter_add("test.obs.labelled", "site", "beta", 3);
  counter_add("test.obs.labelled", "site", "alpha");
  const auto snap = metrics_snapshot();
  const MetricSample* a = find_sample(snap, "test.obs.labelled", "alpha");
  const MetricSample* b = find_sample(snap, "test.obs.labelled", "beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->value, 3.0);
  EXPECT_DOUBLE_EQ(b->value, 3.0);
  EXPECT_EQ(a->label_key, "site");
}

TEST(Metrics, SameLabelContentFromDifferentPointersMerges) {
  // The TL cache keys on pointer identity, but the registry keys on string
  // content: two distinct buffers holding equal text must hit one cell.
  ScopedMetrics scope;
  static const char buf_a[] = {'s', 'a', 'm', 'e', '\0'};
  static const char buf_b[] = {'s', 'a', 'm', 'e', '\0'};
  ASSERT_NE(static_cast<const void*>(buf_a), static_cast<const void*>(buf_b));
  counter_add("test.obs.merge", "site", buf_a, 2);
  counter_add("test.obs.merge", "site", buf_b, 3);
  const auto snap = metrics_snapshot();
  const MetricSample* s = find_sample(snap, "test.obs.merge", "same");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 5.0);
}

TEST(Metrics, GaugeSetIsLastWriteAndMaxIsHighWater) {
  ScopedMetrics scope;
  gauge_set("test.obs.gauge", 4.0);
  gauge_set("test.obs.gauge", 2.5);
  gauge_max("test.obs.highwater", 8.0);
  gauge_max("test.obs.highwater", 3.0);   // lower: must not regress
  gauge_max("test.obs.highwater", 11.0);  // higher: must raise
  const auto snap = metrics_snapshot();
  const MetricSample* g = find_sample(snap, "test.obs.gauge");
  const MetricSample* hw = find_sample(snap, "test.obs.highwater");
  ASSERT_NE(g, nullptr);
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(g->kind, "gauge");
  EXPECT_DOUBLE_EQ(g->value, 2.5);
  EXPECT_DOUBLE_EQ(hw->value, 11.0);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  ScopedMetrics scope;
  histogram_observe("test.obs.hist", 0.5);   // le=1   -> bucket 0
  histogram_observe("test.obs.hist", 3.0);   // le=4   -> bucket 2
  histogram_observe("test.obs.hist", 4.0);   // le=4   -> bucket 2 (inclusive)
  histogram_observe("test.obs.hist", 1e9);   // beyond 2^19 -> overflow
  const auto snap = metrics_snapshot();
  const MetricSample* h = find_sample(snap, "test.obs.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, "histogram");
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->value, 0.5 + 3.0 + 4.0 + 1e9);  // sum
  ASSERT_EQ(h->buckets.size(), static_cast<std::size_t>(kHistogramBuckets) + 1);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 0u);
  EXPECT_EQ(h->buckets[2], 2u);
  EXPECT_EQ(h->buckets.back(), 1u);
}

TEST(Metrics, DisabledCallsAreNoOps) {
  ScopedMetrics scope;
  counter_add("test.obs.disabled.probe");  // registers the cell while armed
  set_metrics_enabled(false);
  counter_add("test.obs.disabled.probe", 100);
  gauge_set("test.obs.disabled.gauge", 1.0);
  histogram_observe("test.obs.disabled.hist", 1.0);
  set_metrics_enabled(true);
  const auto snap = metrics_snapshot();
  const MetricSample* probe = find_sample(snap, "test.obs.disabled.probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_DOUBLE_EQ(probe->value, 1.0);  // only the armed increment landed
  // The disabled gauge/histogram writes must not even register cells.
  EXPECT_EQ(find_sample(snap, "test.obs.disabled.gauge"), nullptr);
  EXPECT_EQ(find_sample(snap, "test.obs.disabled.hist"), nullptr);
}

TEST(Metrics, ResetZeroesButKeepsCellsRegistered) {
  ScopedMetrics scope;
  counter_add("test.obs.reset", 9);
  histogram_observe("test.obs.reset.hist", 2.0);
  reset_metrics();
  const auto snap = metrics_snapshot();
  const MetricSample* c = find_sample(snap, "test.obs.reset");
  const MetricSample* h = find_sample(snap, "test.obs.reset.hist");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 0.0);
  EXPECT_EQ(h->count, 0u);
  EXPECT_DOUBLE_EQ(h->value, 0.0);
  // Cached pointers stay valid: writing after reset accumulates from zero.
  counter_add("test.obs.reset", 4);
  const auto snap2 = metrics_snapshot();
  const MetricSample* c2 = find_sample(snap2, "test.obs.reset");
  ASSERT_NE(c2, nullptr);
  EXPECT_DOUBLE_EQ(c2->value, 4.0);
}

TEST(Metrics, SnapshotIsSortedByNameThenLabel) {
  ScopedMetrics scope;
  counter_add("test.obs.sort.b");
  counter_add("test.obs.sort.a", "k", "z");
  counter_add("test.obs.sort.a", "k", "a");
  const auto snap = metrics_snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    const auto key = [](const MetricSample& s) {
      return std::make_tuple(s.name, s.label_key, s.label_value);
    };
    EXPECT_LE(key(snap[i - 1]), key(snap[i])) << "snapshot not sorted at " << i;
  }
}

TEST(Metrics, ConcurrentCountersMergeExactly) {
  // The core lock-sharded property: N threads hammering shared + private
  // cells lose no increments and the merged totals are schedule-independent.
  ScopedMetrics scope;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  static const char* const kPrivateNames[kThreads] = {
      "test.obs.mt.t0", "test.obs.mt.t1", "test.obs.mt.t2", "test.obs.mt.t3"};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter_add("test.obs.mt.shared");
        counter_add(kPrivateNames[t]);
        if (i % 64 == 0) histogram_observe("test.obs.mt.hist", double(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = metrics_snapshot();
  const MetricSample* shared = find_sample(snap, "test.obs.mt.shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_DOUBLE_EQ(shared->value, double(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    const MetricSample* mine = find_sample(snap, kPrivateNames[t]);
    ASSERT_NE(mine, nullptr);
    EXPECT_DOUBLE_EQ(mine->value, double(kPerThread));
  }
  const MetricSample* h = find_sample(snap, "test.obs.mt.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * ((kPerThread + 63) / 64));
}

TEST(Metrics, ManyDistinctNamesOverflowTheTlCacheSafely) {
  // More label values than TL-cache slots forces eviction on the fast path;
  // totals must still be exact.
  ScopedMetrics scope;
  static std::vector<std::string> labels;  // static: cells cache the pointers
  if (labels.empty())
    for (int i = 0; i < 600; ++i) labels.push_back("v" + std::to_string(i));
  for (int round = 0; round < 3; ++round)
    for (const std::string& l : labels)
      counter_add("test.obs.evict", "id", l.c_str());
  const auto snap = metrics_snapshot();
  std::uint64_t total = 0;
  for (const MetricSample& s : snap)
    if (s.name == "test.obs.evict") total += static_cast<std::uint64_t>(s.value);
  EXPECT_EQ(total, 3u * labels.size());
}

TEST(Metrics, JsonExportParsesAndCarriesKindFields) {
  ScopedMetrics scope;
  counter_add("test.obs.json.counter", 2);
  gauge_set("test.obs.json.gauge", 1.5);
  histogram_observe("test.obs.json.hist", 3.0);
  const obstest::JsonValue doc = obstest::parse_json(metrics_json());
  ASSERT_TRUE(doc.is_object());
  const obstest::JsonValue& metrics = doc.at("metrics");
  ASSERT_TRUE(metrics.is_array());
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const obstest::JsonValue& m : metrics.array) {
    ASSERT_TRUE(m.is_object());
    const std::string name = m.at("name").string;
    const std::string kind = m.at("kind").string;
    if (name == "test.obs.json.counter") {
      saw_counter = true;
      EXPECT_EQ(kind, "counter");
      EXPECT_DOUBLE_EQ(m.at("value").number, 2.0);
    } else if (name == "test.obs.json.gauge") {
      saw_gauge = true;
      EXPECT_EQ(kind, "gauge");
      EXPECT_DOUBLE_EQ(m.at("value").number, 1.5);
    } else if (name == "test.obs.json.hist") {
      saw_hist = true;
      EXPECT_EQ(kind, "histogram");
      EXPECT_DOUBLE_EQ(m.at("count").number, 1.0);
      EXPECT_DOUBLE_EQ(m.at("sum").number, 3.0);
      EXPECT_EQ(m.at("buckets").array.size(),
                static_cast<std::size_t>(kHistogramBuckets) + 1);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(Metrics, PrometheusExportSanitizesAndCumulates) {
  ScopedMetrics scope;
  counter_add("test.obs.prom.counter", "site", "x", 3);
  histogram_observe("test.obs.prom.hist", 3.0);  // lands in le=4
  const std::string text = metrics_prometheus();
  EXPECT_NE(text.find("# TYPE test_obs_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_counter{site=\"x\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_prom_hist histogram"),
            std::string::npos);
  // Cumulative buckets: le=2 excludes the 3.0 sample, le=4 and +Inf include.
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"2\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_count 1"), std::string::npos);
  // No raw dots may survive in metric names.
  EXPECT_EQ(text.find("test.obs.prom"), std::string::npos);
}

TEST(Metrics, WriteMetricsExpandsPidAndPicksFormatBySuffix) {
  ScopedMetrics scope;
  counter_add("test.obs.write", 1);
  const std::string json_path = "obs_test_metrics_%p.json";
  const std::string prom_path = "obs_test_metrics_%p.prom";
  ASSERT_TRUE(write_metrics(json_path));
  ASSERT_TRUE(write_metrics(prom_path));
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  const std::string json_file = "obs_test_metrics_" + pid + ".json";
  const std::string prom_file = "obs_test_metrics_" + pid + ".prom";
  auto slurp = [](const std::string& p) {
    std::string out;
    if (FILE* f = std::fopen(p.c_str(), "rb")) {
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
      std::fclose(f);
    }
    return out;
  };
  const std::string json_text = slurp(json_file);
  const std::string prom_text = slurp(prom_file);
  std::remove(json_file.c_str());
  std::remove(prom_file.c_str());
  ASSERT_FALSE(json_text.empty()) << "pid expansion failed for " << json_path;
  ASSERT_FALSE(prom_text.empty());
  EXPECT_NO_THROW(obstest::parse_json(json_text));
  EXPECT_NE(prom_text.find("# TYPE test_obs_write counter"),
            std::string::npos);
}

TEST(Metrics, ScopedMetricsRestoresPriorState) {
  const bool before = metrics_enabled();
  {
    ScopedMetrics scope;
    EXPECT_TRUE(metrics_enabled());
  }
  EXPECT_EQ(metrics_enabled(), before);
}

}  // namespace
}  // namespace rcr::obs
