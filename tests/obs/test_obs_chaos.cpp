// Chaos-suite extension for observability: fault injections and fallback
// degradations must be *exactly* accounted for in the telemetry.
//
//  - Every injected fault increments rcr.faults.injected{site=...} once and
//    emits exactly one annotated "fault.injected" instant span -- the
//    injector's own per-site counters are the independent ground truth.
//  - Every FallbackChain degradation step increments
//    rcr.fallback.degraded{chain=...} once, for synthetic chains and for
//    the real verify bounds chain under an injected CROWN fault.
//
// Runs under `ctest -L chaos`; failures print the RCR_FAULTS replay spec.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs_json.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/trust_region.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/robust/fallback.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/verify/bounds.hpp"

namespace rcr {
namespace {

namespace faults = robust::faults;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("RCR_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 20260806;
}

std::string spec_for(const std::string& sites) {
  return "seed=" + std::to_string(chaos_seed()) + ",rate=1,sites=" + sites;
}

double labelled_counter(const std::string& name, const std::string& label) {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == name && s.label_value == label) return s.value;
  return 0.0;
}

// Instant spans named `event` whose E carries args.<key> == value.
std::uint64_t annotated_instants(const std::string& event,
                                 const std::string& key,
                                 const std::string& value) {
  const obstest::JsonValue doc = obstest::parse_json(obs::trace_json());
  std::uint64_t n = 0;
  for (const obstest::JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("name").string != event || e.at("ph").string != "E") continue;
    const obstest::JsonValue* args = e.find("args");
    if (args != nullptr && args->has(key) && args->at(key).string == value)
      ++n;
  }
  return n;
}

// ---- Small workloads that reliably trip their site at rate=1.

void run_admm() {
  num::Rng rng(3);
  const num::Matrix p = opt::random_psd(4, 4, rng) + num::Matrix::identity(4);
  opt::admm_box_qp(p, rng.normal_vec(4), Vec(4, -1.0), Vec(4, 1.0));
}

opt::Smooth rosenbrock() {
  opt::Smooth f;
  f.value = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  f.gradient = [](const Vec& x) {
    const double b = x[1] - x[0] * x[0];
    return Vec{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  return f;
}

void run_lbfgs() { opt::lbfgs(rosenbrock(), Vec{-1.2, 1.0}); }

void run_trust_region() {
  opt::trust_region_bfgs(rosenbrock(), Vec{-1.2, 1.0});
}

void run_pso() {
  pso::PsoConfig c;
  c.swarm_size = 8;
  c.max_iterations = 10;
  c.seed = 2;
  pso::minimize(pso::sphere(2), c);
}

struct SiteCase {
  const char* site;
  std::function<void()> workload;
};

TEST(ObsChaos, EveryInjectionTicksCounterAndInstantExactlyOnce) {
  const std::vector<SiteCase> cases = {
      {"admm.iterate.nan", run_admm},
      {"admm.deadline", run_admm},
      {"lbfgs.gradient.nan", run_lbfgs},
      {"tr.step.nan", run_trust_region},
      {"tr.deadline", run_trust_region},
      {"pso.objective.nan", run_pso},  // keyed variant, parallel eval phase
  };
  for (const SiteCase& c : cases) {
    obs::ScopedMetrics metrics;
    obs::ScopedTrace trace;
    faults::ScopedFaults scoped(spec_for(c.site));
    SCOPED_TRACE("replay: RCR_FAULTS=\"" + faults::replay_spec() + "\"");
    c.workload();
    const std::uint64_t ground_truth = faults::injection_count(c.site);
    ASSERT_GT(ground_truth, 0u) << c.site << " never fired";
    EXPECT_EQ(labelled_counter("rcr.faults.injected", c.site),
              double(ground_truth))
        << c.site;
    EXPECT_EQ(annotated_instants("fault.injected", "site", c.site),
              ground_truth)
        << c.site;
  }
}

TEST(ObsChaos, LabelledCountersSumToTotalInjections) {
  obs::ScopedMetrics metrics;
  // The spec-string grammar cannot carry a comma list, so build the
  // multi-family policy directly.
  faults::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = chaos_seed();
  cfg.rate = 1.0;
  cfg.sites = "admm.*,tr.*,lbfgs.*";
  faults::ScopedFaults scoped(cfg);
  SCOPED_TRACE("replay: RCR_FAULTS=\"" + faults::replay_spec() + "\"");
  run_admm();
  run_trust_region();
  run_lbfgs();
  double labelled_sum = 0.0;
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == "rcr.faults.injected") labelled_sum += s.value;
  EXPECT_GT(faults::total_injections(), 0u);
  EXPECT_EQ(labelled_sum, double(faults::total_injections()));
}

TEST(ObsChaos, SyntheticChainCountsOneDegradationPerFailedStep) {
  obs::ScopedMetrics metrics;
  obs::ScopedTrace trace;
  robust::FallbackChain<int> chain("obs-test-chain");
  chain
      .add("tight", robust::Soundness::kExact,
           [] {
             robust::Result<int> r;
             r.status = robust::make_status(
                 robust::StatusCode::kNumericalFailure, "synthetic");
             return r;
           })
      .add("looser", robust::Soundness::kRelaxation,
           [] {
             robust::Result<int> r;
             r.status = robust::make_status(
                 robust::StatusCode::kNonConverged, "synthetic");
             return r;
           })
      .add("fallback", robust::Soundness::kHeuristic, [] {
        robust::Result<int> r;
        r.value = 42;
        return r;
      });
  const robust::ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.value, 42);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(labelled_counter("rcr.fallback.degraded", "obs-test-chain"), 2.0);
  EXPECT_EQ(annotated_instants("fallback.degraded", "chain", "obs-test-chain"),
            2u);
  // The chain's own span carries its identity and the winning step.
  const obstest::JsonValue doc = obstest::parse_json(obs::trace_json());
  bool saw_run_span = false;
  for (const obstest::JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("name").string != "fallback.run" || e.at("ph").string != "E")
      continue;
    const obstest::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    if (args->at("chain").string != "obs-test-chain") continue;
    saw_run_span = true;
    EXPECT_EQ(args->at("attempts").number, 3.0);
    EXPECT_EQ(args->at("degraded").number, 1.0);
    EXPECT_EQ(args->at("step").string, "fallback");
  }
  EXPECT_TRUE(saw_run_span);
}

TEST(ObsChaos, CleanFirstStepWinRecordsNoDegradation) {
  obs::ScopedMetrics metrics;
  robust::FallbackChain<int> chain("obs-clean-chain");
  chain.add("only", robust::Soundness::kExact, [] {
    robust::Result<int> r;
    r.value = 1;
    return r;
  });
  const robust::ChainOutcome<int> out = chain.run();
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(labelled_counter("rcr.fallback.degraded", "obs-clean-chain"), 0.0);
}

TEST(ObsChaos, RealBoundsChainDegradesUnderInjectedCrownFault) {
  obs::ScopedMetrics metrics;
  obs::ScopedTrace trace;
  faults::ScopedFaults scoped(spec_for("verify.crown.nan"));
  SCOPED_TRACE("replay: RCR_FAULTS=\"" + faults::replay_spec() + "\"");
  num::Rng rng(6);
  const verify::ReluNetwork net = verify::ReluNetwork::random({3, 6, 2}, rng);
  const verify::Box input = verify::Box::around(rng.normal_vec(3), 0.2);
  const verify::RobustBounds rb = verify::compute_bounds_robust(net, input);
  ASSERT_GT(faults::injection_count("verify.crown.nan"), 0u);
  // CROWN failed, the chain stepped down (to IBP), and telemetry saw it.
  EXPECT_EQ(labelled_counter("rcr.fallback.degraded", "bounds"),
            double(faults::injection_count("verify.crown.nan")));
  EXPECT_GE(annotated_instants("fallback.degraded", "chain", "bounds"), 1u);
  EXPECT_EQ(labelled_counter("rcr.faults.injected", "verify.crown.nan"),
            double(faults::injection_count("verify.crown.nan")));
  EXPECT_TRUE(rb.status.usable()) << rb.status.to_string();
}

}  // namespace
}  // namespace rcr
