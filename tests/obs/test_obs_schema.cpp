// Golden-schema regression for the observability exports.
//
// Trace side: the export must be loadable by chrome://tracing -- every
// event carries the required keys, ph is B or E, timestamps are monotone
// per tid, and B/E pairs balance.  Metrics side: the JSON export is
// validated field-by-field against the committed schema
// tests/golden/obs_schema.json, which also pins the set of solver metric
// names a canonical workload must produce -- renaming a counter (a
// dashboard-breaking change) fails here first.
//
// Regenerate after an intentional change with:
//   RCR_REGEN_GOLDEN=1 ctest -L golden -R obs
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs_json.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/opt/trust_region.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/testkit/testkit.hpp"
#include "rcr/verify/bounds.hpp"

namespace rcr {
namespace {

std::string schema_path() {
  return std::string(RCR_GOLDEN_DIR) + "/obs_schema.json";
}

// Solver metric families whose names the schema pins.  Runtime metrics
// (queue depth, arena high-water, fft cache) are excluded: whether they
// appear depends on pool size and cache state, not on the workload.
bool is_pinned_family(const std::string& name) {
  for (const char* prefix : {"rcr.admm.", "rcr.sdp.", "rcr.qcqp.",
                             "rcr.lbfgs.", "rcr.tr.", "rcr.pso.",
                             "rcr.verify."})
    if (name.rfind(prefix, 0) == 0) return true;
  return false;
}

// One deterministic pass over every instrumented solver family.
void canonical_workload() {
  num::Rng rng(17);
  const num::Matrix p = opt::random_psd(5, 5, rng) + num::Matrix::identity(5);
  opt::admm_box_qp(p, rng.normal_vec(5), Vec(5, -1.0), Vec(5, 1.0));

  opt::Sdp sdp;
  sdp.c = num::Matrix::diag({1.0, 2.0, 3.0});
  sdp.a_eq.push_back(num::Matrix::identity(3));
  sdp.b_eq.push_back(1.0);
  opt::solve_sdp(sdp);

  opt::solve_qcqp_barrier(opt::random_convex_qcqp(3, 2, 0, rng));

  opt::Smooth f;
  f.value = [](const Vec& x) { return x[0] * x[0] + x[1] * x[1]; };
  f.gradient = [](const Vec& x) { return Vec{2.0 * x[0], 2.0 * x[1]}; };
  opt::lbfgs(f, Vec{1.0, -2.0});
  opt::trust_region_bfgs(f, Vec{1.0, -2.0});

  pso::PsoConfig c;
  c.swarm_size = 8;
  c.max_iterations = 15;
  c.seed = 17;
  pso::minimize(pso::sphere(2), c);

  const verify::ReluNetwork net = verify::ReluNetwork::random({3, 6, 2}, rng);
  const verify::Box input = verify::Box::around(rng.normal_vec(3), 0.2);
  verify::ibp_bounds(net, input);
  verify::crown_bounds(net, input);
}

std::string slurp(const std::string& path) {
  std::string out;
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

void regenerate_schema(const std::vector<obs::MetricSample>& snapshot) {
  std::string out =
      "{\n"
      "  \"version\": 1,\n"
      "  \"kinds\": {\n"
      "    \"counter\": [\"name\", \"kind\", \"value\"],\n"
      "    \"gauge\": [\"name\", \"kind\", \"value\"],\n"
      "    \"histogram\": [\"name\", \"kind\", \"count\", \"sum\", "
      "\"buckets\"]\n"
      "  },\n"
      "  \"required_metrics\": [";
  std::set<std::string> names;
  for (const obs::MetricSample& s : snapshot)
    if (is_pinned_family(s.name)) names.insert(s.name);
  bool first = true;
  for (const std::string& name : names) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\"";
  }
  out += "\n  ]\n}\n";
  FILE* f = std::fopen(schema_path().c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << schema_path();
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

TEST(ObsSchema, MetricsJsonMatchesCommittedSchema) {
  obs::ScopedMetrics metrics;
  canonical_workload();
  const std::vector<obs::MetricSample> snapshot = obs::metrics_snapshot();
  if (testkit::env_regen_golden()) {
    regenerate_schema(snapshot);
    SUCCEED() << "regenerated " << schema_path();
  }
  const std::string schema_text = slurp(schema_path());
  ASSERT_FALSE(schema_text.empty()) << "missing golden: " << schema_path();
  const obstest::JsonValue schema = obstest::parse_json(schema_text);
  const obstest::JsonValue& kinds = schema.at("kinds");

  // Field-by-field validation of the live export against the schema.
  const obstest::JsonValue doc = obstest::parse_json(obs::metrics_json());
  ASSERT_TRUE(doc.has("version"));
  const obstest::JsonValue& exported = doc.at("metrics");
  ASSERT_TRUE(exported.is_array());
  ASSERT_FALSE(exported.array.empty());
  std::set<std::string> exported_names;
  for (const obstest::JsonValue& m : exported.array) {
    ASSERT_TRUE(m.is_object());
    const std::string name = m.at("name").string;
    const std::string kind = m.at("kind").string;
    exported_names.insert(name);
    const obstest::JsonValue* required = kinds.find(kind);
    ASSERT_NE(required, nullptr) << name << " has unknown kind " << kind;
    for (const obstest::JsonValue& field : required->array)
      EXPECT_TRUE(m.has(field.string))
          << name << " (" << kind << ") lacks field " << field.string;
    if (const obstest::JsonValue* labels = m.find("labels")) {
      ASSERT_TRUE(labels->is_object()) << name;
      EXPECT_EQ(labels->object.size(), 1u)
          << name << ": exactly one label pair per cell";
    }
  }

  // Every schema-pinned metric name must have been produced.
  for (const obstest::JsonValue& required : schema.at("required_metrics").array)
    EXPECT_TRUE(exported_names.count(required.string) == 1)
        << "canonical workload no longer produces " << required.string
        << " (rename? update tests/golden/obs_schema.json via "
           "RCR_REGEN_GOLDEN=1)";
}

TEST(ObsSchema, TraceJsonIsWellFormedChromeTraceFormat) {
  obs::ScopedTrace trace;
  obs::ScopedMetrics metrics;
  canonical_workload();
  const obstest::JsonValue doc = obstest::parse_json(obs::trace_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("displayTimeUnit"));
  const obstest::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  std::map<int, double> last_ts;
  std::map<int, int> depth;
  for (const obstest::JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    // Required chrome trace-event keys.
    for (const char* key : {"name", "cat", "ph", "ts", "pid", "tid"})
      ASSERT_TRUE(e.has(key)) << "event lacks required key " << key;
    const std::string ph = e.at("ph").string;
    ASSERT_TRUE(ph == "B" || ph == "E") << "unexpected phase " << ph;
    const int tid = static_cast<int>(e.at("tid").number);
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, 0.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-monotone ts on tid " << tid;
    }
    last_ts[tid] = ts;
    depth[tid] += ph == "B" ? 1 : -1;
    ASSERT_GE(depth[tid], 0) << "E before B on tid " << tid;
  }
  for (const auto& [tid, d] : depth)
    EXPECT_EQ(d, 0) << "unmatched B/E pair on tid " << tid;
}

}  // namespace
}  // namespace rcr
