// Solver-facing observability properties (the tentpole contract):
//
//  1. Disabled observability never perturbs a solver: results are
//     bit-identical (testkit ULP oracle at 0 ulps) and the obs entry points
//     make zero heap allocations (rcr_allocprobe).
//  2. Armed observability is *also* bit-exact -- instrumentation reads
//     solver state, it never feeds back into the arithmetic.
//  3. Counter deltas equal independently recomputed ground truth: iteration
//     counts, solve counts, evaluation counts from the returned results of
//     seeded random workloads.
//  4. Span streams are well-formed (stack-nested per thread).
//  5. Metric merges are thread-schedule independent: the same workload under
//     RCR_THREADS=1 and RCR_THREADS=4 serializes to identical solver
//     counters.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs_json.hpp"
#include "rcr/obs/obs.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/opt/trust_region.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/rt/alloc_probe.hpp"
#include "rcr/rt/thread_pool.hpp"
#include "rcr/testkit/ulp.hpp"
#include "rcr/verify/bounds.hpp"

namespace rcr {
namespace {

// Forces both obs subsystems off for a scope (robust to RCR_METRICS /
// RCR_TRACE being armed in the environment, e.g. the CI obs job).
class DisarmObs {
 public:
  DisarmObs()
      : metrics_were_on_(obs::metrics_enabled()),
        trace_was_on_(obs::trace_enabled()) {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
  }
  ~DisarmObs() {
    obs::set_metrics_enabled(metrics_were_on_);
    obs::set_trace_enabled(trace_was_on_);
  }

 private:
  bool metrics_were_on_;
  bool trace_was_on_;
};

double counter_value(const std::string& name) {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == name && s.label_key.empty()) return s.value;
  return -1.0;
}

// ---- Seeded workloads.  Each returns its result so the caller can either
// compare bits or recompute the expected counter deltas.

opt::AdmmResult admm_workload(std::uint64_t seed) {
  num::Rng rng(seed);
  const num::Matrix p =
      opt::random_psd(6, 6, rng) + num::Matrix::identity(6);
  const Vec q = rng.normal_vec(6);
  return opt::admm_box_qp(p, q, Vec(6, -1.0), Vec(6, 1.0));
}

opt::SdpResult sdp_workload() {
  opt::Sdp p;
  p.c = num::Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(num::Matrix::identity(3));
  p.b_eq.push_back(1.0);
  return opt::solve_sdp(p);
}

opt::QcqpResult qcqp_workload(std::uint64_t seed) {
  num::Rng rng(seed);
  return opt::solve_qcqp_barrier(opt::random_convex_qcqp(3, 2, 0, rng));
}

opt::Smooth rosenbrock() {
  opt::Smooth f;
  f.value = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  f.gradient = [](const Vec& x) {
    const double b = x[1] - x[0] * x[0];
    return Vec{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  return f;
}

pso::PsoResult pso_workload(std::uint64_t seed) {
  pso::PsoConfig c;
  c.swarm_size = 12;
  c.max_iterations = 40;
  c.seed = seed;
  return pso::minimize(pso::sphere(3), c);
}

verify::LayerBounds crown_workload(std::uint64_t seed) {
  num::Rng rng(seed);
  const verify::ReluNetwork net = verify::ReluNetwork::random({3, 6, 4, 2}, rng);
  const verify::Box input = verify::Box::around(rng.normal_vec(3), 0.2);
  return verify::crown_bounds(net, input);
}

void expect_same_vec(const Vec& a, const Vec& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    testkit::expect_ulp(a[i], b[i], 0, what);
}

TEST(ObsSolvers, DisabledObsRunsAreBitIdentical) {
  DisarmObs off;
  const opt::AdmmResult a1 = admm_workload(7);
  const opt::AdmmResult a2 = admm_workload(7);
  expect_same_vec(a1.x, a2.x, "admm.x");
  EXPECT_EQ(a1.iterations, a2.iterations);

  const opt::MinimizeResult l1 = opt::lbfgs(rosenbrock(), Vec{-1.2, 1.0});
  const opt::MinimizeResult l2 = opt::lbfgs(rosenbrock(), Vec{-1.2, 1.0});
  expect_same_vec(l1.x, l2.x, "lbfgs.x");
  testkit::expect_ulp(l1.value, l2.value, 0, "lbfgs.value");

  const pso::PsoResult p1 = pso_workload(3);
  const pso::PsoResult p2 = pso_workload(3);
  expect_same_vec(p1.best_position, p2.best_position, "pso.best_position");
  testkit::expect_ulp(p1.best_value, p2.best_value, 0, "pso.best_value");
  EXPECT_EQ(p1.evaluations, p2.evaluations);
}

TEST(ObsSolvers, ArmedObsIsBitExactVersusDisabled) {
  // Instrumentation must read results, never steer them: every solver
  // output under full metrics+tracing matches the disarmed run to 0 ulps.
  opt::AdmmResult admm_off, admm_on;
  opt::SdpResult sdp_off, sdp_on;
  opt::QcqpResult qcqp_off, qcqp_on;
  opt::MinimizeResult tr_off, tr_on;
  pso::PsoResult pso_off, pso_on;
  verify::LayerBounds crown_off, crown_on;
  {
    DisarmObs off;
    admm_off = admm_workload(11);
    sdp_off = sdp_workload();
    qcqp_off = qcqp_workload(11);
    tr_off = opt::trust_region_bfgs(rosenbrock(), Vec{-1.2, 1.0});
    pso_off = pso_workload(11);
    crown_off = crown_workload(11);
  }
  {
    obs::ScopedMetrics metrics;
    obs::ScopedTrace trace;
    admm_on = admm_workload(11);
    sdp_on = sdp_workload();
    qcqp_on = qcqp_workload(11);
    tr_on = opt::trust_region_bfgs(rosenbrock(), Vec{-1.2, 1.0});
    pso_on = pso_workload(11);
    crown_on = crown_workload(11);
  }
  expect_same_vec(admm_off.x, admm_on.x, "admm.x armed-vs-off");
  EXPECT_EQ(admm_off.iterations, admm_on.iterations);
  EXPECT_EQ(sdp_off.iterations, sdp_on.iterations);
  testkit::expect_ulp(sdp_off.objective, sdp_on.objective,
                      0, "sdp.objective armed-vs-off");
  expect_same_vec(qcqp_off.x, qcqp_on.x, "qcqp.x armed-vs-off");
  EXPECT_EQ(qcqp_off.newton_iterations, qcqp_on.newton_iterations);
  expect_same_vec(tr_off.x, tr_on.x, "tr.x armed-vs-off");
  EXPECT_EQ(tr_off.iterations, tr_on.iterations);
  expect_same_vec(pso_off.best_position, pso_on.best_position,
                  "pso.best_position armed-vs-off");
  EXPECT_EQ(pso_off.evaluations, pso_on.evaluations);
  ASSERT_EQ(crown_off.pre_activation.size(), crown_on.pre_activation.size());
  for (std::size_t i = 0; i < crown_off.pre_activation.size(); ++i) {
    expect_same_vec(crown_off.pre_activation[i].lower,
                    crown_on.pre_activation[i].lower,
                    "crown.lower armed-vs-off");
    expect_same_vec(crown_off.pre_activation[i].upper,
                    crown_on.pre_activation[i].upper,
                    "crown.upper armed-vs-off");
  }
  expect_same_vec(crown_off.output.lower, crown_on.output.lower,
                  "crown.output.lower armed-vs-off");
  expect_same_vec(crown_off.output.upper, crown_on.output.upper,
                  "crown.output.upper armed-vs-off");
}

TEST(ObsSolvers, DisabledObsEntryPointsAllocateNothing) {
  if (!rt::alloc_probe_active()) GTEST_SKIP() << "alloc probe not linked";
  DisarmObs off;
  // Warm up so lazy one-time setup elsewhere cannot pollute the window.
  obs::counter_add("test.obs.solvers.warm");
  {
    const rt::AllocDelta delta;
    for (int i = 0; i < 1000; ++i) {
      obs::counter_add("test.obs.solvers.off");
      obs::counter_add("test.obs.solvers.off", "site", "x");
      obs::gauge_set("test.obs.solvers.gauge", double(i));
      obs::gauge_max("test.obs.solvers.gauge", double(i));
      obs::histogram_observe("test.obs.solvers.hist", double(i));
      obs::Span span("test.obs.solvers.span");
      span.attr("i", double(i));
      span.attr_str("s", "v");
      obs::instant("test.obs.solvers.instant", "k", "v");
    }
    EXPECT_EQ(delta.delta(), 0u)
        << "disabled obs path allocated on the heap";
  }
}

TEST(ObsSolvers, ArmedSteadyStateAddsNoAllocationsToAdmm) {
  if (!rt::alloc_probe_active()) GTEST_SKIP() << "alloc probe not linked";
  // After warm-up (cells registered, TL cache filled, ring buffer created)
  // an armed run must allocate exactly as much as a disarmed run: the obs
  // fast paths are allocation-free.
  std::uint64_t allocs_off = 0;
  std::uint64_t allocs_on = 0;
  {
    DisarmObs off;
    admm_workload(5);  // warm the solver's own lazy state
    const rt::AllocDelta delta;
    admm_workload(5);
    allocs_off = delta.delta();
  }
  {
    obs::ScopedMetrics metrics;
    obs::ScopedTrace trace;
    admm_workload(5);  // warm: registers cells, fills TL cache + ring buffer
    const rt::AllocDelta delta;
    admm_workload(5);
    allocs_on = delta.delta();
  }
  EXPECT_EQ(allocs_on, allocs_off)
      << "armed obs steady state allocated on the admm hot path";
}

TEST(ObsSolvers, CounterDeltasMatchRecomputedIterationCounts) {
  obs::ScopedMetrics metrics;

  std::size_t admm_iters = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull})
    admm_iters += admm_workload(seed).iterations;
  EXPECT_EQ(counter_value("rcr.admm.solves"), 3.0);
  EXPECT_EQ(counter_value("rcr.admm.iterations"), double(admm_iters));

  obs::reset_metrics();
  const opt::SdpResult sdp = sdp_workload();
  EXPECT_EQ(counter_value("rcr.sdp.solves"), 1.0);
  EXPECT_EQ(counter_value("rcr.sdp.iterations"), double(sdp.iterations));

  obs::reset_metrics();
  std::size_t newton = 0;
  for (std::uint64_t seed : {1ull, 2ull})
    newton += qcqp_workload(seed).newton_iterations;
  EXPECT_EQ(counter_value("rcr.qcqp.solves"), 2.0);
  EXPECT_EQ(counter_value("rcr.qcqp.newton_iterations"), double(newton));

  obs::reset_metrics();
  const opt::MinimizeResult lb = opt::lbfgs(rosenbrock(), Vec{-1.2, 1.0});
  EXPECT_EQ(counter_value("rcr.lbfgs.minimizes"), 1.0);
  EXPECT_EQ(counter_value("rcr.lbfgs.iterations"), double(lb.iterations));

  obs::reset_metrics();
  const opt::MinimizeResult tr =
      opt::trust_region_bfgs(rosenbrock(), Vec{-1.2, 1.0});
  EXPECT_EQ(counter_value("rcr.tr.solves"), 1.0);
  EXPECT_EQ(counter_value("rcr.tr.iterations"), double(tr.iterations));

  obs::reset_metrics();
  const pso::PsoResult ps = pso_workload(9);
  EXPECT_EQ(counter_value("rcr.pso.solves"), 1.0);
  EXPECT_EQ(counter_value("rcr.pso.generations"), double(ps.iterations));
  EXPECT_EQ(counter_value("rcr.pso.evaluations"), double(ps.evaluations));

  obs::reset_metrics();
  num::Rng rng(4);
  const verify::ReluNetwork net =
      verify::ReluNetwork::random({3, 6, 2}, rng);
  const verify::Box input = verify::Box::around(rng.normal_vec(3), 0.2);
  verify::ibp_bounds(net, input);
  EXPECT_EQ(counter_value("rcr.verify.ibp_passes"), 1.0);
  verify::crown_bounds(net, input);
  EXPECT_EQ(counter_value("rcr.verify.crown_passes"), 1.0);
  // CROWN seeds its pre-activation intervals with an IBP sweep, so the IBP
  // pass counter ticks once more under it.
  EXPECT_EQ(counter_value("rcr.verify.ibp_passes"), 2.0);
}

TEST(ObsSolvers, SpanStreamIsWellFormedAcrossSolvers) {
  obs::ScopedMetrics metrics;
  obs::ScopedTrace trace;
  admm_workload(2);
  sdp_workload();
  crown_workload(2);
  pso_workload(2);
  const obstest::JsonValue doc = obstest::parse_json(obs::trace_json());
  const obstest::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  // Per-tid stack discipline: every E closes the most recent open B of the
  // same name, and all stacks drain to empty.
  std::map<int, std::vector<std::string>> stacks;
  std::map<std::string, int> begins;
  bool crown_nested_ibp = false;
  for (const obstest::JsonValue& e : events.array) {
    const std::string name = e.at("name").string;
    const std::string ph = e.at("ph").string;
    const int tid = static_cast<int>(e.at("tid").number);
    auto& stack = stacks[tid];
    if (ph == "B") {
      if (name == "verify.ibp" && !stack.empty() &&
          stack.back() == "verify.crown")
        crown_nested_ibp = true;
      stack.push_back(name);
      ++begins[name];
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(stack.empty()) << "E without B: " << name;
      EXPECT_EQ(stack.back(), name) << "interleaved spans on tid " << tid;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  EXPECT_EQ(begins["admm.box_qp"], 1);
  EXPECT_EQ(begins["sdp.solve"], 1);
  EXPECT_EQ(begins["verify.crown"], 1);
  EXPECT_EQ(begins["pso.minimize"], 1);
  EXPECT_TRUE(crown_nested_ibp)
      << "verify.ibp span did not nest under verify.crown";
}

TEST(ObsSolvers, MetricMergesAreThreadCountIndependent) {
  // The same PSO workload (its evaluation phase fans out on the global
  // pool) must serialize to identical solver counters whether the pool has
  // 1 or 4 threads -- metric merges carry no schedule dependence.
  const std::size_t threads_before = rt::global_threads();
  auto solver_counters = [] {
    std::map<std::string, double> out;
    for (const obs::MetricSample& s : obs::metrics_snapshot())
      if (s.name.rfind("rcr.pso.", 0) == 0 ||
          s.name.rfind("rcr.admm.", 0) == 0)
        out[s.name] = s.value;
    return out;
  };

  std::map<std::string, double> serial, parallel4;
  {
    obs::ScopedMetrics metrics;
    rt::set_global_threads(1);
    pso_workload(21);
    admm_workload(21);
    serial = solver_counters();
  }
  {
    obs::ScopedMetrics metrics;
    rt::set_global_threads(4);
    pso_workload(21);
    admm_workload(21);
    parallel4 = solver_counters();
  }
  rt::set_global_threads(threads_before);
  EXPECT_EQ(serial, parallel4);
  EXPECT_GT(serial.at("rcr.pso.evaluations"), 0.0);
}

}  // namespace
}  // namespace rcr
