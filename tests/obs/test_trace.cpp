// rcr::obs tracing spans: B/E pairing, scope nesting, attributes, instants,
// the drop-newest-whole-spans policy at buffer capacity, monotonic
// timestamps per thread, and the chrome://tracing JSON export shape.
//
// Every case runs under ScopedTrace (arm + clear) and extracts events by
// parsing trace_json() with the test-local JSON DOM, i.e. the assertions go
// through the same export path chrome://tracing consumes.
#include "rcr/obs/trace.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs_json.hpp"

namespace rcr::obs {
namespace {

struct Event {
  std::string name;
  std::string ph;
  double ts = 0.0;
  int tid = 0;
  const obstest::JsonValue* args = nullptr;
};

// Parses trace_json() into flat events; asserts the document envelope.
std::vector<Event> exported_events(const obstest::JsonValue& doc) {
  EXPECT_TRUE(doc.is_object());
  const obstest::JsonValue& events = doc.at("traceEvents");
  EXPECT_TRUE(events.is_array());
  std::vector<Event> out;
  out.reserve(events.array.size());
  for (const obstest::JsonValue& e : events.array) {
    Event ev;
    ev.name = e.at("name").string;
    ev.ph = e.at("ph").string;
    ev.ts = e.at("ts").number;
    ev.tid = static_cast<int>(e.at("tid").number);
    ev.args = e.find("args");
    out.push_back(ev);
  }
  return out;
}

TEST(Trace, DisabledSpanIsInertAndRecordsNothing) {
  if (std::getenv("RCR_TRACE") != nullptr)
    GTEST_SKIP() << "RCR_TRACE armed tracing at startup";
  ASSERT_FALSE(trace_enabled());
  const std::uint64_t before = trace_event_count();
  {
    Span span("test.trace.disabled");
    EXPECT_FALSE(span.armed());
    span.attr("ignored", 1.0);
    span.attr_str("also", "ignored");
  }
  instant("test.trace.disabled.instant", "k", "v");
  EXPECT_EQ(trace_event_count(), before);
}

TEST(Trace, SpansEmitMatchedBeginEndPairs) {
  ScopedTrace scope;
  {
    Span outer("test.trace.outer");
    EXPECT_TRUE(outer.armed());
    { Span inner("test.trace.inner"); }
  }
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  ASSERT_EQ(events.size(), 4u);
  // Chronological order on one thread: B outer, B inner, E inner, E outer.
  EXPECT_EQ(events[0].ph, "B");
  EXPECT_EQ(events[0].name, "test.trace.outer");
  EXPECT_EQ(events[1].ph, "B");
  EXPECT_EQ(events[1].name, "test.trace.inner");
  EXPECT_EQ(events[2].ph, "E");
  EXPECT_EQ(events[2].name, "test.trace.inner");
  EXPECT_EQ(events[3].ph, "E");
  EXPECT_EQ(events[3].name, "test.trace.outer");
}

TEST(Trace, AttributesRideOnTheEndEvent) {
  ScopedTrace scope;
  {
    Span span("test.trace.attrs");
    span.attr("iterations", 17.0);
    span.attr("converged", 1.0);
    span.attr_str("chain", "box-qp");
  }
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].args, nullptr);  // B carries no args
  ASSERT_NE(events[1].args, nullptr);
  EXPECT_DOUBLE_EQ(events[1].args->at("iterations").number, 17.0);
  EXPECT_DOUBLE_EQ(events[1].args->at("converged").number, 1.0);
  EXPECT_EQ(events[1].args->at("chain").string, "box-qp");
}

TEST(Trace, AttributeOverflowIsSilentlyDropped) {
  ScopedTrace scope;
  {
    Span span("test.trace.overflow");
    for (int i = 0; i < detail::kMaxNumAttrs + 3; ++i)
      span.attr("n", double(i));
    span.attr_str("s0", "a");
    span.attr_str("s1", "b");
    span.attr_str("s2", "dropped");
    // Long values truncate to kStrAttrLen-1 chars rather than overflowing.
    std::string long_value(200, 'x');
    Span other("test.trace.truncate");
    other.attr_str("long", long_value.c_str());
  }
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  ASSERT_EQ(events.size(), 4u);
  // Inner "truncate" span closes first.
  ASSERT_NE(events[2].args, nullptr);
  EXPECT_EQ(events[2].args->at("long").string,
            std::string(detail::kStrAttrLen - 1, 'x'));
  ASSERT_NE(events[3].args, nullptr);
  EXPECT_EQ(events[3].args->object.size(),
            static_cast<std::size_t>(detail::kMaxNumAttrs + 2));
  EXPECT_FALSE(events[3].args->has("s2"));
}

TEST(Trace, InstantEmitsAnAnnotatedZeroDurationPair) {
  ScopedTrace scope;
  instant("test.trace.instant", "site", "admm.iterate.nan");
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, "B");
  EXPECT_EQ(events[1].ph, "E");
  EXPECT_EQ(events[0].name, "test.trace.instant");
  EXPECT_EQ(events[0].ts, events[1].ts);
  ASSERT_NE(events[1].args, nullptr);
  EXPECT_EQ(events[1].args->at("site").string, "admm.iterate.nan");
}

TEST(Trace, TimestampsAreMonotonicPerThread) {
  ScopedTrace scope;
  for (int i = 0; i < 50; ++i) {
    Span span("test.trace.mono");
  }
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  ASSERT_EQ(events.size(), 100u);
  std::map<int, double> last_ts;
  for (const Event& e : events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second) << e.name;
    }
    last_ts[e.tid] = e.ts;
  }
}

TEST(Trace, ThreadsGetDistinctTidsAndBalancedPairs) {
  ScopedTrace scope;
  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        Span span("test.trace.worker");
        span.attr("i", double(i));
      }
    });
  for (auto& w : workers) w.join();
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  std::map<int, int> depth_by_tid;
  std::map<int, int> events_by_tid;
  for (const Event& e : events) {
    ++events_by_tid[e.tid];
    depth_by_tid[e.tid] += e.ph == "B" ? 1 : -1;
    EXPECT_GE(depth_by_tid[e.tid], 0) << "E before B on tid " << e.tid;
  }
  EXPECT_EQ(events_by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, depth] : depth_by_tid)
    EXPECT_EQ(depth, 0) << "unbalanced B/E on tid " << tid;
}

TEST(Trace, BufferFullDropsWholeSpansKeepingPairsMatched) {
  ScopedTrace scope;
  set_trace_buffer_capacity(8);  // applies to buffers created from now on
  const std::uint64_t dropped_before = trace_dropped();
  std::thread worker([] {
    // 16 sequential spans want 32 slots; only 4 whole spans fit in 8.
    for (int i = 0; i < 16; ++i) {
      Span span("test.trace.tiny");
    }
  });
  worker.join();
  set_trace_buffer_capacity(16384);  // restore default for later cases
  EXPECT_GT(trace_dropped(), dropped_before);
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  // Every surviving event pairs up: equal B and E counts, never negative
  // depth, and the count matches the capacity (8 events = 4 whole spans).
  int depth = 0;
  int n_tiny = 0;
  for (const Event& e : events) {
    if (e.name != "test.trace.tiny") continue;
    ++n_tiny;
    depth += e.ph == "B" ? 1 : -1;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(n_tiny, 8);
}

TEST(Trace, NestedSpanSurvivesWhenBufferFillsMidFlight) {
  ScopedTrace scope;
  set_trace_buffer_capacity(6);
  std::thread worker([] {
    Span outer("test.trace.keepalive");  // takes 1 slot + 1 reserved
    for (int i = 0; i < 10; ++i) {
      Span inner("test.trace.filler");
    }
    outer.attr("survived", 1.0);
  });
  worker.join();
  set_trace_buffer_capacity(16384);
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  int keepalive_b = 0, keepalive_e = 0;
  int depth = 0;
  for (const Event& e : events) {
    depth += e.ph == "B" ? 1 : -1;
    ASSERT_GE(depth, 0);
    if (e.name == "test.trace.keepalive") {
      if (e.ph == "B") ++keepalive_b;
      if (e.ph == "E") {
        ++keepalive_e;
        ASSERT_NE(e.args, nullptr);
        EXPECT_DOUBLE_EQ(e.args->at("survived").number, 1.0);
      }
    }
  }
  EXPECT_EQ(depth, 0);
  // The outer span reserved its end slot up front, so it must have closed
  // cleanly even though the fillers exhausted the buffer.
  EXPECT_EQ(keepalive_b, 1);
  EXPECT_EQ(keepalive_e, 1);
}

TEST(Trace, ResetClearsBuffersAndDropCount) {
  ScopedTrace scope;
  { Span span("test.trace.reset"); }
  EXPECT_GT(trace_event_count(), 0u);
  reset_trace();
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped(), 0u);
  const obstest::JsonValue doc = obstest::parse_json(trace_json());
  const auto events = exported_events(doc);
  EXPECT_TRUE(events.empty());
}

TEST(Trace, WriteTraceExpandsPidAndEmitsValidJson) {
  ScopedTrace scope;
  { Span span("test.trace.file"); }
  ASSERT_TRUE(write_trace("obs_test_trace_%p.json"));
  const std::string file =
      "obs_test_trace_" + std::to_string(static_cast<long>(::getpid())) +
      ".json";
  std::string text;
  if (FILE* f = std::fopen(file.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(file.c_str());
  ASSERT_FALSE(text.empty()) << "pid expansion failed";
  const obstest::JsonValue file_doc = obstest::parse_json(text);
  const auto events = exported_events(file_doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test.trace.file");
}

TEST(Trace, ScopedTraceRestoresPriorState) {
  const bool before = trace_enabled();
  {
    ScopedTrace scope;
    EXPECT_TRUE(trace_enabled());
  }
  EXPECT_EQ(trace_enabled(), before);
}

}  // namespace
}  // namespace rcr::obs
