#include "rcr/opt/admm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/opt/qcqp.hpp"

namespace rcr::opt {
namespace {

TEST(SoftThreshold, PiecewiseDefinition) {
  const Vec v = {3.0, -3.0, 0.5, -0.5, 0.0};
  const Vec s = soft_threshold(v, 1.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], -2.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
  EXPECT_DOUBLE_EQ(s[4], 0.0);
}

TEST(AdmmBoxQp, DimensionChecks) {
  EXPECT_THROW(admm_box_qp(Matrix(2, 2), {1.0}, {0.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      admm_box_qp(Matrix::identity(1), {0.0}, {1.0}, {0.0}),  // lo > hi
      std::invalid_argument);
}

TEST(AdmmBoxQp, InteriorOptimum) {
  // min (x-0.3)^2 on [0,1] -> 0.3.
  const AdmmResult r = admm_box_qp(Matrix{{2.0}}, {-0.6}, {0.0}, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.3, 1e-6);
}

TEST(AdmmBoxQp, ClampedOptimum) {
  // min (x-3)^2 on [0,1] -> 1.
  const AdmmResult r = admm_box_qp(Matrix{{2.0}}, {-6.0}, {0.0}, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(AdmmBoxQp, MatchesBarrierSolverOnRandomProblems) {
  num::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4;
    const Matrix p0 = random_psd(n, n, rng) + Matrix::identity(n);
    const Vec q = rng.normal_vec(n);
    const Vec lo(n, -1.0);
    const Vec hi(n, 1.0);

    const AdmmResult admm = admm_box_qp(p0, q, lo, hi);
    ASSERT_TRUE(admm.converged);

    Qp qp;
    qp.p = p0;
    qp.q = q;
    qp.g = Matrix(2 * n, n);
    qp.h.assign(2 * n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      qp.g(i, i) = 1.0;
      qp.g(n + i, i) = -1.0;
    }
    const QcqpResult barrier = solve_qp(qp, Vec(n, 0.0));
    ASSERT_TRUE(barrier.converged);

    EXPECT_NEAR(admm.objective, barrier.value,
                1e-4 * (1.0 + std::abs(barrier.value)));
  }
}

TEST(AdmmBoxQp, SolutionAlwaysFeasible) {
  num::Rng rng(2);
  const Matrix p = random_psd(3, 3, rng);
  const Vec q = rng.normal_vec(3, 0.0, 10.0);
  const AdmmResult r = admm_box_qp(p, q, Vec(3, -0.5), Vec(3, 0.5));
  for (double v : r.x) {
    EXPECT_GE(v, -0.5 - 1e-12);
    EXPECT_LE(v, 0.5 + 1e-12);
  }
}

TEST(AdmmLasso, ZeroLambdaIsLeastSquares) {
  num::Rng rng(3);
  Matrix a(6, 3);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.normal();
  const Vec x_true = {1.0, -2.0, 0.5};
  const Vec b = num::matvec(a, x_true);
  const AdmmResult r = admm_lasso(a, b, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(num::approx_equal(r.x, x_true, 1e-5));
}

TEST(AdmmLasso, LargeLambdaZeroesSolution) {
  num::Rng rng(4);
  Matrix a(5, 3);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.normal();
  const Vec b = rng.normal_vec(5);
  const AdmmResult r = admm_lasso(a, b, 1e4);
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AdmmLasso, SparsityIncreasesWithLambda) {
  num::Rng rng(5);
  Matrix a(20, 8);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = rng.normal();
  // Sparse ground truth.
  Vec x_true(8, 0.0);
  x_true[1] = 2.0;
  x_true[5] = -1.5;
  Vec b = num::matvec(a, x_true);
  for (double& v : b) v += rng.normal(0.0, 0.01);

  auto nnz = [](const Vec& x) {
    std::size_t n = 0;
    for (double v : x)
      if (std::abs(v) > 1e-8) ++n;
    return n;
  };
  const AdmmResult loose = admm_lasso(a, b, 0.01);
  const AdmmResult tight = admm_lasso(a, b, 2.0);
  EXPECT_GE(nnz(loose.x), nnz(tight.x));
  // Moderate lambda recovers the support.
  const AdmmResult mid = admm_lasso(a, b, 0.5);
  EXPECT_GT(std::abs(mid.x[1]), 0.5);
  EXPECT_GT(std::abs(mid.x[5]), 0.3);
}

TEST(AdmmLasso, NegativeLambdaThrows) {
  EXPECT_THROW(admm_lasso(Matrix(2, 2), {0.0, 0.0}, -1.0),
               std::invalid_argument);
}

TEST(AdmmLasso, ObjectiveNeverBelowOptimalLeastSquares) {
  // Sanity: lasso objective with lambda > 0 is >= the LS-residual part of
  // the lambda = 0 solution.
  num::Rng rng(6);
  Matrix a(10, 4);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.normal();
  const Vec b = rng.normal_vec(10);
  const AdmmResult ls = admm_lasso(a, b, 0.0);
  const AdmmResult lasso = admm_lasso(a, b, 0.3);
  EXPECT_GE(lasso.objective, ls.objective - 1e-8);
}

}  // namespace
}  // namespace rcr::opt
