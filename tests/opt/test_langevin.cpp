#include "rcr/opt/langevin.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::opt {
namespace {

// Double well: f(x) = (x^2 - 1)^2 + 0.3 x.  Local minimum near x = +0.96,
// global minimum near x = -1.04.
Smooth double_well() {
  Smooth f;
  f.value = [](const Vec& x) {
    const double a = x[0] * x[0] - 1.0;
    return a * a + 0.3 * x[0];
  };
  f.gradient = [](const Vec& x) {
    return Vec{4.0 * x[0] * (x[0] * x[0] - 1.0) + 0.3};
  };
  return f;
}

TEST(Langevin, OptionValidation) {
  const Smooth f = double_well();
  LangevinOptions bad;
  bad.step = 0.0;
  EXPECT_THROW(langevin_minimize(f, {0.0}, bad), std::invalid_argument);
  bad = {};
  bad.cooling = 1.5;
  EXPECT_THROW(langevin_minimize(f, {0.0}, bad), std::invalid_argument);
  bad = {};
  bad.lower = {0.0};  // mismatched box
  bad.upper = {};
  EXPECT_THROW(langevin_minimize(f, {0.0}, bad), std::invalid_argument);
}

TEST(Langevin, ZeroTemperatureIsGradientDescent) {
  const Smooth f = double_well();
  LangevinOptions opts;
  opts.initial_temperature = 0.0;
  opts.iterations = 5000;
  opts.step = 1e-2;
  // Start in the *local* basin: T = 0 cannot escape it.
  const LangevinResult r = langevin_minimize(f, {0.9}, opts);
  EXPECT_NEAR(r.final_x[0], 0.961, 0.02);  // trapped at the local minimum
}

TEST(Langevin, NoiseEscapesLocalBasin) {
  // With temperature, the chain crosses the barrier and finds the global
  // minimum from the same bad start (aggregate over seeds).
  const Smooth f = double_well();
  std::size_t escaped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LangevinOptions opts;
    opts.initial_temperature = 0.6;
    opts.cooling = 0.999;
    opts.iterations = 4000;
    opts.step = 1e-2;
    opts.seed = seed;
    const LangevinResult r = langevin_minimize(f, {0.9}, opts);
    if (r.best_x[0] < -0.8) ++escaped;
  }
  EXPECT_GE(escaped, 6u);
}

TEST(Langevin, PrematureStagnationUnderFastCooling) {
  // The paper's caveat: cooled too fast, Langevin stagnates at local optima.
  const Smooth f = double_well();
  std::size_t escaped_slow = 0;
  std::size_t escaped_fast = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    LangevinOptions slow;
    slow.initial_temperature = 0.6;
    slow.cooling = 0.999;
    slow.iterations = 4000;
    slow.step = 1e-2;
    slow.seed = seed;
    if (langevin_minimize(f, {0.9}, slow).best_x[0] < -0.8) ++escaped_slow;

    LangevinOptions fast = slow;
    fast.cooling = 0.95;  // temperature collapses within ~100 iterations
    if (langevin_minimize(f, {0.9}, fast).best_x[0] < -0.8) ++escaped_fast;
  }
  EXPECT_GT(escaped_slow, escaped_fast);
}

TEST(Langevin, BoxProjectionRespected) {
  const Smooth f = double_well();
  LangevinOptions opts;
  opts.lower = {0.0};
  opts.upper = {2.0};
  opts.initial_temperature = 0.5;
  opts.iterations = 2000;
  opts.seed = 3;
  const LangevinResult r = langevin_minimize(f, {1.0}, opts);
  EXPECT_GE(r.best_x[0], 0.0);
  EXPECT_LE(r.best_x[0], 2.0);
  EXPECT_GE(r.final_x[0], 0.0);
  EXPECT_LE(r.final_x[0], 2.0);
}

TEST(Langevin, BestValueNeverWorseThanStart) {
  const Smooth f = double_well();
  LangevinOptions opts;
  opts.seed = 4;
  const double f0 = f.value({0.5});
  const LangevinResult r = langevin_minimize(f, {0.5}, opts);
  EXPECT_LE(r.best_value, f0);
  EXPECT_NEAR(r.best_value, f.value(r.best_x), 1e-12);
}

TEST(Langevin, DeterministicGivenSeed) {
  const Smooth f = double_well();
  LangevinOptions opts;
  opts.seed = 5;
  opts.iterations = 500;
  const LangevinResult a = langevin_minimize(f, {0.2}, opts);
  const LangevinResult b = langevin_minimize(f, {0.2}, opts);
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.final_x, b.final_x);
}

TEST(Langevin, TemperatureAnnealsGeometrically) {
  const Smooth f = double_well();
  LangevinOptions opts;
  opts.initial_temperature = 1.0;
  opts.cooling = 0.99;
  opts.iterations = 100;
  const LangevinResult r = langevin_minimize(f, {0.0}, opts);
  EXPECT_NEAR(r.final_temperature, std::pow(0.99, 100), 1e-12);
}

}  // namespace
}  // namespace rcr::opt
