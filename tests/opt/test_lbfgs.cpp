#include "rcr/opt/lbfgs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/rng.hpp"
#include "rcr/opt/linesearch.hpp"

namespace rcr::opt {
namespace {

Smooth quadratic_bowl() {
  // f(x) = (x0-1)^2 + 10*(x1+2)^2, minimum at (1, -2).
  Smooth f;
  f.value = [](const Vec& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 10.0 * (x[1] + 2.0) * (x[1] + 2.0);
  };
  f.gradient = [](const Vec& x) {
    return Vec{2.0 * (x[0] - 1.0), 20.0 * (x[1] + 2.0)};
  };
  return f;
}

Smooth rosenbrock2() {
  Smooth f;
  f.value = [](const Vec& x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  };
  f.gradient = [](const Vec& x) {
    const double a = x[1] - x[0] * x[0];
    return Vec{-400.0 * a * x[0] - 2.0 * (1.0 - x[0]), 200.0 * a};
  };
  return f;
}

TEST(Armijo, FindsDecreaseOnDescentDirection) {
  const Smooth f = quadratic_bowl();
  const Vec x = {5.0, 5.0};
  const Vec g = f.gradient(x);
  const Vec d = num::scale(g, -1.0);
  const auto r = armijo_backtrack(f.value, x, d, g, f.value(x));
  EXPECT_TRUE(r.success);
  EXPECT_LT(r.value, f.value(x));
}

TEST(GradientDescent, SolvesQuadratic) {
  const MinimizeResult r = gradient_descent(quadratic_bowl(), {5.0, 5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], -2.0, 1e-5);
}

TEST(Bfgs, SolvesQuadraticFast) {
  MinimizeOptions opts;
  opts.max_iterations = 50;
  const MinimizeResult r = bfgs(quadratic_bowl(), {5.0, 5.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 0.0, 1e-10);
}

TEST(Bfgs, SolvesRosenbrock) {
  MinimizeOptions opts;
  opts.max_iterations = 500;
  opts.gradient_tolerance = 1e-7;
  const MinimizeResult r = bfgs(rosenbrock2(), {-1.2, 1.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, SolvesRosenbrock) {
  MinimizeOptions opts;
  opts.max_iterations = 800;
  opts.gradient_tolerance = 1e-7;
  const MinimizeResult r = lbfgs(rosenbrock2(), {-1.2, 1.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, HigherDimensionalConvexProblem) {
  // f(x) = sum_i i * x_i^2 with minimum 0 at the origin.
  Smooth f;
  f.value = [](const Vec& x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += static_cast<double>(i + 1) * x[i] * x[i];
    return acc;
  };
  f.gradient = [](const Vec& x) {
    Vec g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      g[i] = 2.0 * static_cast<double>(i + 1) * x[i];
    return g;
  };
  num::Rng rng(1);
  const MinimizeResult r = lbfgs(f, rng.normal_vec(20));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 0.0, 1e-10);
}

TEST(Lbfgs, BeatsGradientDescentOnIllConditionedBowl) {
  Smooth f;
  f.value = [](const Vec& x) {
    return x[0] * x[0] + 1000.0 * x[1] * x[1];
  };
  f.gradient = [](const Vec& x) {
    return Vec{2.0 * x[0], 2000.0 * x[1]};
  };
  MinimizeOptions opts;
  opts.max_iterations = 100;
  const MinimizeResult gd = gradient_descent(f, {1.0, 1.0}, opts);
  const MinimizeResult lb = lbfgs(f, {1.0, 1.0}, opts);
  EXPECT_LE(lb.value, gd.value);
  EXPECT_TRUE(lb.converged);
}

TEST(Lbfgs, AlreadyAtOptimumStopsImmediately) {
  const MinimizeResult r = lbfgs(quadratic_bowl(), {1.0, -2.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(NumericalGradientWrapper, MatchesAnalytic) {
  const Smooth analytic = quadratic_bowl();
  const Smooth numeric = with_numerical_gradient(analytic.value);
  const Vec x = {0.3, -0.7};
  EXPECT_TRUE(num::approx_equal(analytic.gradient(x), numeric.gradient(x),
                                1e-5));
}

}  // namespace
}  // namespace rcr::opt
