#include "rcr/opt/qcqp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::opt {
namespace {

TEST(EqualityQp, KktSolutionSatisfiesConstraintAndOptimality) {
  // min 0.5 ||x||^2 s.t. x0 + x1 = 2  ->  x = (1, 1).
  const Matrix p = Matrix::identity(2);
  const Vec q = {0.0, 0.0};
  const Matrix a = {{1.0, 1.0}};
  const Vec x = solve_equality_qp(p, q, a, {2.0});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(EqualityQp, UnconstrainedReducesToLinearSolve) {
  const Matrix p = Matrix::diag({2.0, 4.0});
  const Vec q = {-2.0, -8.0};
  const Vec x = solve_equality_qp(p, q, Matrix(0, 2), {});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(BoxQp, BarrierMatchesClampedSolution) {
  // min (x-3)^2 over [0, 1]: optimum at x = 1.
  Qp qp;
  qp.p = Matrix{{2.0}};
  qp.q = {-6.0};
  qp.g = Matrix{{1.0}, {-1.0}};
  qp.h = {1.0, 0.0};
  const QcqpResult r = solve_qp(qp, Vec{0.5});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
}

TEST(BoxQp, InteriorOptimumFound) {
  // min (x - 0.3)^2 over [0, 1]: interior optimum.
  Qp qp;
  qp.p = Matrix{{2.0}};
  qp.q = {-0.6};
  qp.g = Matrix{{1.0}, {-1.0}};
  qp.h = {1.0, 0.0};
  const QcqpResult r = solve_qp(qp, Vec{0.5});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.3, 1e-6);
}

TEST(Qcqp, BallConstrainedQuadraticKnownOptimum) {
  // min ||x - c||^2 s.t. ||x||^2 <= 1 with c = (2, 0): optimum x = (1, 0).
  Qcqp prob;
  prob.objective.p = 2.0 * Matrix::identity(2);
  prob.objective.q = {-4.0, 0.0};
  prob.objective.r = 4.0;
  QuadraticForm ball;
  ball.p = 2.0 * Matrix::identity(2);
  ball.q = {0.0, 0.0};
  ball.r = -1.0;
  prob.constraints.push_back(ball);

  const QcqpResult r = solve_qcqp_barrier(prob, Vec{0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
  EXPECT_NEAR(r.value, 1.0, 1e-4);
  EXPECT_LE(r.duality_gap_bound, 1e-7);
}

TEST(Qcqp, PhaseOneFindsStrictlyFeasiblePoint) {
  num::Rng rng(1);
  const Qcqp prob = random_convex_qcqp(4, 3, 2, rng);
  const auto x0 = find_strictly_feasible(prob);
  ASSERT_TRUE(x0.has_value());
  EXPECT_LT(prob.max_constraint_violation(*x0), 0.0);
  EXPECT_NEAR(prob.equality_residual(*x0), 0.0, 1e-7);
}

TEST(Qcqp, SolverRunsWithoutExplicitStart) {
  num::Rng rng(2);
  const Qcqp prob = random_convex_qcqp(4, 3, 0, rng);
  const QcqpResult r = solve_qcqp_barrier(prob);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(prob.max_constraint_violation(r.x), 1e-8);
}

TEST(Qcqp, SolutionIsKktStationary) {
  // At the barrier optimum, grad f0 + sum lambda_i grad f_i ~ 0 with
  // lambda_i = 1/(-t f_i) >= 0; verify a weaker consequence: the projected
  // gradient along any feasible direction from x* is ~ 0 by comparing
  // against nearby feasible points.
  num::Rng rng(3);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  const QcqpResult r = solve_qcqp_barrier(prob);
  ASSERT_TRUE(r.converged);
  for (int trial = 0; trial < 20; ++trial) {
    Vec perturbed = r.x;
    for (double& v : perturbed) v += rng.normal(0.0, 1e-3);
    if (prob.max_constraint_violation(perturbed) < 0.0) {
      EXPECT_GE(prob.objective.value(perturbed),
                r.value - 1e-6);  // no feasible descent nearby
    }
  }
}

TEST(Qcqp, EqualityConstraintsMaintained) {
  num::Rng rng(4);
  const Qcqp prob = random_convex_qcqp(5, 2, 2, rng);
  const QcqpResult r = solve_qcqp_barrier(prob);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(prob.equality_residual(r.x), 0.0, 1e-6);
}

TEST(Qcqp, InfeasibleProblemReportsFailure) {
  // Two disjoint balls: ||x - 5||^2 <= 1 and ||x + 5||^2 <= 1.
  Qcqp prob;
  prob.objective.p = Matrix::identity(1);
  prob.objective.q = {0.0};
  QuadraticForm b1;
  b1.p = Matrix{{2.0}};
  b1.q = {-10.0};
  b1.r = 24.0;  // (x-5)^2 - 1
  QuadraticForm b2;
  b2.p = Matrix{{2.0}};
  b2.q = {10.0};
  b2.r = 24.0;  // (x+5)^2 - 1
  prob.constraints.push_back(b1);
  prob.constraints.push_back(b2);
  const QcqpResult r = solve_qcqp_barrier(prob);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.message.empty());
}

TEST(Qcqp, MismatchedStartThrows) {
  num::Rng rng(5);
  const Qcqp prob = random_convex_qcqp(3, 1, 0, rng);
  EXPECT_THROW(solve_qcqp_barrier(prob, Vec{0.0}), std::invalid_argument);
}

TEST(Qcqp, TighterGapOptionImprovesCertificate) {
  num::Rng rng(6);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  BarrierOptions loose;
  loose.duality_gap = 1e-3;
  BarrierOptions tight;
  tight.duality_gap = 1e-9;
  const QcqpResult rl = solve_qcqp_barrier(prob, std::nullopt, loose);
  const QcqpResult rt = solve_qcqp_barrier(prob, std::nullopt, tight);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(rt.converged);
  EXPECT_LT(rt.duality_gap_bound, rl.duality_gap_bound);
  EXPECT_LE(rt.value, rl.value + 1e-6);
}

}  // namespace
}  // namespace rcr::opt
