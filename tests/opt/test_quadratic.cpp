#include "rcr/opt/quadratic.hpp"

#include <gtest/gtest.h>

#include "rcr/numerics/approx.hpp"
#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"

namespace rcr::opt {
namespace {

TEST(QuadraticForm, ValueAndGradient) {
  QuadraticForm f;
  f.p = {{2.0, 0.0}, {0.0, 4.0}};
  f.q = {1.0, -1.0};
  f.r = 3.0;
  const Vec x = {1.0, 2.0};
  // 0.5*(2*1 + 4*4) + (1 - 2) + 3 = 9 - 1 + 3 = 11.
  EXPECT_DOUBLE_EQ(f.value(x), 11.0);
  const Vec g = f.gradient(x);
  EXPECT_DOUBLE_EQ(g[0], 2.0 * 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(g[1], 4.0 * 2.0 - 1.0);
}

TEST(QuadraticForm, GradientMatchesNumerical) {
  num::Rng rng(1);
  QuadraticForm f;
  f.p = random_psd(4, 4, rng);
  f.q = rng.normal_vec(4);
  f.r = 0.7;
  const Vec x = rng.normal_vec(4);
  const Vec analytic = f.gradient(x);
  const Vec numeric = num::numerical_gradient(
      [&](const Vec& v) { return f.value(v); }, x);
  EXPECT_TRUE(num::approx_equal(analytic, numeric, 1e-5));
}

TEST(QuadraticForm, ConvexityDetection) {
  QuadraticForm convex;
  convex.p = {{1.0, 0.0}, {0.0, 2.0}};
  convex.q = {0.0, 0.0};
  EXPECT_TRUE(convex.is_convex());

  QuadraticForm nonconvex;
  nonconvex.p = {{1.0, 0.0}, {0.0, -2.0}};
  nonconvex.q = {0.0, 0.0};
  EXPECT_FALSE(nonconvex.is_convex());
}

TEST(Qcqp, ValidationCatchesMismatches) {
  num::Rng rng(2);
  Qcqp p = random_convex_qcqp(3, 2, 1, rng);
  EXPECT_NO_THROW(p.validate());
  p.b.push_back(0.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Qcqp, RandomInstanceIsConvexAndStrictlyFeasibleAtOrigin) {
  num::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Qcqp p = random_convex_qcqp(5, 3, 2, rng);
    EXPECT_TRUE(p.objective.is_convex());
    for (const auto& c : p.constraints) {
      EXPECT_TRUE(c.is_convex());
      EXPECT_LT(c.value(Vec(5, 0.0)), 0.0);  // strictly feasible at 0
    }
    EXPECT_NEAR(p.equality_residual(Vec(5, 0.0)), 0.0, 1e-12);
  }
}

TEST(Qcqp, ConstraintViolationReporting) {
  num::Rng rng(4);
  const Qcqp p = random_convex_qcqp(3, 2, 0, rng);
  // Far away from the ball constraints everything is violated.
  const Vec far(3, 100.0);
  EXPECT_GT(p.max_constraint_violation(far), 0.0);
  EXPECT_LT(p.max_constraint_violation(Vec(3, 0.0)), 0.0);
}

TEST(RandomPsd, RankControl) {
  num::Rng rng(5);
  const Matrix m2 = random_psd(6, 2, rng);
  EXPECT_TRUE(num::is_psd(m2));
  EXPECT_EQ(num::symmetric_rank(m2), 2u);
  const Matrix full = random_psd(6, 6, rng);
  EXPECT_EQ(num::symmetric_rank(full), 6u);
}

}  // namespace
}  // namespace rcr::opt
