#include "rcr/opt/sdp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/opt/qcqp.hpp"

namespace rcr::opt {
namespace {

TEST(Sdp, ValidationCatchesShapeErrors) {
  Sdp p;
  p.c = Matrix::identity(3);
  p.a_eq.push_back(Matrix::identity(2));  // wrong size
  p.b_eq.push_back(1.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Sdp, TraceConstrainedMinimization) {
  // min <C, X> s.t. tr(X) = 1, X PSD, with C = diag(1, 2, 3):
  // optimum puts all mass on the smallest diagonal entry -> objective 1.
  Sdp p;
  p.c = Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(Matrix::identity(3));
  p.b_eq.push_back(1.0);
  const SdpResult r = solve_sdp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.objective, 1.0, 1e-3);
  EXPECT_TRUE(num::is_psd(r.x, 1e-6));
  EXPECT_NEAR(r.x.trace(), 1.0, 1e-4);
}

TEST(Sdp, InequalityConstraintRespected) {
  // max <I, X> (i.e. min <-I, X>) s.t. tr(X) <= 2: objective -2.
  Sdp p;
  p.c = -1.0 * Matrix::identity(2);
  p.a_in.push_back(Matrix::identity(2));
  p.b_in.push_back(2.0);
  const SdpResult r = solve_sdp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.objective, -2.0, 1e-3);
  EXPECT_LE(r.x.trace(), 2.0 + 1e-4);
}

TEST(Sdp, PsdConstraintBindsWhenObjectiveRewardsNegativity) {
  // min <diag(1,1), X> s.t. X_00 = 1 (via E00), nothing else: free block
  // X_11 would go to -inf without the PSD cone; with it, X_11 -> 0.
  Sdp p;
  p.c = Matrix::identity(2);
  Matrix e00(2, 2);
  e00(0, 0) = 1.0;
  p.a_eq.push_back(e00);
  p.b_eq.push_back(1.0);
  const SdpResult r = solve_sdp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x(0, 0), 1.0, 1e-4);
  EXPECT_NEAR(r.x(1, 1), 0.0, 1e-4);
}

TEST(Shor, LiftedObjectiveEvaluatesQuadratic) {
  num::Rng rng(1);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  const Sdp sdp = shor_relaxation(prob);
  // <C, [1 x; x xx^T]> must equal f0(x) for any x.
  const Vec x = rng.normal_vec(3);
  Matrix lift(4, 4);
  lift(0, 0) = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    lift(0, i + 1) = x[i];
    lift(i + 1, 0) = x[i];
    for (std::size_t j = 0; j < 3; ++j) lift(i + 1, j + 1) = x[i] * x[j];
  }
  EXPECT_NEAR(num::frobenius_dot(sdp.c, lift), prob.objective.value(x), 1e-9);
  // Same for each constraint row.
  for (std::size_t k = 0; k < prob.constraints.size(); ++k)
    EXPECT_NEAR(num::frobenius_dot(sdp.a_in[k], lift),
                prob.constraints[k].value(x), 1e-9);
}

TEST(Shor, RelaxationIsLowerBoundOnConvexQcqp) {
  num::Rng rng(2);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  const QcqpResult exact = solve_qcqp_barrier(prob);
  ASSERT_TRUE(exact.converged);
  SdpOptions opts;
  opts.max_iterations = 20000;
  const ShorBound bound = shor_lower_bound(prob, opts);
  EXPECT_LE(bound.bound, exact.value + 1e-3);
}

TEST(Shor, TightForConvexProblems) {
  // The paper's Sec. IV-C: once the QCQP is convex, the SDP relaxation is
  // exact -- the E5 "shape".
  num::Rng rng(3);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  const QcqpResult exact = solve_qcqp_barrier(prob);
  ASSERT_TRUE(exact.converged);
  SdpOptions opts;
  opts.max_iterations = 30000;
  const ShorBound bound = shor_lower_bound(prob, opts);
  EXPECT_NEAR(bound.bound, exact.value, 5e-2 * (1.0 + std::abs(exact.value)));
}

TEST(Shor, StrictLowerBoundOnNonconvexQcqp) {
  // Nonconvex: maximize ||x||^2 inside a box (as min of negative).  The Shor
  // bound must stay below (or equal to) the true optimum.
  Qcqp prob;
  prob.objective.p = -2.0 * Matrix::identity(2);  // -||x||^2
  prob.objective.q = {0.0, 0.0};
  // Box via quadratic constraints x_i^2 <= 1.
  for (std::size_t i = 0; i < 2; ++i) {
    QuadraticForm c;
    c.p = Matrix(2, 2);
    c.p(i, i) = 2.0;
    c.q = {0.0, 0.0};
    c.r = -1.0;
    prob.constraints.push_back(c);
  }
  // True optimum: x = (+-1, +-1), objective -2.
  const ShorBound bound = shor_lower_bound(prob);
  EXPECT_LE(bound.bound, -2.0 + 1e-2);
}

}  // namespace
}  // namespace rcr::opt
