#include "rcr/opt/trace_min.hpp"

#include <gtest/gtest.h>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"

namespace rcr::opt {
namespace {

TEST(TraceMin, RejectsNonSymmetric) {
  Matrix bad(3, 3);
  bad(0, 1) = 1.0;
  EXPECT_THROW(solve_trace_min(bad), std::invalid_argument);
  EXPECT_THROW(solve_trace_min(Matrix(2, 3)), std::invalid_argument);
}

TEST(TraceMin, ExactlyDecomposableInstanceRecovered) {
  num::Rng rng(1);
  const TraceMinInstance inst = random_trace_min_instance(6, 2, 0.5, 1.5, rng);
  const TraceMinResult r = solve_trace_min(inst.r_s);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.offdiag_residual, 1e-6);
  EXPECT_TRUE(num::is_psd(r.r_c, 1e-6));
  // R_n must be (numerically) diagonal by construction of the result.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) {
        EXPECT_NEAR(r.r_n(i, j), 0.0, 1e-12);
      }
    }
  }
}

class TraceMinRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraceMinRankSweep, LowRankPlusDiagonalRecovery) {
  // E5's core claim: the trace surrogate recovers the low-rank + diagonal
  // split when the PSD part has genuinely low rank.
  const std::size_t rank = GetParam();
  num::Rng rng(100 + rank);
  const TraceMinInstance inst =
      random_trace_min_instance(8, rank, 0.5, 2.0, rng);
  const TraceMinResult r = solve_trace_min(inst.r_s);
  ASSERT_TRUE(r.converged);
  const RecoveryReport report = evaluate_recovery(inst, r, 1e-4);
  EXPECT_LT(report.rc_error, 0.05) << "rank " << rank;
  EXPECT_LT(report.rn_error, 0.2) << "rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(Ranks, TraceMinRankSweep,
                         ::testing::Values(1, 2));

TEST(TraceMin, HigherRankRecoveryDegradesGracefully) {
  // At rank 3/8 the diagonal split is only weakly identifiable; the PSD part
  // is still recovered well even when the per-entry diagonal attribution
  // drifts.
  num::Rng rng(103);
  const TraceMinInstance inst = random_trace_min_instance(8, 3, 0.5, 2.0, rng);
  const TraceMinResult r = solve_trace_min(inst.r_s);
  ASSERT_TRUE(r.converged);
  const RecoveryReport report = evaluate_recovery(inst, r, 1e-4);
  EXPECT_LT(report.rc_error, 0.15);
  EXPECT_LT(report.rn_error, 1.0);
}

TEST(TraceMin, TraceIsMinimalAmongFeasibleCandidates) {
  // Any feasible (R_c', R_n') has tr(R_c') >= the solver's trace.
  num::Rng rng(2);
  const TraceMinInstance inst = random_trace_min_instance(5, 2, 0.5, 1.0, rng);
  const TraceMinResult r = solve_trace_min(inst.r_s);
  ASSERT_TRUE(r.converged);
  // The ground-truth split is feasible, so its trace bounds ours from above.
  EXPECT_LE(r.trace, inst.r_c_true.trace() + 1e-4);
}

TEST(TraceMin, FullRankNoisyMatrixStillSplitsValidly) {
  num::Rng rng(3);
  Matrix r_s = random_psd(5, 5, rng);
  r_s.symmetrize();
  const TraceMinResult r = solve_trace_min(r_s);
  EXPECT_TRUE(r.converged);
  // Feasibility of the output split.
  EXPECT_LT(r.offdiag_residual, 1e-6);
  EXPECT_TRUE(num::is_psd(r.r_c, 1e-6));
  EXPECT_TRUE(num::approx_equal(r.r_c + r.r_n, r_s, 1e-6));
}

TEST(TraceMin, RecoveredRankMatchesTruth) {
  num::Rng rng(4);
  const TraceMinInstance inst = random_trace_min_instance(7, 2, 1.0, 2.0, rng);
  const TraceMinResult r = solve_trace_min(inst.r_s);
  ASSERT_TRUE(r.converged);
  const RecoveryReport report = evaluate_recovery(inst, r, 1e-4);
  EXPECT_EQ(report.true_rank, 2u);
  EXPECT_TRUE(report.rank_recovered);
}

TEST(TraceMin, DiagonalOnlyInputGivesZeroRc) {
  // R_s diagonal: the minimum-trace PSD part is zero.
  const Matrix r_s = Matrix::diag({1.0, 2.0, 3.0});
  const TraceMinResult r = solve_trace_min(r_s);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.trace, 0.0, 1e-5);
  EXPECT_NEAR(r.r_c.frobenius_norm(), 0.0, 1e-5);
}

}  // namespace
}  // namespace rcr::opt
