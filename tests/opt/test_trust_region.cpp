#include "rcr/opt/trust_region.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/rng.hpp"

namespace rcr::opt {
namespace {

TEST(TrustRegionExact, InteriorSolutionForLargeRadius) {
  // min 0.5 p^T I p + g^T p => p* = -g, norm sqrt(2) < 10.
  const num::Matrix b = num::Matrix::identity(2);
  const Vec g = {1.0, -1.0};
  const TrustRegionStep s = solve_trust_region_exact(b, g, 10.0);
  EXPECT_FALSE(s.on_boundary);
  EXPECT_NEAR(s.p[0], -1.0, 1e-9);
  EXPECT_NEAR(s.p[1], 1.0, 1e-9);
  EXPECT_NEAR(s.model_decrease, 1.0, 1e-9);
}

TEST(TrustRegionExact, BoundarySolutionForSmallRadius) {
  const num::Matrix b = num::Matrix::identity(2);
  const Vec g = {3.0, 4.0};  // unconstrained step has norm 5
  const TrustRegionStep s = solve_trust_region_exact(b, g, 1.0);
  EXPECT_TRUE(s.on_boundary);
  EXPECT_NEAR(num::norm2(s.p), 1.0, 1e-6);
  // Direction is -g / ||g||.
  EXPECT_NEAR(s.p[0], -0.6, 1e-6);
  EXPECT_NEAR(s.p[1], -0.8, 1e-6);
}

TEST(TrustRegionExact, HandlesIndefiniteHessian) {
  // Negative curvature: the step must reach the boundary.
  const num::Matrix b = num::Matrix::diag({-2.0, 1.0});
  const Vec g = {0.1, 0.1};
  const TrustRegionStep s = solve_trust_region_exact(b, g, 2.0);
  EXPECT_TRUE(s.on_boundary);
  EXPECT_NEAR(num::norm2(s.p), 2.0, 1e-6);
  EXPECT_GT(s.model_decrease, 0.0);
}

TEST(TrustRegionCg, MatchesExactOnConvexProblem) {
  num::Rng rng(1);
  num::Matrix b(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.normal();
  b = b * b.transpose();
  for (std::size_t i = 0; i < 4; ++i) b(i, i) += 4.0;
  const Vec g = rng.normal_vec(4);

  const TrustRegionStep exact = solve_trust_region_exact(b, g, 100.0);
  const TrustRegionStep cg = solve_trust_region_cg(
      [&](const Vec& v) { return num::matvec(b, v); }, g, 100.0);
  EXPECT_TRUE(num::approx_equal(exact.p, cg.p, 1e-6));
}

TEST(TrustRegionCg, RespectsRadius) {
  const num::Matrix b = num::Matrix::identity(3);
  const Vec g = {10.0, 10.0, 10.0};
  const TrustRegionStep s = solve_trust_region_cg(
      [&](const Vec& v) { return num::matvec(b, v); }, g, 0.5);
  EXPECT_TRUE(s.on_boundary);
  EXPECT_LE(num::norm2(s.p), 0.5 + 1e-9);
}

TEST(TrustRegionCg, NegativeCurvatureWalksToBoundary) {
  const num::Matrix b = num::Matrix::diag({-1.0, -1.0});
  const Vec g = {1.0, 0.0};
  const TrustRegionStep s = solve_trust_region_cg(
      [&](const Vec& v) { return num::matvec(b, v); }, g, 3.0);
  EXPECT_TRUE(s.on_boundary);
  EXPECT_NEAR(num::norm2(s.p), 3.0, 1e-9);
}

TEST(TrustRegionBfgs, SolvesQuadratic) {
  Smooth f;
  f.value = [](const Vec& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + 5.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  f.gradient = [](const Vec& x) {
    return Vec{2.0 * (x[0] - 2.0), 10.0 * (x[1] + 1.0)};
  };
  const MinimizeResult r = trust_region_bfgs(f, {10.0, 10.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
  EXPECT_NEAR(r.x[1], -1.0, 1e-5);
}

TEST(TrustRegionBfgs, SolvesRosenbrock) {
  Smooth f;
  f.value = [](const Vec& x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  };
  f.gradient = [](const Vec& x) {
    const double a = x[1] - x[0] * x[0];
    return Vec{-400.0 * a * x[0] - 2.0 * (1.0 - x[0]), 200.0 * a};
  };
  TrustRegionOptions opts;
  opts.max_iterations = 500;
  const MinimizeResult r = trust_region_bfgs(f, {-1.2, 1.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
}

}  // namespace
}  // namespace rcr::opt
