// Differential properties over the numerics kernels: every `_into` variant
// is bit-identical to its allocating counterpart, and the parallel runtime
// honors its serial/parallel determinism contract on the hot products.
#include <gtest/gtest.h>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
using rcr::num::Matrix;
using rcr::Vec;

namespace {

// A dimension-compatible triple (A: r x k, B: k x c, x: vector of length c)
// covering every product kernel under test.
struct KernelCase {
  Matrix a;
  Matrix b;
  Vec x;
};

tk::Gen<KernelCase> gen_kernel_case(std::size_t max_dim) {
  tk::Gen<KernelCase> g;
  g.sample = [max_dim](rcr::num::Rng& rng) {
    const auto dim = [&rng, max_dim] {
      return static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(max_dim)));
    };
    KernelCase c;
    const std::size_t r = dim(), k = dim(), cols = dim();
    c.a = Matrix(r, k);
    c.b = Matrix(k, cols);
    for (auto& v : c.a.data()) v = rng.normal();
    for (auto& v : c.b.data()) v = rng.normal();
    c.x = rng.normal_vec(cols);
    return c;
  };
  g.show = [](const KernelCase& c) {
    return "A = " + tk::show_matrix(c.a) + ", B = " + tk::show_matrix(c.b) +
           ", x = " + tk::show_vec(c.x);
  };
  return g;
}

TEST(NumericsProperties, MultiplyIntoBitIdenticalToAllocating) {
  RCR_EXPECT_PROP(tk::check<KernelCase>(
      "multiply_into == operator*", gen_kernel_case(12),
      [](const KernelCase& c) {
        Matrix out;
        rcr::num::multiply_into(c.a, c.b, out);
        return tk::expect_bits(c.a * c.b, out, "multiply_into");
      }));
}

TEST(NumericsProperties, GramKernelsBitIdenticalToTransposeForms) {
  RCR_EXPECT_PROP(tk::check<KernelCase>(
      "A^T B and A B^T kernels match their transpose forms",
      gen_kernel_case(10), [](const KernelCase& c) {
        // multiply_at_b(A, A B-shaped) needs matching row counts; reuse A
        // against itself and B against itself for the two Gram forms.
        std::string diag = tk::expect_bits(
            c.a.transpose() * c.a, rcr::num::multiply_at_b(c.a, c.a),
            "multiply_at_b");
        if (!diag.empty()) return diag;
        diag = tk::expect_bits(c.b * c.b.transpose(),
                               rcr::num::multiply_abt(c.b, c.b),
                               "multiply_abt");
        if (!diag.empty()) return diag;
        Matrix out;
        rcr::num::multiply_at_b_into(c.a, c.a, out);
        diag = tk::expect_bits(rcr::num::multiply_at_b(c.a, c.a), out,
                               "multiply_at_b_into");
        if (!diag.empty()) return diag;
        rcr::num::multiply_abt_into(c.b, c.b, out);
        return tk::expect_bits(rcr::num::multiply_abt(c.b, c.b), out,
                               "multiply_abt_into");
      }));
}

TEST(NumericsProperties, MatvecAndTransposeIntoVariants) {
  RCR_EXPECT_PROP(tk::check<KernelCase>(
      "matvec/transpose _into variants", gen_kernel_case(12),
      [](const KernelCase& c) {
        Vec y;
        rcr::num::matvec_into(c.b, c.x, y);
        std::string diag =
            tk::expect_bits(rcr::num::matvec(c.b, c.x), y, "matvec_into");
        if (!diag.empty()) return diag;
        Matrix t;
        rcr::num::transpose_into(c.a, t);
        diag = tk::expect_bits(c.a.transpose(), t, "transpose_into");
        if (!diag.empty()) return diag;
        // B^T v needs v with B.rows() == A.cols() entries; a row of A fits.
        const Vec v = c.a.row(0);
        Vec yt;
        rcr::num::matvec_transposed_into(c.b, v, yt);
        return tk::expect_bits(rcr::num::matvec_transposed(c.b, v), yt,
                               "matvec_transposed_into");
      }));
}

TEST(NumericsProperties, SerialAndParallelProductsBitIdentical) {
  // Large enough to actually engage the pool's parallel path.
  tk::Gen<Matrix> gen = tk::gen_matrix(24, 48);
  RCR_EXPECT_PROP(tk::check<Matrix>(
      "operator* under RCR_THREADS>1 == serial", gen,
      [](const Matrix& m) {
        return tk::diff_serial_parallel<Matrix>(
            [&m]() { return m * m; }, "parallel vs serial matmul");
      },
      [] {
        tk::CheckOptions o;
        o.cases = 20;  // each case is a 48^3 product; keep the sweep quick
        return o;
      }()));
}

TEST(NumericsProperties, LuDecomposeIntoBitIdenticalToFresh) {
  RCR_EXPECT_PROP(tk::check<Matrix>(
      "lu_decompose_into == lu_decompose", tk::gen_matrix(1, 10),
      [](const Matrix& m) {
        const auto fresh = rcr::num::lu_decompose(m);
        rcr::num::LuDecomposition into;
        rcr::num::lu_decompose_into(m, into);
        std::string diag = tk::expect_bits(fresh.lu, into.lu, "lu factors");
        if (!diag.empty()) return diag;
        if (fresh.perm != into.perm) return std::string("pivot mismatch");
        if (fresh.singular != into.singular)
          return std::string("singularity flag mismatch");
        if (fresh.singular) return std::string();
        // And the solves they produce are bit-identical too.
        const Vec b(m.rows(), 1.0);
        Vec x;
        into.solve_into(b, x);
        return tk::expect_bits(fresh.solve(b), x, "solve_into");
      }));
}

}  // namespace
