// Optimizer properties: prefactored ADMM operators are bit-identical to the
// fresh-factorization path, and the Shor SDP relaxation lower-bounds the
// QCQP barrier optimum (the paper's relaxation-ordering guarantee).
#include <gtest/gtest.h>

#include "rcr/opt/admm.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/metamorphic.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
namespace opt = rcr::opt;
using rcr::num::Matrix;
using rcr::Vec;

namespace {

struct BoxQpCase {
  Matrix p;
  Vec q, lo, hi;
};

tk::Gen<BoxQpCase> gen_box_qp() {
  tk::Gen<BoxQpCase> g;
  g.sample = [](rcr::num::Rng& rng) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    BoxQpCase c;
    c.p = opt::random_psd(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) c.p(i, i) += 0.5;  // keep P + rho I sane
    c.q = rng.normal_vec(n);
    c.lo = Vec(n);
    c.hi = Vec(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-2.0, 0.0);
      c.lo[i] = a;
      c.hi[i] = a + rng.uniform(0.5, 3.0);
    }
    return c;
  };
  g.show = [](const BoxQpCase& c) {
    return "P = " + tk::show_matrix(c.p) + ", q = " + tk::show_vec(c.q) +
           ", box = [" + tk::show_vec(c.lo) + ", " + tk::show_vec(c.hi) + "]";
  };
  return g;
}

TEST(OptProperties, PrefactoredBoxQpBitIdenticalToFresh) {
  RCR_EXPECT_PROP(tk::check<BoxQpCase>(
      "admm_box_qp prefactored == fresh", gen_box_qp(),
      [](const BoxQpCase& c) {
        opt::AdmmOptions options;
        options.max_iterations = 2000;
        const opt::AdmmResult fresh =
            opt::admm_box_qp(c.p, c.q, c.lo, c.hi, options);
        const opt::BoxQpFactor factor =
            opt::prefactor_box_qp(c.p, options.rho);
        const opt::AdmmResult cached =
            opt::admm_box_qp(c.p, factor, c.q, c.lo, c.hi, options);
        if (fresh.iterations != cached.iterations)
          return std::string("iteration counts diverge");
        if (!tk::same_bits(fresh.objective, cached.objective))
          return std::string("objectives diverge");
        return tk::expect_bits(fresh.x, cached.x, "prefactored x");
      },
      [] {
        tk::CheckOptions o;
        o.cases = 30;
        return o;
      }()));
}

struct LassoCase {
  Matrix a;
  Vec b;
  double lambda = 0.1;
};

tk::Gen<LassoCase> gen_lasso() {
  tk::Gen<LassoCase> g;
  g.sample = [](rcr::num::Rng& rng) {
    LassoCase c;
    const std::size_t m =
        static_cast<std::size_t>(rng.uniform_int(2, 10));
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    c.a = Matrix(m, n);
    for (auto& v : c.a.data()) v = rng.normal();
    c.b = rng.normal_vec(m);
    c.lambda = rng.uniform(0.01, 0.5);
    return c;
  };
  g.show = [](const LassoCase& c) {
    return "A = " + tk::show_matrix(c.a) + ", b = " + tk::show_vec(c.b) +
           ", lambda = " + tk::show_double(c.lambda);
  };
  return g;
}

TEST(OptProperties, PrefactoredLassoBitIdenticalToFresh) {
  RCR_EXPECT_PROP(tk::check<LassoCase>(
      "admm_lasso prefactored == fresh", gen_lasso(),
      [](const LassoCase& c) {
        opt::AdmmOptions options;
        options.max_iterations = 2000;
        const opt::AdmmResult fresh =
            opt::admm_lasso(c.a, c.b, c.lambda, options);
        const opt::LassoFactor factor =
            opt::prefactor_lasso(c.a, options.rho);
        const opt::AdmmResult cached =
            opt::admm_lasso(c.a, factor, c.b, c.lambda, options);
        if (fresh.iterations != cached.iterations)
          return std::string("iteration counts diverge");
        if (!tk::same_bits(fresh.objective, cached.objective))
          return std::string("objectives diverge");
        return tk::expect_bits(fresh.x, cached.x, "prefactored x");
      },
      [] {
        tk::CheckOptions o;
        o.cases = 30;
        return o;
      }()));
}

tk::Gen<opt::Qcqp> gen_qcqp() {
  tk::Gen<opt::Qcqp> g;
  g.sample = [](rcr::num::Rng& rng) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(2, 4));
    const std::size_t m =
        static_cast<std::size_t>(rng.uniform_int(1, 3));
    return opt::random_convex_qcqp(n, m, 0, rng);
  };
  g.show = [](const opt::Qcqp& q) {
    return "qcqp n=" + std::to_string(q.dim()) +
           " m=" + std::to_string(q.constraints.size());
  };
  return g;
}

TEST(OptProperties, ShorRelaxationLowerBoundsQcqp) {
  RCR_EXPECT_PROP(tk::check<opt::Qcqp>(
      "Shor SDP bound <= barrier optimum", gen_qcqp(),
      [](const opt::Qcqp& q) {
        return tk::check_shor_lower_bounds_qcqp(q);
      },
      [] {
        tk::CheckOptions o;
        o.cases = 10;  // each case solves an SDP; keep the sweep bounded
        return o;
      }()));
}

}  // namespace
