// Signal-stack properties: the fast FFT against the O(N^2) oracle, Parseval
// and exact-scaling metamorphic relations, in-place/allocating and
// serial/parallel bit identity, and STFT fixture invariants.
#include <gtest/gtest.h>

#include "rcr/signal/fft.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/metamorphic.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
namespace sig = rcr::sig;
using rcr::Vec;

namespace {

TEST(SignalProperties, FftMatchesReferenceDft) {
  RCR_EXPECT_PROP(tk::check<sig::CVec>(
      "fft agrees with dft_reference", tk::gen_cvec(1, 64, 4.0),
      [](const sig::CVec& x) {
        const double n = static_cast<double>(x.size());
        return tk::expect_close(sig::dft_reference(x), sig::fft(x),
                                1e-10 * n, 1e-10, "fft vs dft");
      }));
}

TEST(SignalProperties, FftIfftRoundTrip) {
  RCR_EXPECT_PROP(tk::check<sig::CVec>(
      "ifft(fft(x)) == x", tk::gen_cvec(1, 128, 4.0),
      [](const sig::CVec& x) {
        const double n = static_cast<double>(x.size());
        return tk::expect_close(x, sig::ifft(sig::fft(x)), 1e-10 * n, 1e-10,
                                "fft/ifft roundtrip");
      }));
}

TEST(SignalProperties, InplaceFftBitIdenticalToAllocating) {
  RCR_EXPECT_PROP(tk::check<sig::CVec>(
      "fft_inplace == fft (and ifft)", tk::gen_cvec(1, 100, 4.0),
      [](const sig::CVec& x) {
        sig::FftWorkspace ws;
        sig::CVec buf = x;
        sig::fft_inplace(buf, ws);
        std::string diag = tk::expect_bits(sig::fft(x), buf, "fft_inplace");
        if (!diag.empty()) return diag;
        sig::ifft_inplace(buf, ws);
        return tk::expect_bits(sig::ifft(sig::fft(x)), buf, "ifft_inplace");
      }));
}

TEST(SignalProperties, ParsevalEnergyConservation) {
  RCR_EXPECT_PROP(tk::check<sig::CVec>(
      "Parseval: time energy == freq energy / N", tk::gen_cvec(1, 128, 4.0),
      [](const sig::CVec& x) { return tk::check_parseval_fft(x, 1e-10); }));
}

TEST(SignalProperties, PowerOfTwoScalingCommutesBitExactly) {
  RCR_EXPECT_PROP(tk::check<sig::CVec>(
      "fft(2^k x) == 2^k fft(x) to the bit", tk::gen_cvec(1, 96, 2.0),
      [](const sig::CVec& x) {
        std::string diag = tk::check_fft_pow2_linearity(x, 3);
        if (!diag.empty()) return diag;
        return tk::check_fft_pow2_linearity(x, -2);
      }));
}

TEST(SignalProperties, RfftMatchesFullFftAndInverts) {
  RCR_EXPECT_PROP(tk::check<Vec>(
      "rfft/irfft consistency", tk::gen_vec(1, 96, -4.0, 4.0),
      [](const Vec& x) {
        const sig::CVec half = sig::rfft(x);
        if (half.size() != x.size() / 2 + 1)
          return std::string("rfft output size wrong");
        const Vec back = sig::irfft(half, x.size());
        const double n = static_cast<double>(x.size());
        return tk::expect_close(x, back, 1e-10 * n, 1e-10,
                                "irfft(rfft(x))");
      }));
}

TEST(SignalProperties, StftIntoBitIdenticalToAllocating) {
  RCR_EXPECT_PROP(tk::check<tk::StftFixture>(
      "stft_into == stft (cold and warm)", tk::gen_stft_fixture(),
      [](const tk::StftFixture& f) {
        const sig::TfGrid fresh = sig::stft(f.signal, f.config);
        sig::TfGrid into;
        sig::stft_into(f.signal, f.config, into);
        std::string diag = tk::expect_bits(fresh, into, "cold stft_into");
        if (!diag.empty()) return diag;
        sig::stft_into(f.signal, f.config, into);  // warm path reuses storage
        return tk::expect_bits(fresh, into, "warm stft_into");
      }));
}

TEST(SignalProperties, StftSerialParallelBitIdentical) {
  RCR_EXPECT_PROP(tk::check<tk::StftFixture>(
      "stft under the pool == serial stft", tk::gen_stft_fixture(192, 32),
      [](const tk::StftFixture& f) {
        return tk::diff_serial_parallel<sig::TfGrid>(
            [&f]() { return sig::stft(f.signal, f.config); },
            "parallel vs serial stft");
      },
      [] {
        tk::CheckOptions o;
        o.cases = 40;
        return o;
      }()));
}

TEST(SignalProperties, StftFrameCountMatchesConfig) {
  RCR_EXPECT_PROP(tk::check<tk::StftFixture>(
      "grid shape == (fft_size, frame_count)", tk::gen_stft_fixture(),
      [](const tk::StftFixture& f) {
        const sig::TfGrid grid = sig::stft(f.signal, f.config);
        if (grid.bins() != f.config.fft_size)
          return std::string("bins != fft_size");
        if (grid.frames() != f.config.frame_count(f.signal.size()))
          return std::string("frames != frame_count(n)");
        return std::string();
      }));
}

TEST(SignalProperties, IstftReconstructsColaFixtures) {
  RCR_EXPECT_PROP(tk::check<tk::StftFixture>(
      "istft(stft(x)) == x on COLA configs", tk::gen_stft_fixture(),
      [](const tk::StftFixture& f) {
        const std::size_t n = f.signal.size();
        // The least-squares inverse is exact only when the hop tiles the
        // signal and the window/hop pair satisfies COLA; skip other draws.
        if (f.config.padding != sig::FramePadding::kCircular ||
            n % f.config.hop != 0 ||
            !sig::satisfies_cola(f.config.window, f.config.hop))
          return std::string();
        const sig::TfGrid grid = sig::stft(f.signal, f.config);
        const Vec rebuilt = sig::istft(grid, f.config, n);
        return tk::expect_close(f.signal, rebuilt,
                                1e-8 * static_cast<double>(n), 1e-8,
                                "istft roundtrip");
      }));
}

}  // namespace
