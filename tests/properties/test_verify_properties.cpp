// Verification-stack properties: IBP is the loosest relaxation, so its boxes
// must contain CROWN's at every layer on arbitrary random networks -- the
// containment half of the paper's relaxation-tightness ordering.
#include <gtest/gtest.h>

#include "rcr/testkit/gtest.hpp"
#include "rcr/testkit/metamorphic.hpp"
#include "rcr/testkit/testkit.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/relu_network.hpp"

namespace tk = rcr::testkit;
namespace verify = rcr::verify;
using rcr::Vec;

namespace {

struct NetCase {
  verify::ReluNetwork net;
  verify::Box input;
  std::vector<std::size_t> widths;
};

tk::Gen<NetCase> gen_net_case() {
  tk::Gen<NetCase> g;
  g.sample = [](rcr::num::Rng& rng) {
    NetCase c;
    const std::size_t depth =
        static_cast<std::size_t>(rng.uniform_int(2, 4));
    c.widths.resize(depth + 1);
    for (auto& w : c.widths)
      w = static_cast<std::size_t>(rng.uniform_int(1, 6));
    c.net = verify::ReluNetwork::random(c.widths, rng);
    const Vec center = rng.normal_vec(c.widths.front());
    c.input = verify::Box::around(center, rng.uniform(0.05, 0.5));
    return c;
  };
  g.show = [](const NetCase& c) {
    std::string s = "relu net widths {";
    for (std::size_t i = 0; i < c.widths.size(); ++i)
      s += (i == 0 ? "" : ", ") + std::to_string(c.widths[i]);
    s += "}, input center " + tk::show_vec(c.input.center()) +
         ", radius " + tk::show_double(c.input.max_width() / 2.0);
    return s;
  };
  return g;
}

TEST(VerifyProperties, IbpBoxesContainCrownBoxes) {
  RCR_EXPECT_PROP(tk::check<NetCase>(
      "IBP box contains CROWN box at every layer", gen_net_case(),
      [](const NetCase& c) {
        return tk::check_ibp_contains_crown(c.net, c.input);
      },
      [] {
        tk::CheckOptions o;
        o.cases = 40;
        return o;
      }()));
}

TEST(VerifyProperties, BoundsContainTheTrueForwardImage) {
  // Soundness: for sampled points inside the input box, the network output
  // must lie inside both relaxations' output boxes.
  RCR_EXPECT_PROP(tk::check<NetCase>(
      "relaxed output boxes contain sampled forward images", gen_net_case(),
      [](const NetCase& c) {
        const verify::LayerBounds ibp = verify::ibp_bounds(c.net, c.input);
        const verify::LayerBounds crown = verify::crown_bounds(c.net, c.input);
        rcr::num::Rng rng(7);  // fixed interior sampling, value-independent
        for (int trial = 0; trial < 8; ++trial) {
          Vec x(c.input.dim());
          for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = rng.uniform(c.input.lower[i], c.input.upper[i]);
          const Vec y = c.net.forward(x);
          for (std::size_t i = 0; i < y.size(); ++i) {
            const bool in_ibp = y[i] >= ibp.output.lower[i] - 1e-9 &&
                                y[i] <= ibp.output.upper[i] + 1e-9;
            const bool in_crown = y[i] >= crown.output.lower[i] - 1e-9 &&
                                  y[i] <= crown.output.upper[i] + 1e-9;
            if (!in_ibp) return std::string("IBP output box is unsound");
            if (!in_crown) return std::string("CROWN output box is unsound");
          }
        }
        return std::string();
      },
      [] {
        tk::CheckOptions o;
        o.cases = 40;
        return o;
      }()));
}

}  // namespace
