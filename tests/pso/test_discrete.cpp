#include "rcr/pso/discrete.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::pso {
namespace {

std::vector<CategoricalAttribute> small_space() {
  return {
      {"a", {0.0, 1.0, 2.0, 3.0}},
      {"b", {10.0, 20.0}},
      {"c", {-1.0, 0.0, 1.0}},
  };
}

// Separable objective with unique optimum a=2, b=20, c=0.
double separable(const DiscreteAssignment& x,
                 const std::vector<CategoricalAttribute>& space) {
  const double a = space[0].values[x[0]];
  const double b = space[1].values[x[1]];
  const double c = space[2].values[x[2]];
  return (a - 2.0) * (a - 2.0) + std::abs(b - 20.0) + c * c;
}

TEST(Exhaustive, FindsGlobalOptimum) {
  const auto space = small_space();
  const ExhaustiveResult r = minimize_exhaustive(
      space, [&](const DiscreteAssignment& x) { return separable(x, space); });
  EXPECT_EQ(r.evaluations, 24u);
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
  EXPECT_EQ(r.best_assignment, (DiscreteAssignment{2, 1, 1}));
}

TEST(Exhaustive, RejectsHugeSpaces) {
  std::vector<CategoricalAttribute> huge(10, {"x", Vec(10, 0.0)});
  EXPECT_THROW(
      minimize_exhaustive(huge, [](const DiscreteAssignment&) { return 0.0; }),
      std::invalid_argument);
}

TEST(Exhaustive, RejectsEmptyAttribute) {
  std::vector<CategoricalAttribute> space = {{"empty", {}}};
  EXPECT_THROW(
      minimize_exhaustive(space, [](const DiscreteAssignment&) { return 0.0; }),
      std::invalid_argument);
}

TEST(DiscretePso, InvalidInputsThrow) {
  DiscretePsoConfig c;
  EXPECT_THROW(minimize_discrete({}, [](const DiscreteAssignment&) { return 0.0; }, c),
               std::invalid_argument);
  std::vector<CategoricalAttribute> bad = {{"x", {}}};
  EXPECT_THROW(minimize_discrete(bad, [](const DiscreteAssignment&) { return 0.0; }, c),
               std::invalid_argument);
  c.swarm_size = 0;
  EXPECT_THROW(minimize_discrete(small_space(),
                                 [](const DiscreteAssignment&) { return 0.0; }, c),
               std::invalid_argument);
}

TEST(DiscretePso, FindsSeparableOptimum) {
  const auto space = small_space();
  DiscretePsoConfig c;
  c.swarm_size = 10;
  c.max_iterations = 40;
  c.seed = 1;
  const DiscretePsoResult r = minimize_discrete(
      space, [&](const DiscreteAssignment& x) { return separable(x, space); },
      c);
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
  EXPECT_EQ(r.best_assignment, (DiscreteAssignment{2, 1, 1}));
}

TEST(DiscretePso, MatchesExhaustiveOnCoupledObjective) {
  // Non-separable: reward a specific joint configuration.
  const auto space = small_space();
  auto coupled = [&](const DiscreteAssignment& x) {
    const double a = space[0].values[x[0]];
    const double b = space[1].values[x[1]];
    const double c = space[2].values[x[2]];
    return std::abs(a * c - 3.0) + std::abs(b - 10.0) * 0.1;
  };
  const ExhaustiveResult oracle = minimize_exhaustive(space, coupled);
  DiscretePsoConfig c;
  c.swarm_size = 12;
  c.max_iterations = 60;
  c.seed = 2;
  const DiscretePsoResult r = minimize_discrete(space, coupled, c);
  EXPECT_NEAR(r.best_value, oracle.best_value, 1e-12);
}

TEST(DiscretePso, DeterministicGivenSeed) {
  const auto space = small_space();
  auto objective = [&](const DiscreteAssignment& x) {
    return separable(x, space);
  };
  DiscretePsoConfig c;
  c.seed = 3;
  const DiscretePsoResult a = minimize_discrete(space, objective, c);
  const DiscretePsoResult b = minimize_discrete(space, objective, c);
  EXPECT_EQ(a.best_assignment, b.best_assignment);
  EXPECT_EQ(a.best_value, b.best_value);
}

TEST(DiscretePso, HistoryMonotoneNonIncreasing) {
  const auto space = small_space();
  DiscretePsoConfig c;
  c.seed = 4;
  const DiscretePsoResult r = minimize_discrete(
      space, [&](const DiscreteAssignment& x) { return separable(x, space); },
      c);
  for (std::size_t k = 1; k < r.best_value_history.size(); ++k)
    EXPECT_LE(r.best_value_history[k], r.best_value_history[k - 1]);
}

TEST(DiscretePso, DistributionsRemainValidSimplexPoints) {
  const auto space = small_space();
  DiscretePsoConfig c;
  c.seed = 5;
  c.max_iterations = 30;
  const DiscretePsoResult r = minimize_discrete(
      space, [&](const DiscreteAssignment& x) { return separable(x, space); },
      c);
  ASSERT_EQ(r.best_distributions.size(), space.size());
  for (std::size_t k = 0; k < space.size(); ++k) {
    double total = 0.0;
    for (double p : r.best_distributions[k]) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DiscretePso, WorksWithInertiaSchedule) {
  const auto space = small_space();
  DiscretePsoConfig c;
  c.seed = 6;
  auto inertia = adaptive_qp_inertia();
  const DiscretePsoResult r = minimize_discrete(
      space, [&](const DiscreteAssignment& x) { return separable(x, space); },
      c, inertia.get());
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
}

TEST(DiscretePso, EvaluationBudgetRespected) {
  const auto space = small_space();
  DiscretePsoConfig c;
  c.swarm_size = 4;
  c.max_iterations = 10;
  c.samples_per_eval = 2;
  std::size_t calls = 0;
  const DiscretePsoResult r = minimize_discrete(
      space,
      [&](const DiscreteAssignment& x) {
        ++calls;
        return separable(x, space);
      },
      c);
  EXPECT_EQ(calls, r.evaluations);
  EXPECT_EQ(calls, 4u * 10u * 2u);
}

}  // namespace
}  // namespace rcr::pso
