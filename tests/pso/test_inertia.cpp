#include "rcr/pso/inertia.hpp"

#include <gtest/gtest.h>

namespace rcr::pso {
namespace {

InertiaContext context_at(std::size_t iter, std::size_t max_iter) {
  InertiaContext c;
  c.iteration = iter;
  c.max_iterations = max_iter;
  return c;
}

TEST(ConstantInertia, AlwaysSameWeight) {
  auto s = constant_inertia(0.73);
  EXPECT_DOUBLE_EQ(s->weight(context_at(0, 100)), 0.73);
  EXPECT_DOUBLE_EQ(s->weight(context_at(99, 100)), 0.73);
  EXPECT_EQ(s->name(), "constant");
}

TEST(LinearDecay, EndpointsAndMonotonicity) {
  auto s = linear_decay_inertia(0.9, 0.4);
  EXPECT_NEAR(s->weight(context_at(0, 101)), 0.9, 1e-12);
  EXPECT_NEAR(s->weight(context_at(100, 101)), 0.4, 1e-12);
  double prev = 1.0;
  for (std::size_t k = 0; k < 101; k += 10) {
    const double w = s->weight(context_at(k, 101));
    EXPECT_LE(w, prev + 1e-12);
    prev = w;
  }
}

TEST(ChaoticInertia, BoundedAndVarying) {
  auto s = chaotic_inertia(0.4);
  double lo = 1e9;
  double hi = -1e9;
  for (int k = 0; k < 200; ++k) {
    const double w = s->weight(context_at(0, 1));
    lo = std::min(lo, w);
    hi = std::max(hi, w);
    EXPECT_GE(w, 0.4);
    EXPECT_LE(w, 0.9);
  }
  EXPECT_GT(hi - lo, 0.1);  // genuinely varying
}

TEST(AdaptiveDistance, StagnantParticleGetsBoosted) {
  auto s = adaptive_distance_inertia(0.4, 1.2);
  InertiaContext moving = context_at(50, 100);
  moving.stagnant_iters = 0;
  InertiaContext stuck = context_at(50, 100);
  stuck.stagnant_iters = 20;
  EXPECT_GT(s->weight(stuck), s->weight(moving));
  EXPECT_LE(s->weight(stuck), 1.2 + 1e-12);
}

TEST(AdaptiveDistance, RespectsBounds) {
  auto s = adaptive_distance_inertia(0.4, 1.2);
  for (std::size_t it : {0u, 10u, 50u, 99u}) {
    for (std::size_t stag : {0u, 5u, 100u}) {
      InertiaContext c = context_at(it, 100);
      c.stagnant_iters = stag;
      c.swarm_diversity = 1.0;
      c.dist_to_pbest = 2.0;
      const double w = s->weight(c);
      EXPECT_GE(w, 0.3);
      EXPECT_LE(w, 1.2 + 1e-12);
    }
  }
}

TEST(AdaptiveQp, ScalarSolutionMatchesCalculus) {
  // Unconstrained stationary point (v d + lambda w_ref) / (v^2 + lambda).
  const double w = AdaptiveQpInertia::solve_scalar_qp(
      /*v=*/2.0, /*d=*/3.0, /*w_ref=*/0.7, /*lambda=*/0.5, 0.0, 10.0);
  EXPECT_NEAR(w, (2.0 * 3.0 + 0.5 * 0.7) / (4.0 + 0.5), 1e-12);
}

TEST(AdaptiveQp, ClampsToBox) {
  EXPECT_DOUBLE_EQ(
      AdaptiveQpInertia::solve_scalar_qp(1.0, 100.0, 0.7, 0.5, 0.3, 1.4), 1.4);
  EXPECT_DOUBLE_EQ(
      AdaptiveQpInertia::solve_scalar_qp(10.0, 0.0, 0.0, 0.01, 0.3, 1.4), 0.3);
}

TEST(AdaptiveQp, ZeroVelocityFallsBackToReference) {
  const double w =
      AdaptiveQpInertia::solve_scalar_qp(0.0, 5.0, 0.7, 0.5, 0.3, 1.4);
  EXPECT_DOUBLE_EQ(w, 0.7);
}

TEST(AdaptiveQp, SolutionMinimizesTheQpObjective) {
  // Grid-check: no w in the box does better than the returned w.
  const double v = 1.7;
  const double d = 2.3;
  const double w_ref = 0.7;
  const double lambda = 0.5;
  auto objective = [&](double w) {
    return (w * v - d) * (w * v - d) + lambda * (w - w_ref) * (w - w_ref);
  };
  const double w_star =
      AdaptiveQpInertia::solve_scalar_qp(v, d, w_ref, lambda, 0.3, 1.4);
  for (double w = 0.3; w <= 1.4; w += 0.01)
    EXPECT_GE(objective(w), objective(w_star) - 1e-12);
}

TEST(AdaptiveQp, WeightUsesContext) {
  AdaptiveQpInertia s(0.3, 1.4, 0.7, 0.5);
  InertiaContext c = context_at(0, 10);
  c.velocity_norm = 2.0;
  c.dist_to_gbest = 3.0;
  EXPECT_NEAR(s.weight(c),
              AdaptiveQpInertia::solve_scalar_qp(2.0, 3.0, 0.7, 0.5, 0.3, 1.4),
              1e-15);
}

}  // namespace
}  // namespace rcr::pso
