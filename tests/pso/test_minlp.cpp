// MINLP-mode PSO: mixed integer/continuous coordinates via the per-
// dimension mask -- the paper's actual problem class ("frequency-time
// blocks (integer variables) ... transmit powers (continuous variables)").
#include <gtest/gtest.h>

#include <cmath>

#include "rcr/pso/swarm.hpp"

namespace rcr::pso {
namespace {

// Mixed problem: x0 integer in [-5, 5], x1 continuous.
// f = (x0 - 3)^2 + (x1 - 0.25)^2; optimum at (3, 0.25) with value 0.
Objective mixed_objective() {
  Objective o;
  o.name = "mixed";
  o.value = [](const Vec& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 0.25) * (x[1] - 0.25);
  };
  o.lower = {-5.0, -5.0};
  o.upper = {5.0, 5.0};
  o.optimum = {3.0, 0.25};
  o.optimum_value = 0.0;
  return o;
}

TEST(MinlpPso, MaskSizeMismatchThrows) {
  PsoConfig c;
  c.integer_mask = {true};
  EXPECT_THROW(minimize(mixed_objective(), c), std::invalid_argument);
}

TEST(MinlpPso, IntegerCoordinateStaysIntegral) {
  PsoConfig c;
  c.integer_mask = {true, false};
  c.swarm_size = 15;
  c.max_iterations = 100;
  c.seed = 1;
  const PsoResult r = minimize(mixed_objective(), c);
  EXPECT_DOUBLE_EQ(r.best_position[0], std::round(r.best_position[0]));
}

TEST(MinlpPso, ContinuousCoordinateReachesFractionalOptimum) {
  PsoConfig c;
  c.integer_mask = {true, false};
  c.swarm_size = 20;
  c.max_iterations = 200;
  c.seed = 2;
  const PsoResult r = minimize(mixed_objective(), c);
  EXPECT_DOUBLE_EQ(r.best_position[0], 3.0);
  EXPECT_NEAR(r.best_position[1], 0.25, 1e-2);
  EXPECT_LT(r.best_value, 1e-3);
}

TEST(MinlpPso, AllIntegerMaskCannotReachFractionalTarget) {
  PsoConfig c;
  c.integer_mask = {true, true};
  c.swarm_size = 20;
  c.max_iterations = 200;
  c.seed = 3;
  const PsoResult r = minimize(mixed_objective(), c);
  // Best integral point is (3, 0): value (0.25)^2.
  EXPECT_DOUBLE_EQ(r.best_position[1], std::round(r.best_position[1]));
  EXPECT_NEAR(r.best_value, 0.0625, 1e-9);
}

TEST(MinlpPso, MaskOverridesGlobalRoundingFlag) {
  PsoConfig c;
  c.rounding = Rounding::kInteger;   // would round everything...
  c.integer_mask = {false, false};   // ...but the mask says all-continuous
  c.swarm_size = 20;
  c.max_iterations = 200;
  c.seed = 4;
  const PsoResult r = minimize(mixed_objective(), c);
  EXPECT_LT(r.best_value, 1e-3);  // reaches the fractional optimum
}

TEST(MinlpPso, MixedRraStyleProblem) {
  // 2 integer assignment slots in {0,1,2} + 1 continuous power split in
  // [0,1]: maximize rate-like objective (minimize negative).
  Objective o;
  o.name = "mini-rra";
  const double g[3] = {1.0, 4.0, 2.0};
  o.value = [g](const Vec& x) {
    const auto a0 = static_cast<int>(x[0]);
    const auto a1 = static_cast<int>(x[1]);
    const double p = x[2];
    // Two "RBs" pick a "user" each; power p on RB0, 1-p on RB1.
    double rate = std::log2(1.0 + p * g[a0]) + std::log2(1.0 + (1.0 - p) * g[a1]);
    return -rate;
  };
  o.lower = {0.0, 0.0, 0.0};
  o.upper = {2.0, 2.0, 1.0};
  o.optimum = {1.0, 1.0, 0.5};
  o.optimum_value = -2.0 * std::log2(3.0);

  PsoConfig c;
  c.integer_mask = {true, true, false};
  c.swarm_size = 25;
  c.max_iterations = 250;
  c.seed = 5;
  const PsoResult r = minimize(o, c);
  // Best: both RBs on user 1 (g = 4), split power evenly.
  EXPECT_DOUBLE_EQ(r.best_position[0], 1.0);
  EXPECT_DOUBLE_EQ(r.best_position[1], 1.0);
  EXPECT_NEAR(r.best_position[2], 0.5, 0.05);
  EXPECT_NEAR(r.best_value, o.optimum_value, 1e-2);
}

}  // namespace
}  // namespace rcr::pso
