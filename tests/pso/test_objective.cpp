#include "rcr/pso/objective.hpp"

#include <gtest/gtest.h>

#include "rcr/numerics/rng.hpp"

namespace rcr::pso {
namespace {

class SuiteOptima : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteOptima, OptimumValueAttainedAtOptimumPoint) {
  for (const Objective& o : standard_suite(GetParam())) {
    EXPECT_NEAR(o.value(o.optimum), o.optimum_value, 1e-9) << o.name;
    EXPECT_EQ(o.dim(), GetParam()) << o.name;
    EXPECT_EQ(o.lower.size(), GetParam()) << o.name;
    EXPECT_EQ(o.upper.size(), GetParam()) << o.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SuiteOptima, ::testing::Values(1, 2, 5, 10));

TEST(Objectives, ValuesAboveOptimumEverywhereSampled) {
  num::Rng rng(1);
  for (const Objective& o : standard_suite(4)) {
    for (int trial = 0; trial < 200; ++trial) {
      Vec x(4);
      for (std::size_t j = 0; j < 4; ++j)
        x[j] = rng.uniform(o.lower[j], o.upper[j]);
      EXPECT_GE(o.value(x), o.optimum_value - 1e-12) << o.name;
    }
  }
}

TEST(Objectives, SphereIsExactSumOfSquares) {
  const Objective s = sphere(3);
  EXPECT_DOUBLE_EQ(s.value({1.0, 2.0, 3.0}), 14.0);
}

TEST(Objectives, RosenbrockValleyCurvature) {
  const Objective r = rosenbrock(2);
  // On the parabola x1 = x0^2, only the (1-x0)^2 term remains.
  EXPECT_NEAR(r.value({0.5, 0.25}), 0.25, 1e-12);
  // Off the parabola it is much larger.
  EXPECT_GT(r.value({0.5, 1.0}), 10.0);
}

TEST(Objectives, RastriginHasLatticeLocalMinima) {
  const Objective r = rastrigin(2);
  // Integer points are local minima; (1, 0) is worse than (0, 0) but much
  // better than nearby non-integer points.
  const double at_origin = r.value({0.0, 0.0});
  const double at_lattice = r.value({1.0, 0.0});
  const double off_lattice = r.value({0.5, 0.0});
  EXPECT_LT(at_origin, at_lattice);
  EXPECT_LT(at_lattice, off_lattice);
}

TEST(Objectives, SuiteNamesDistinct) {
  const auto suite = standard_suite(3);
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t j = i + 1; j < suite.size(); ++j)
      EXPECT_NE(suite[i].name, suite[j].name);
}

}  // namespace
}  // namespace rcr::pso
