#include "rcr/pso/swarm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rcr::pso {
namespace {

PsoConfig fast_config(std::uint64_t seed = 1) {
  PsoConfig c;
  c.swarm_size = 20;
  c.max_iterations = 150;
  c.seed = seed;
  return c;
}

TEST(Pso, InvalidConfigThrows) {
  PsoConfig c;
  c.swarm_size = 0;
  EXPECT_THROW(minimize(sphere(2), c), std::invalid_argument);
}

TEST(Pso, SolvesSphere) {
  const PsoResult r = minimize(sphere(3), fast_config());
  EXPECT_LT(r.best_value, 1e-3);
  EXPECT_LT(num::norm_inf(r.best_position), 0.1);
}

TEST(Pso, DeterministicGivenSeed) {
  const PsoResult a = minimize(sphere(3), fast_config(5));
  const PsoResult b = minimize(sphere(3), fast_config(5));
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_position, b.best_position);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Pso, BestValueHistoryIsMonotoneNonIncreasing) {
  const PsoResult r = minimize(rastrigin(3), fast_config(2));
  for (std::size_t k = 1; k < r.best_value_history.size(); ++k)
    EXPECT_LE(r.best_value_history[k], r.best_value_history[k - 1]);
}

TEST(Pso, BestPositionStaysInBounds) {
  const Objective o = rastrigin(4);
  const PsoResult r = minimize(o, fast_config(3));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GE(r.best_position[j], o.lower[j]);
    EXPECT_LE(r.best_position[j], o.upper[j]);
  }
}

TEST(Pso, TargetValueStopsEarly) {
  PsoConfig c = fast_config(4);
  c.max_iterations = 500;
  c.target_value = 1e-2;
  const PsoResult r = minimize(sphere(2), c);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.iterations, 500u);
  EXPECT_LE(r.best_value, 1e-2);
}

TEST(Pso, EvaluationCountConsistent) {
  PsoConfig c = fast_config(5);
  c.max_iterations = 10;
  c.swarm_size = 7;
  const PsoResult r = minimize(sphere(2), c);
  // init (7) + 10 iterations x 7 particles.
  EXPECT_EQ(r.evaluations, 7u + 70u);
}

TEST(Pso, IntegerRoundingFindsIntegerOptimum) {
  PsoConfig c = fast_config(6);
  c.rounding = Rounding::kInteger;
  const PsoResult r = minimize(sphere(3), c);
  // Positions are integral; sphere optimum 0 is integral so reachable.
  for (double v : r.best_position)
    EXPECT_DOUBLE_EQ(v, std::round(v));
  EXPECT_LT(r.best_value, 1e-9);
}

TEST(Pso, IntegerRoundingStagnatesMoreThanContinuous) {
  // The paper's Sec. II-A-2 claim: rounding velocities to integers creates
  // an artificial paradigm where particles stagnate prematurely.  Aggregate
  // stagnation events across seeds.
  std::size_t stagnation_continuous = 0;
  std::size_t stagnation_integer = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PsoConfig c = fast_config(seed);
    c.swarm_size = 12;
    c.max_iterations = 80;
    const PsoResult cont = minimize(rastrigin(4), c);
    c.rounding = Rounding::kInteger;
    const PsoResult integer = minimize(rastrigin(4), c);
    stagnation_continuous += cont.stagnation_events;
    stagnation_integer += integer.stagnation_events;
  }
  EXPECT_GT(stagnation_integer, stagnation_continuous);
}

TEST(Pso, DispersionReenergizesStuckParticles) {
  PsoConfig c = fast_config(7);
  c.rounding = Rounding::kInteger;
  c.max_iterations = 120;
  c.disperse_on_stagnation = true;
  const PsoResult with_dispersion = minimize(rastrigin(4), c);
  EXPECT_GT(with_dispersion.dispersions, 0u);

  c.disperse_on_stagnation = false;
  const PsoResult without = minimize(rastrigin(4), c);
  // Dispersion keeps fewer particles stuck at the end.
  EXPECT_LE(with_dispersion.final_stagnant_fraction,
            without.final_stagnant_fraction + 1e-12);
}

TEST(Pso, AdaptiveInertiaReducesIntegerModeStagnation) {
  // The paper's claim (Secs. II-A-2, III): adaptive inertial weighting lets
  // integer-rounded particles "progress past their current local optimum
  // instead of stagnating prematurely".  Aggregate stagnation across seeds.
  std::size_t stagnant_constant = 0;
  std::size_t stagnant_adaptive = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PsoConfig c = fast_config(seed);
    c.swarm_size = 12;
    c.max_iterations = 100;
    c.rounding = Rounding::kInteger;
    auto constant = constant_inertia(0.7);
    stagnant_constant +=
        minimize(rastrigin(4), c, constant.get()).stagnation_events;
    auto adaptive = adaptive_distance_inertia();
    stagnant_adaptive +=
        minimize(rastrigin(4), c, adaptive.get()).stagnation_events;
  }
  EXPECT_LT(stagnant_adaptive, stagnant_constant);
}

TEST(Pso, LargerSwarmImprovesRastriginQuality) {
  // Sec. II-A-1's size tradeoff: bigger swarms find better optima at higher
  // evaluation cost.
  double small_total = 0.0;
  double large_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    PsoConfig small = fast_config(seed);
    small.swarm_size = 5;
    small.max_iterations = 100;
    PsoConfig large = small;
    large.swarm_size = 40;
    small_total += minimize(rastrigin(4), small).best_value;
    large_total += minimize(rastrigin(4), large).best_value;
  }
  EXPECT_LT(large_total, small_total);
}

TEST(Pso, UniquePtrOverloadWorks) {
  const PsoResult r =
      minimize(sphere(2), fast_config(8), adaptive_qp_inertia());
  EXPECT_LT(r.best_value, 1e-2);
}

}  // namespace
}  // namespace rcr::pso
