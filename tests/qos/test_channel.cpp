#include "rcr/qos/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::qos {
namespace {

TEST(Channel, ShapesMatchConfig) {
  ChannelConfig cfg;
  cfg.num_users = 5;
  cfg.num_rbs = 12;
  const ChannelRealization ch = make_channel(cfg);
  EXPECT_EQ(ch.num_users(), 5u);
  EXPECT_EQ(ch.num_rbs(), 12u);
  EXPECT_EQ(ch.user_distance_m.size(), 5u);
}

TEST(Channel, DeterministicGivenSeed) {
  ChannelConfig cfg;
  cfg.seed = 77;
  const ChannelRealization a = make_channel(cfg);
  const ChannelRealization b = make_channel(cfg);
  EXPECT_EQ(a.gain.data(), b.gain.data());
}

TEST(Channel, GainsPositive) {
  ChannelConfig cfg;
  cfg.num_users = 8;
  cfg.num_rbs = 16;
  const ChannelRealization ch = make_channel(cfg);
  for (double g : ch.gain.data()) EXPECT_GT(g, 0.0);
}

TEST(Channel, DistancesWithinCell) {
  ChannelConfig cfg;
  cfg.num_users = 50;
  const ChannelRealization ch = make_channel(cfg);
  for (double d : ch.user_distance_m) {
    EXPECT_GE(d, cfg.min_distance_m);
    EXPECT_LE(d, cfg.cell_radius_m);
  }
}

TEST(Channel, CloserUsersHaveHigherAverageGain) {
  ChannelConfig cfg;
  cfg.num_users = 30;
  cfg.num_rbs = 64;
  cfg.seed = 3;
  const ChannelRealization ch = make_channel(cfg);
  // Compare the nearest and farthest user's mean gain.
  std::size_t near = 0;
  std::size_t far = 0;
  for (std::size_t u = 1; u < 30; ++u) {
    if (ch.user_distance_m[u] < ch.user_distance_m[near]) near = u;
    if (ch.user_distance_m[u] > ch.user_distance_m[far]) far = u;
  }
  auto mean_gain = [&](std::size_t u) {
    double acc = 0.0;
    for (std::size_t rb = 0; rb < 64; ++rb) acc += ch.gain(u, rb);
    return acc / 64.0;
  };
  EXPECT_GT(mean_gain(near), mean_gain(far));
}

TEST(SpectralEfficiency, ShannonValues) {
  EXPECT_DOUBLE_EQ(spectral_efficiency(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spectral_efficiency(1.0), 1.0);
  EXPECT_DOUBLE_EQ(spectral_efficiency(3.0), 2.0);
}

}  // namespace
}  // namespace rcr::qos
