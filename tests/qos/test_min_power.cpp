#include <gtest/gtest.h>

#include "rcr/qos/rra.hpp"

namespace rcr::qos {
namespace {

RraProblem problem_with_floors(std::uint64_t seed, std::size_t users,
                               std::size_t rbs, double min_rate) {
  ChannelConfig cfg;
  cfg.num_users = users;
  cfg.num_rbs = rbs;
  cfg.seed = seed;
  RraProblem p;
  p.gain = make_channel(cfg).gain;
  p.total_power = 1.0;
  p.min_rate = Vec(users, min_rate);
  return p;
}

TEST(MinPower, UnservedConstrainedUserIsInfeasible) {
  const RraProblem p = problem_with_floors(1, 2, 4, 0.5);
  EXPECT_FALSE(minimum_power_for_qos(p, {0, 0, 0, 0}).has_value());
}

TEST(MinPower, ZeroFloorsNeedZeroPower) {
  const RraProblem p = problem_with_floors(2, 2, 4, 0.0);
  const auto power = minimum_power_for_qos(p, {0, 1, 0, 1});
  ASSERT_TRUE(power.has_value());
  EXPECT_DOUBLE_EQ(*power, 0.0);
}

TEST(MinPower, MonotoneInQosFloor) {
  const Assignment a = {0, 1, 0, 1};
  double prev = 0.0;
  for (double floor : {0.2, 0.5, 1.0, 2.0}) {
    const RraProblem p = problem_with_floors(3, 2, 4, floor);
    const auto power = minimum_power_for_qos(p, a);
    ASSERT_TRUE(power.has_value()) << "floor " << floor;
    EXPECT_GT(*power, prev);
    prev = *power;
  }
}

TEST(MinPower, AchievedPowerActuallyMeetsFloors) {
  // Re-run the QoS power allocation with exactly the minimal budget: it must
  // be feasible (up to the bisection tolerance).
  RraProblem p = problem_with_floors(4, 3, 6, 0.6);
  const Assignment a = {0, 1, 2, 0, 1, 2};
  const auto power = minimum_power_for_qos(p, a);
  ASSERT_TRUE(power.has_value());
  p.total_power = *power * (1.0 + 1e-6);
  EXPECT_TRUE(qos_power_allocation(p, a).has_value());
  // And strictly below it, infeasible.
  p.total_power = *power * 0.9;
  EXPECT_FALSE(qos_power_allocation(p, a).has_value());
}

TEST(MinPower, ExactMatchesBruteForceOnTinyInstance) {
  const RraProblem p = problem_with_floors(5, 2, 4, 0.5);
  const MinPowerSolution exact = solve_min_power_exact(p);
  ASSERT_TRUE(exact.feasible);
  double best = 1e300;
  for (std::size_t mask = 0; mask < 16; ++mask) {
    Assignment a(4);
    for (std::size_t rb = 0; rb < 4; ++rb) a[rb] = (mask >> rb) & 1u;
    const auto power = minimum_power_for_qos(p, a);
    if (power) best = std::min(best, *power);
  }
  EXPECT_NEAR(exact.power, best, 1e-9);
}

TEST(MinPower, GreedyNeverBeatsExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RraProblem p = problem_with_floors(seed, 3, 6, 0.4);
    const MinPowerSolution exact = solve_min_power_exact(p);
    const MinPowerSolution greedy = solve_min_power_greedy(p);
    ASSERT_TRUE(exact.feasible) << "seed " << seed;
    if (greedy.feasible) {
      EXPECT_GE(greedy.power, exact.power - 1e-9) << "seed " << seed;
    }
  }
}

TEST(MinPower, GreedyServesEveryUser) {
  const RraProblem p = problem_with_floors(7, 3, 7, 0.3);
  const MinPowerSolution greedy = solve_min_power_greedy(p);
  EXPECT_TRUE(greedy.feasible);
  std::vector<bool> served(3, false);
  for (std::size_t u : greedy.assignment) served[u] = true;
  for (bool s : served) EXPECT_TRUE(s);
}

TEST(MinPower, AdmissionDecisionConsistentWithSumRateSolver) {
  // If min power exceeds the budget, the sum-rate solver must also find the
  // problem infeasible under any assignment it returns.
  RraProblem p = problem_with_floors(8, 3, 5, 3.0);  // harsh floors
  const MinPowerSolution mp = solve_min_power_exact(p);
  if (mp.feasible && mp.power > p.total_power) {
    const RraSolution sr = solve_exact(p);
    EXPECT_FALSE(sr.feasible);
  }
}

}  // namespace
}  // namespace rcr::qos
