#include "rcr/qos/multirat.hpp"

#include <gtest/gtest.h>

namespace rcr::qos {
namespace {

TEST(MultiRat, RandomInstanceValid) {
  const MultiRatProblem p = random_multirat(6, 1);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.num_users(), 6u);
  EXPECT_EQ(p.num_rats(), 3u);
}

TEST(MultiRat, ValidationCatchesErrors) {
  MultiRatProblem p = random_multirat(4, 2);
  p.capacity.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MultiRat, EvaluateCountsAndFeasibility) {
  const MultiRatProblem p = random_multirat(4, 3);
  std::vector<std::size_t> selection(4, kUnassigned);
  selection[0] = 2;  // legacy RAT has capacity for everyone
  const MultiRatSolution sol = evaluate_selection(p, selection);
  EXPECT_EQ(sol.users_served, 1u);
  EXPECT_DOUBLE_EQ(sol.total_rate, p.rate(0, 2));
}

TEST(MultiRat, EvaluateDetectsCapacityViolation) {
  MultiRatProblem p = random_multirat(4, 4);
  p.capacity = {1, 1, 1};
  std::vector<std::size_t> selection(4, 0);  // all users on RAT 0
  // Force latency feasibility so only capacity binds.
  for (std::size_t u = 0; u < 4; ++u) p.latency_budget[u] = 1e9;
  const MultiRatSolution sol = evaluate_selection(p, selection);
  EXPECT_FALSE(sol.feasible);
}

TEST(MultiRat, ExactSolutionFeasible) {
  const MultiRatProblem p = random_multirat(6, 5);
  const MultiRatSolution sol = solve_multirat_exact(p);
  EXPECT_TRUE(sol.feasible);
  // Re-evaluating the selection agrees.
  const MultiRatSolution check = evaluate_selection(p, sol.rat_of_user);
  EXPECT_NEAR(check.total_rate, sol.total_rate, 1e-9);
  EXPECT_TRUE(check.feasible);
}

TEST(MultiRat, GreedyNeverBeatsExact) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const MultiRatProblem p = random_multirat(7, seed);
    const MultiRatSolution exact = solve_multirat_exact(p);
    const MultiRatSolution greedy = solve_multirat_greedy(p);
    EXPECT_LE(greedy.total_rate, exact.total_rate + 1e-9) << "seed " << seed;
    EXPECT_TRUE(greedy.feasible);
  }
}

TEST(MultiRat, LatencyCriticalUsersAvoidSlowRats) {
  const MultiRatProblem p = random_multirat(9, 6);
  const MultiRatSolution sol = solve_multirat_exact(p);
  for (std::size_t u = 0; u < 9; ++u) {
    const std::size_t r = sol.rat_of_user[u];
    if (r == kUnassigned) continue;
    EXPECT_LE(p.latency(u, r), p.latency_budget[u]);
  }
}

TEST(MultiRat, LenientBudgetUsersAlwaysServed) {
  // The legacy RAT has capacity for everyone, so any user whose latency
  // budget admits it is always worth serving (rates are positive).  Only
  // latency-critical users competing for the scarce URLLC slice may drop.
  const MultiRatProblem p = random_multirat(5, 7);
  const MultiRatSolution sol = solve_multirat_exact(p);
  for (std::size_t u = 0; u < 5; ++u) {
    if (p.latency_budget[u] >= p.latency(u, 2)) {
      EXPECT_NE(sol.rat_of_user[u], kUnassigned) << "user " << u;
    }
  }
}

}  // namespace
}  // namespace rcr::qos
