#include "rcr/qos/rra.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::qos {
namespace {

RraProblem small_problem(std::uint64_t seed = 1, std::size_t users = 3,
                         std::size_t rbs = 5, double min_rate = 0.0) {
  ChannelConfig cfg;
  cfg.num_users = users;
  cfg.num_rbs = rbs;
  cfg.seed = seed;
  RraProblem p;
  p.gain = make_channel(cfg).gain;
  p.total_power = 1.0;
  p.min_rate = Vec(users, min_rate);
  return p;
}

TEST(RraProblem, ValidationErrors) {
  RraProblem p = small_problem();
  EXPECT_NO_THROW(p.validate());
  p.total_power = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.total_power = 1.0;
  p.min_rate.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Waterfill, BudgetFullySpent) {
  const Vec gains = {1.0, 2.0, 10.0};
  const Vec p = waterfill(gains, 3.0);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 3.0, 1e-6);
  for (double v : p) EXPECT_GE(v, 0.0);
}

TEST(Waterfill, StrongerChannelsGetAtLeastAsMuchPower) {
  const Vec gains = {0.5, 2.0, 8.0};
  const Vec p = waterfill(gains, 2.0);
  EXPECT_LE(p[0], p[1] + 1e-9);
  EXPECT_LE(p[1], p[2] + 1e-9);
}

TEST(Waterfill, EqualWaterLevelOnActiveChannels) {
  // KKT condition: mu = p_i + 1/g_i equal across channels with p_i > 0.
  const Vec gains = {1.0, 3.0, 7.0};
  const Vec p = waterfill(gains, 5.0);
  Vec levels;
  for (std::size_t i = 0; i < 3; ++i)
    if (p[i] > 1e-9) levels.push_back(p[i] + 1.0 / gains[i]);
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_NEAR(levels[i], levels[0], 1e-6);
}

TEST(Waterfill, WeakChannelShutOffUnderTightBudget) {
  const Vec gains = {0.001, 100.0};
  const Vec p = waterfill(gains, 0.01);
  EXPECT_NEAR(p[0], 0.0, 1e-9);
  EXPECT_NEAR(p[1], 0.01, 1e-6);
}

TEST(Waterfill, ZeroGainsGetNoPower) {
  const Vec p = waterfill({0.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_NEAR(p[1], 1.0, 1e-6);
}

TEST(QosPower, MeetsMinRates) {
  const RraProblem p = small_problem(2, 2, 4, 0.8);
  const Assignment a = {0, 1, 0, 1};
  const auto power = qos_power_allocation(p, a);
  ASSERT_TRUE(power.has_value());
  const RraSolution sol = evaluate_assignment(p, a);
  EXPECT_TRUE(sol.feasible);
  for (std::size_t u = 0; u < 2; ++u)
    EXPECT_GE(sol.user_rate[u], 0.8 - 1e-9);
}

TEST(QosPower, InfeasibleWhenUserUnserved) {
  const RraProblem p = small_problem(3, 2, 4, 0.5);
  const Assignment all_to_user0 = {0, 0, 0, 0};
  EXPECT_FALSE(qos_power_allocation(p, all_to_user0).has_value());
}

TEST(QosPower, InfeasibleWhenRatesExceedBudget) {
  RraProblem p = small_problem(4, 2, 4, 0.0);
  p.min_rate = Vec(2, 100.0);  // absurd requirement
  const Assignment a = {0, 1, 0, 1};
  EXPECT_FALSE(qos_power_allocation(p, a).has_value());
}

TEST(EvaluateAssignment, PowerBudgetRespected) {
  const RraProblem p = small_problem(5, 3, 6, 0.3);
  const Assignment a = {0, 1, 2, 0, 1, 2};
  const RraSolution sol = evaluate_assignment(p, a);
  double total = 0.0;
  for (double v : sol.power) total += v;
  EXPECT_LE(total, p.total_power + 1e-6);
  // Sum rate equals the sum of user rates.
  double sum = 0.0;
  for (double r : sol.user_rate) sum += r;
  EXPECT_NEAR(sum, sol.sum_rate, 1e-9);
}

TEST(SolveExact, MatchesBruteForceOnTinyInstance) {
  const RraProblem p = small_problem(6, 2, 4, 0.0);
  const RraSolution exact = solve_exact(p);
  // Brute force.
  double best = -1.0;
  for (std::size_t mask = 0; mask < 16; ++mask) {
    Assignment a(4);
    for (std::size_t rb = 0; rb < 4; ++rb) a[rb] = (mask >> rb) & 1u;
    best = std::max(best, evaluate_assignment(p, a).sum_rate);
  }
  EXPECT_NEAR(exact.sum_rate, best, 1e-9);
  EXPECT_TRUE(exact.feasible);
}

TEST(SolveExact, PrefersFeasibleOverHigherRateInfeasible) {
  // With binding QoS floors, the exact solver must return a feasible
  // solution whenever one exists.
  const RraProblem p = small_problem(7, 3, 6, 0.6);
  const RraSolution sol = solve_exact(p);
  EXPECT_TRUE(sol.feasible);
}

TEST(RelaxationBound, UpperBoundsExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RraProblem p = small_problem(seed, 3, 5, 0.2);
    const RraSolution exact = solve_exact(p);
    EXPECT_GE(relaxation_upper_bound(p), exact.sum_rate - 1e-9)
        << "seed " << seed;
  }
}

TEST(SolveGreedy, NeverBeatsExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RraProblem p = small_problem(seed, 3, 5, 0.0);
    EXPECT_LE(solve_greedy(p).sum_rate, solve_exact(p).sum_rate + 1e-9)
        << "seed " << seed;
  }
}

TEST(SolveGreedy, MaxGainAssignmentWithoutQos) {
  const RraProblem p = small_problem(8, 3, 5, 0.0);
  const RraSolution sol = solve_greedy(p);
  for (std::size_t rb = 0; rb < 5; ++rb) {
    for (std::size_t u = 0; u < 3; ++u)
      EXPECT_LE(p.gain(u, rb), p.gain(sol.assignment[rb], rb) + 1e-15);
  }
}

TEST(SolveGreedy, RepairImprovesFeasibility) {
  // With QoS floors the repaired greedy should be feasible on most seeds.
  std::size_t feasible = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RraProblem p = small_problem(seed, 3, 6, 0.4);
    if (solve_greedy(p).feasible) ++feasible;
  }
  EXPECT_GE(feasible, 6u);
}

TEST(SolvePso, FindsNearOptimalSolutions) {
  double total_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RraProblem p = small_problem(seed, 3, 5, 0.2);
    const RraSolution exact = solve_exact(p);
    RraPsoOptions opts;
    opts.seed = seed;
    const RraSolution pso = solve_pso(p, opts);
    EXPECT_LE(pso.sum_rate, exact.sum_rate + 1e-9);
    total_gap += (exact.sum_rate - pso.sum_rate) / exact.sum_rate;
  }
  EXPECT_LT(total_gap / 4.0, 0.10);  // within 10% of optimal on average
}

TEST(SolvePso, MoreQosCompliantThanGreedyAtNearOptimalRate) {
  // Under binding QoS floors, max-gain greedy posts high raw rates by
  // *violating* the per-user minima; the PSO's penalized search stays
  // feasible and tracks the exact feasible optimum.
  std::size_t pso_feasible = 0;
  std::size_t greedy_feasible = 0;
  double worst_gap = 0.0;
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    const RraProblem p = small_problem(seed, 4, 6, 0.3);
    RraPsoOptions opts;
    opts.seed = seed;
    opts.swarm_size = 40;
    opts.max_iterations = 250;
    const RraSolution pso = solve_pso(p, opts);
    const RraSolution greedy = solve_greedy(p);
    if (greedy.feasible) ++greedy_feasible;
    if (pso.feasible) {
      ++pso_feasible;
      const RraSolution exact = solve_exact(p);
      worst_gap = std::max(
          worst_gap, (exact.sum_rate - pso.sum_rate) / exact.sum_rate);
    }
  }
  EXPECT_GT(pso_feasible, greedy_feasible);
  EXPECT_GE(pso_feasible, 4u);
  EXPECT_LT(worst_gap, 0.10);
}

TEST(SolveExact, NodeBudgetReported) {
  const RraProblem p = small_problem(9, 2, 4, 0.0);
  const RraSolution sol = solve_exact(p, 1000);
  EXPECT_GT(sol.nodes_explored, 0u);
  EXPECT_LE(sol.nodes_explored, 1000u);
}

}  // namespace
}  // namespace rcr::qos
