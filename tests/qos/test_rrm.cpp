#include "rcr/qos/rrm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rcr::qos {
namespace {

RrmConfig base_config(std::uint64_t seed = 3) {
  RrmConfig c;
  c.num_users = 4;
  c.num_rbs = 8;
  c.num_slots = 150;
  c.seed = seed;
  return c;
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 0.0);
}

TEST(Rrm, InvalidConfigThrows) {
  RrmConfig c = base_config();
  c.num_slots = 0;
  EXPECT_THROW(run_scheduler(c, SchedulerPolicy::kMaxRate),
               std::invalid_argument);
  c = base_config();
  c.gbr = {1.0};  // wrong size
  EXPECT_THROW(run_scheduler(c, SchedulerPolicy::kQosProportionalFair),
               std::invalid_argument);
  c = base_config();
  c.power_per_rb = 0.0;
  EXPECT_THROW(run_scheduler(c, SchedulerPolicy::kMaxRate),
               std::invalid_argument);
}

TEST(Rrm, DeterministicGivenSeed) {
  const RrmConfig c = base_config(9);
  const RrmReport a = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  const RrmReport b = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  EXPECT_EQ(a.mean_rate, b.mean_rate);
}

TEST(Rrm, MaxRateMaximizesCellThroughput) {
  const RrmConfig c = base_config();
  const double max_rate =
      run_scheduler(c, SchedulerPolicy::kMaxRate).cell_throughput;
  for (SchedulerPolicy p : {SchedulerPolicy::kRoundRobin,
                            SchedulerPolicy::kProportionalFair}) {
    EXPECT_GE(max_rate, run_scheduler(c, p).cell_throughput - 1e-9)
        << to_string(p);
  }
}

TEST(Rrm, ProportionalFairBeatsMaxRateOnFairness) {
  const RrmConfig c = base_config();
  const RrmReport mr = run_scheduler(c, SchedulerPolicy::kMaxRate);
  const RrmReport pf = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  EXPECT_GT(pf.jain_fairness, mr.jain_fairness);
}

TEST(Rrm, ProportionalFairBeatsRoundRobinOnThroughput) {
  // PF exploits multi-user diversity; RR ignores the channel entirely.
  const RrmConfig c = base_config();
  const RrmReport rr = run_scheduler(c, SchedulerPolicy::kRoundRobin);
  const RrmReport pf = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  EXPECT_GT(pf.cell_throughput, rr.cell_throughput);
}

TEST(Rrm, RoundRobinServesEveryoneEverySlotOnAverage) {
  const RrmConfig c = base_config();
  const RrmReport rr = run_scheduler(c, SchedulerPolicy::kRoundRobin);
  // 8 RBs across 4 users: everyone gets 2 RBs per slot.
  for (std::size_t u = 0; u < c.num_users; ++u)
    EXPECT_EQ(rr.slots_served[u], c.num_slots);
}

TEST(Rrm, MaxRateCanStarveCellEdgeUsers) {
  const RrmConfig c = base_config(5);
  const RrmReport mr = run_scheduler(c, SchedulerPolicy::kMaxRate);
  const std::size_t least =
      *std::min_element(mr.slots_served.begin(), mr.slots_served.end());
  EXPECT_LT(least, c.num_slots / 2);  // someone is starved most slots
  EXPECT_LT(mr.jain_fairness, 0.7);   // and the rate split is badly skewed
}

TEST(Rrm, QosBoostReducesGbrViolations) {
  RrmConfig c = base_config(7);
  // Set GBR floors near each user's PF rate so the weakest users need help.
  const RrmReport pf = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  c.gbr.resize(c.num_users);
  for (std::size_t u = 0; u < c.num_users; ++u)
    c.gbr[u] = 1.15 * pf.mean_rate[u];

  const RrmReport plain = run_scheduler(c, SchedulerPolicy::kProportionalFair);
  const RrmReport qos =
      run_scheduler(c, SchedulerPolicy::kQosProportionalFair);
  EXPECT_LE(qos.gbr_violations, plain.gbr_violations);
}

TEST(Rrm, MeanRatesPositive) {
  const RrmConfig c = base_config();
  for (SchedulerPolicy p :
       {SchedulerPolicy::kMaxRate, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kProportionalFair}) {
    const RrmReport r = run_scheduler(c, p);
    double sum = 0.0;
    for (double v : r.mean_rate) sum += v;
    EXPECT_NEAR(sum, r.cell_throughput, 1e-9) << to_string(p);
    EXPECT_GT(r.cell_throughput, 0.0) << to_string(p);
  }
}

TEST(Rrm, PolicyNamesDistinct) {
  EXPECT_NE(to_string(SchedulerPolicy::kMaxRate),
            to_string(SchedulerPolicy::kProportionalFair));
  EXPECT_EQ(to_string(SchedulerPolicy::kQosProportionalFair), "qos-pf");
}

}  // namespace
}  // namespace rcr::qos
