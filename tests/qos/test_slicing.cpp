#include "rcr/qos/slicing.hpp"

#include <gtest/gtest.h>

namespace rcr::qos {
namespace {

TEST(Slicing, RandomWorkloadShapes) {
  const SlicingProblem p = random_slicing(20, 64, 1);
  EXPECT_EQ(p.requests.size(), 20u);
  EXPECT_EQ(p.rb_budget, 64u);
  for (const auto& r : p.requests) {
    EXPECT_GE(r.rb_demand, 1u);
    EXPECT_GT(r.utility, 0.0);
  }
}

TEST(Slicing, ClassNames) {
  EXPECT_EQ(to_string(ServiceClass::kEmbb), "eMBB");
  EXPECT_EQ(to_string(ServiceClass::kUrllc), "URLLC");
  EXPECT_EQ(to_string(ServiceClass::kMmtc), "mMTC");
}

TEST(Slicing, ExactSolutionRespectsBudget) {
  const SlicingProblem p = random_slicing(25, 40, 2);
  const SlicingSolution sol = solve_slicing_exact(p);
  EXPECT_LE(sol.rbs_used, p.rb_budget);
  // Totals consistent with the admitted set.
  double utility = 0.0;
  std::size_t rbs = 0;
  for (std::size_t i = 0; i < p.requests.size(); ++i) {
    if (sol.admitted[i]) {
      utility += p.requests[i].utility;
      rbs += p.requests[i].rb_demand;
    }
  }
  EXPECT_NEAR(utility, sol.total_utility, 1e-9);
  EXPECT_EQ(rbs, sol.rbs_used);
}

TEST(Slicing, ExactMatchesBruteForceOnTinyInstance) {
  const SlicingProblem p = random_slicing(12, 20, 3);
  const SlicingSolution exact = solve_slicing_exact(p);
  double best = 0.0;
  for (std::size_t mask = 0; mask < (1u << 12); ++mask) {
    double utility = 0.0;
    std::size_t rbs = 0;
    for (std::size_t i = 0; i < 12; ++i) {
      if ((mask >> i) & 1u) {
        utility += p.requests[i].utility;
        rbs += p.requests[i].rb_demand;
      }
    }
    if (rbs <= p.rb_budget) best = std::max(best, utility);
  }
  EXPECT_NEAR(exact.total_utility, best, 1e-9);
}

TEST(Slicing, GreedyNeverBeatsExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SlicingProblem p = random_slicing(30, 50, seed);
    const SlicingSolution exact = solve_slicing_exact(p);
    const SlicingSolution greedy = solve_slicing_greedy(p);
    EXPECT_LE(greedy.total_utility, exact.total_utility + 1e-9)
        << "seed " << seed;
    EXPECT_LE(greedy.rbs_used, p.rb_budget);
  }
}

TEST(Slicing, ZeroBudgetAdmitsNothing) {
  const SlicingProblem p = random_slicing(10, 0, 4);
  const SlicingSolution sol = solve_slicing_exact(p);
  EXPECT_EQ(sol.admitted_count, 0u);
  EXPECT_DOUBLE_EQ(sol.total_utility, 0.0);
}

TEST(Slicing, AmpleBudgetAdmitsEverything) {
  const SlicingProblem p = random_slicing(10, 100000, 5);
  const SlicingSolution sol = solve_slicing_exact(p);
  EXPECT_EQ(sol.admitted_count, 10u);
}

TEST(Slicing, UrllcDensityPreferredUnderScarcity) {
  // URLLC requests have the highest utility density; under a tight budget
  // the exact solution admits proportionally more of them.
  const SlicingProblem p = random_slicing(40, 30, 6);
  const SlicingSolution sol = solve_slicing_exact(p);
  std::size_t urllc_admitted = 0;
  std::size_t urllc_total = 0;
  std::size_t embb_admitted = 0;
  std::size_t embb_total = 0;
  for (std::size_t i = 0; i < p.requests.size(); ++i) {
    if (p.requests[i].service == ServiceClass::kUrllc) {
      ++urllc_total;
      if (sol.admitted[i]) ++urllc_admitted;
    } else if (p.requests[i].service == ServiceClass::kEmbb) {
      ++embb_total;
      if (sol.admitted[i]) ++embb_admitted;
    }
  }
  ASSERT_GT(urllc_total, 0u);
  ASSERT_GT(embb_total, 0u);
  const double urllc_frac =
      static_cast<double>(urllc_admitted) / static_cast<double>(urllc_total);
  const double embb_frac =
      static_cast<double>(embb_admitted) / static_cast<double>(embb_total);
  EXPECT_GT(urllc_frac, embb_frac);
}

}  // namespace
}  // namespace rcr::qos
