// The bit-exactness contract: guards observe but never change arithmetic.
// With no faults installed and no deadline armed, every robustified solver
// must produce bit-identical outputs to the same call without the guard
// plumbing engaged (armed-but-far deadlines, no-match fault policies).
#include <gtest/gtest.h>

#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/qos/robust.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr {
namespace {

using robust::Deadline;

void expect_bitwise_equal(const Vec& a, const Vec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

void expect_bitwise_equal(const num::Matrix& a, const num::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(a(i, j), b(i, j)) << i << "," << j;
}

TEST(BitExact, AdmmUnaffectedByFarDeadlineAndNoMatchFaults) {
  num::Rng rng(7);
  const num::Matrix p = opt::random_psd(5, 5, rng) + num::Matrix::identity(5);
  const Vec q = rng.normal_vec(5);
  const Vec lo(5, -1.0), hi(5, 1.0);

  const opt::AdmmResult plain = opt::admm_box_qp(p, q, lo, hi);

  opt::AdmmOptions armed;
  armed.budget.deadline = Deadline::after_seconds(3600.0);
  robust::faults::ScopedFaults faults("seed=1,rate=1,sites=zzz.*");
  const opt::AdmmResult guarded = opt::admm_box_qp(p, q, lo, hi, armed);

  EXPECT_EQ(plain.converged, guarded.converged);
  EXPECT_EQ(plain.iterations, guarded.iterations);
  EXPECT_EQ(plain.objective, guarded.objective);
  expect_bitwise_equal(plain.x, guarded.x);
  EXPECT_TRUE(guarded.status.ok());
}

TEST(BitExact, SdpUnaffectedByFarDeadline) {
  opt::Sdp p;
  p.c = num::Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(num::Matrix::identity(3));
  p.b_eq.push_back(1.0);

  const opt::SdpResult plain = opt::solve_sdp(p);
  opt::SdpOptions armed;
  armed.budget.deadline = Deadline::after_seconds(3600.0);
  const opt::SdpResult guarded = opt::solve_sdp(p, armed);

  EXPECT_EQ(plain.iterations, guarded.iterations);
  EXPECT_EQ(plain.objective, guarded.objective);
  EXPECT_EQ(plain.primal_residual, guarded.primal_residual);
  expect_bitwise_equal(plain.x, guarded.x);
}

TEST(BitExact, QcqpBarrierUnaffectedByFarDeadline) {
  num::Rng rng(11);
  const opt::Qcqp prob = opt::random_convex_qcqp(4, 2, 1, rng);

  const opt::QcqpResult plain = opt::solve_qcqp_barrier(prob);
  opt::BarrierOptions armed;
  armed.budget.deadline = Deadline::after_seconds(3600.0);
  const opt::QcqpResult guarded = opt::solve_qcqp_barrier(prob, {}, armed);

  EXPECT_EQ(plain.converged, guarded.converged);
  EXPECT_EQ(plain.newton_iterations, guarded.newton_iterations);
  EXPECT_EQ(plain.value, guarded.value);
  expect_bitwise_equal(plain.x, guarded.x);
}

TEST(BitExact, LbfgsUnaffectedByFarDeadline) {
  opt::Smooth f;
  f.value = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  f.gradient = [](const Vec& x) {
    const double b = x[1] - x[0] * x[0];
    return Vec{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  const opt::MinimizeResult plain = opt::lbfgs(f, Vec{-1.2, 1.0});
  opt::MinimizeOptions armed;
  armed.budget.deadline = Deadline::after_seconds(3600.0);
  const opt::MinimizeResult guarded = opt::lbfgs(f, Vec{-1.2, 1.0}, armed);
  EXPECT_EQ(plain.iterations, guarded.iterations);
  EXPECT_EQ(plain.value, guarded.value);
  expect_bitwise_equal(plain.x, guarded.x);
}

TEST(BitExact, PsoUnaffectedByFarDeadlineAndNoMatchFaults) {
  const pso::Objective obj = pso::sphere(4);
  pso::PsoConfig plain_cfg;
  plain_cfg.swarm_size = 8;
  plain_cfg.max_iterations = 30;
  plain_cfg.seed = 5;
  const pso::PsoResult plain = pso::minimize(obj, plain_cfg);

  pso::PsoConfig armed_cfg = plain_cfg;
  armed_cfg.budget.deadline = Deadline::after_seconds(3600.0);
  robust::faults::ScopedFaults faults("seed=1,rate=1,sites=zzz.*");
  const pso::PsoResult guarded = pso::minimize(obj, armed_cfg);

  EXPECT_EQ(plain.iterations, guarded.iterations);
  EXPECT_EQ(plain.best_value, guarded.best_value);
  EXPECT_EQ(plain.nan_quarantines, 0u);
  EXPECT_EQ(guarded.nan_quarantines, 0u);
  expect_bitwise_equal(plain.best_position, guarded.best_position);
}

TEST(BitExact, RobustRraChainMatchesPlainExactSolver) {
  qos::ChannelConfig cfg;
  cfg.num_users = 3;
  cfg.num_rbs = 5;
  cfg.seed = 2;
  qos::RraProblem problem;
  problem.gain = qos::make_channel(cfg).gain;
  problem.total_power = 1.0;
  problem.min_rate = Vec(3, 0.1);

  const qos::RraSolution plain = qos::solve_exact(problem);
  const qos::RraRobustResult robust_r = qos::solve_rra_robust(problem);

  ASSERT_TRUE(plain.feasible);
  EXPECT_EQ(robust_r.method, "exact");
  EXPECT_EQ(robust_r.soundness, robust::Soundness::kExact);
  EXPECT_TRUE(robust_r.status.ok());
  EXPECT_EQ(robust_r.solution.assignment, plain.assignment);
  expect_bitwise_equal(robust_r.solution.power, plain.power);
  EXPECT_EQ(robust_r.solution.sum_rate, plain.sum_rate);
}

TEST(BitExact, RobustBoundsMatchPlainCrown) {
  num::Rng rng(13);
  const verify::ReluNetwork net =
      verify::ReluNetwork::random({2, 8, 8, 3}, rng);
  const verify::Box input = verify::Box::around(Vec{0.1, -0.2}, 0.05);

  const verify::LayerBounds plain = verify::crown_bounds(net, input);
  const verify::RobustBounds robust_b = verify::compute_bounds_robust(net, input);

  EXPECT_EQ(robust_b.method, verify::BoundMethod::kCrown);
  EXPECT_TRUE(robust_b.status.ok());
  expect_bitwise_equal(robust_b.bounds.output.lower, plain.output.lower);
  expect_bitwise_equal(robust_b.bounds.output.upper, plain.output.upper);
  ASSERT_EQ(robust_b.bounds.pre_activation.size(),
            plain.pre_activation.size());
  for (std::size_t k = 0; k < plain.pre_activation.size(); ++k) {
    expect_bitwise_equal(robust_b.bounds.pre_activation[k].lower,
                         plain.pre_activation[k].lower);
    expect_bitwise_equal(robust_b.bounds.pre_activation[k].upper,
                         plain.pre_activation[k].upper);
  }
}

TEST(BitExact, RobustVerifyMatchesPlainCrownVerify) {
  num::Rng rng(17);
  const verify::ReluNetwork net =
      verify::ReluNetwork::random({2, 8, 3}, rng);
  const verify::Box input = verify::Box::around(Vec{0.0, 0.0}, 0.02);
  verify::Spec spec;
  spec.c = {1.0, -1.0, 0.0};
  spec.d = 0.1;

  const verify::VerifyResult plain =
      verify::verify_relaxed(net, input, spec, verify::BoundMethod::kCrown);
  const verify::RobustVerifyResult robust_v =
      verify::verify_relaxed_robust(net, input, spec);

  EXPECT_EQ(robust_v.method, verify::BoundMethod::kCrown);
  EXPECT_EQ(robust_v.result.verdict, plain.verdict);
  EXPECT_EQ(robust_v.result.lower_bound, plain.lower_bound);
}

}  // namespace
}  // namespace rcr
