#include "rcr/robust/budget.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>

namespace rcr::robust {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(),
            std::numeric_limits<double>::infinity());
}

TEST(Deadline, UnlimitedFactoryMatchesDefault) {
  EXPECT_TRUE(Deadline::unlimited().is_unlimited());
  EXPECT_FALSE(Deadline::unlimited().expired());
}

TEST(Deadline, ZeroSecondsExpiresImmediately) {
  const Deadline d = Deadline::after_seconds(0.0);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Deadline, NegativeSecondsClampsToExpired) {
  EXPECT_TRUE(Deadline::after_seconds(-5.0).expired());
}

TEST(Deadline, FarFutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_seconds(3600.0);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(Deadline, AtAbsoluteTimePoint) {
  const Deadline past = Deadline::at(Deadline::Clock::now() -
                                     std::chrono::milliseconds(1));
  EXPECT_TRUE(past.expired());
  const Deadline future = Deadline::at(Deadline::Clock::now() +
                                       std::chrono::hours(1));
  EXPECT_FALSE(future.expired());
}

TEST(Deadline, ShortDeadlineEventuallyExpires) {
  const Deadline d = Deadline::after_seconds(1e-3);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
}

TEST(Budget, UnlimitedNeverExpiresAtAnyIteration) {
  const Budget b;
  EXPECT_FALSE(b.expired_at(0));
  EXPECT_FALSE(b.expired_at(1));
  EXPECT_FALSE(b.expired_at(123456));
}

TEST(Budget, ExpiredDeadlineFiresOnPolledIterations) {
  Budget b;
  b.deadline = Deadline::after_seconds(0.0);
  EXPECT_TRUE(b.expired_at(0));
  EXPECT_TRUE(b.expired_at(17));
}

TEST(Budget, CheckStrideSkipsOffStrideIterations) {
  Budget b;
  b.deadline = Deadline::after_seconds(0.0);
  b.check_stride = 8;
  EXPECT_TRUE(b.expired_at(0));
  EXPECT_FALSE(b.expired_at(1));   // Off-stride: no clock read, no expiry.
  EXPECT_FALSE(b.expired_at(7));
  EXPECT_TRUE(b.expired_at(8));
  EXPECT_TRUE(b.expired_at(64));
}

}  // namespace
}  // namespace rcr::robust
