// Chaos suite: every registered fault site is exercised individually with a
// deterministic seeded injector, and the workload behind it must return a
// degraded-but-valid answer -- never crash, never propagate an uncaught
// exception, never hand back NaN as a final result.
//
// Failures print the active RCR_FAULTS replay spec so any run reproduces
// exactly:  RCR_FAULTS="<spec>" ctest -L chaos
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/robust_solve.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/opt/trust_region.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/qos/robust.hpp"
#include "rcr/qos/rra.hpp"
#include "rcr/qos/rrm.hpp"
#include "rcr/rcr/stack.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/robust/guards.hpp"
#include "rcr/serve/service.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr {
namespace {

using robust::StatusCode;
namespace faults = robust::faults;

// Seed for the per-site sweeps; override to explore other decision streams.
std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("RCR_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 20260806;
}

std::string spec_for(const std::string& site, const char* extra = "") {
  return "seed=" + std::to_string(chaos_seed()) + ",rate=1,sites=" + site +
         extra;
}

#define RCR_CHAOS_TRACE() SCOPED_TRACE("replay: RCR_FAULTS=\"" + \
                                       faults::replay_spec() + "\"")

// ---- Workloads.  Each returns with gtest assertions applied; all are
// small enough to keep the chaos label fast.

void run_admm_workload() {
  RCR_CHAOS_TRACE();
  num::Rng rng(3);
  const num::Matrix p = opt::random_psd(4, 4, rng) + num::Matrix::identity(4);
  const Vec q = rng.normal_vec(4);
  const opt::AdmmResult r =
      opt::admm_box_qp(p, q, Vec(4, -1.0), Vec(4, 1.0));
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x)) << r.status.to_string();
  for (const double v : r.x) {
    EXPECT_GE(v, -1.0 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

void run_sdp_workload() {
  RCR_CHAOS_TRACE();
  opt::Sdp p;
  p.c = num::Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(num::Matrix::identity(3));
  p.b_eq.push_back(1.0);
  const opt::SdpResult r = opt::solve_sdp(p);
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  for (std::size_t i = 0; i < r.x.rows(); ++i)
    for (std::size_t j = 0; j < r.x.cols(); ++j)
      EXPECT_TRUE(std::isfinite(r.x(i, j))) << r.status.to_string();
}

void run_qcqp_workload() {
  RCR_CHAOS_TRACE();
  num::Rng rng(5);
  const opt::Qcqp prob = opt::random_convex_qcqp(3, 2, 0, rng);
  const opt::QcqpResult r = opt::solve_qcqp_barrier(prob);
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x)) << r.status.to_string();
  EXPECT_TRUE(std::isfinite(r.value)) << r.status.to_string();
}

opt::Smooth rosenbrock_smooth() {
  opt::Smooth f;
  f.value = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  f.gradient = [](const Vec& x) {
    const double b = x[1] - x[0] * x[0];
    return Vec{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  return f;
}

void run_lbfgs_workload() {
  RCR_CHAOS_TRACE();
  const opt::MinimizeResult r =
      opt::lbfgs(rosenbrock_smooth(), Vec{-1.2, 1.0});
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x)) << r.status.to_string();
  EXPECT_TRUE(std::isfinite(r.value)) << r.status.to_string();
}

void run_trust_region_workload() {
  RCR_CHAOS_TRACE();
  const opt::MinimizeResult r =
      opt::trust_region_bfgs(rosenbrock_smooth(), Vec{-1.2, 1.0});
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x)) << r.status.to_string();
  EXPECT_TRUE(std::isfinite(r.value)) << r.status.to_string();
}

void run_pso_workload() {
  RCR_CHAOS_TRACE();
  pso::PsoConfig cfg;
  cfg.swarm_size = 8;
  cfg.max_iterations = 20;
  cfg.seed = 9;
  const pso::PsoResult r = pso::minimize(pso::sphere(3), cfg);
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.best_position)) << r.status.to_string();
  if (r.status.code == StatusCode::kNumericalFailure) {
    // Total wipeout (every evaluation non-finite): the position is still a
    // valid point in the box; the value is the +inf sentinel, never NaN.
    EXPECT_EQ(r.best_value, std::numeric_limits<double>::infinity())
        << r.status.to_string();
  } else {
    EXPECT_TRUE(std::isfinite(r.best_value)) << r.status.to_string();
  }
}

void run_verify_workload() {
  RCR_CHAOS_TRACE();
  num::Rng rng(7);
  const verify::ReluNetwork net =
      verify::ReluNetwork::random({2, 8, 3}, rng);
  const verify::Box input = verify::Box::around(Vec{0.0, 0.0}, 0.05);
  const verify::RobustBounds b = verify::compute_bounds_robust(net, input);
  EXPECT_TRUE(b.status.usable()) << b.status.to_string();
  EXPECT_TRUE(robust::all_finite(b.bounds.output.lower))
      << b.status.to_string();
  EXPECT_TRUE(robust::all_finite(b.bounds.output.upper))
      << b.status.to_string();
}

qos::RraProblem small_rra_problem() {
  qos::ChannelConfig cfg;
  cfg.num_users = 3;
  cfg.num_rbs = 5;
  cfg.seed = 2;
  qos::RraProblem p;
  p.gain = qos::make_channel(cfg).gain;
  p.total_power = 1.0;
  p.min_rate = Vec(3, 0.1);
  return p;
}

void run_qos_workload() {
  RCR_CHAOS_TRACE();
  const qos::RraRobustResult r = qos::solve_rra_robust(small_rra_problem());
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_FALSE(r.solution.assignment.empty()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.solution.power)) << r.status.to_string();
}

void run_rrm_workload() {
  RCR_CHAOS_TRACE();
  qos::RrmConfig cfg;
  cfg.num_users = 3;
  cfg.num_rbs = 4;
  cfg.num_slots = 20;
  const qos::RrmReport r =
      qos::run_scheduler(cfg, qos::SchedulerPolicy::kProportionalFair);
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.mean_rate)) << r.status.to_string();
  EXPECT_LE(r.slots_completed, cfg.num_slots);
}

void run_robust_boxqp_workload() {
  RCR_CHAOS_TRACE();
  num::Rng rng(21);
  const num::Matrix p = opt::random_psd(3, 3, rng) + num::Matrix::identity(3);
  const Vec q = rng.normal_vec(3);
  const opt::RobustBoxQpResult r =
      opt::solve_box_qp_robust(p, q, Vec(3, -1.0), Vec(3, 1.0));
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x)) << r.status.to_string();
  for (const double v : r.x) {
    EXPECT_GE(v, -1.0 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

void run_serve_workload() {
  RCR_CHAOS_TRACE();
  serve::WorkloadConfig wc;
  wc.num_cells = 2;
  wc.num_rbs = 5;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.seed = 11;
  serve::DiurnalWorkload wl(wc);
  serve::AllocationService service(serve::ServiceConfig{}, wc.num_cells);
  for (std::size_t t = 0; t < 3; ++t) {
    wl.advance(t);
    const serve::TickReport report = service.tick(t, wl);
    EXPECT_EQ(report.cells, wc.num_cells);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const serve::CellAllocation& a = service.allocation(c);
      EXPECT_TRUE(a.status.usable()) << a.status.to_string();
      EXPECT_TRUE(robust::all_finite(a.power)) << a.status.to_string();
      EXPECT_EQ(a.power.size(), wc.num_rbs);
    }
  }
}

void run_serve_overload_workload() {
  // The overload-control sites are inert under the default config; this
  // workload arms admission, breakers, and the watchdog so serve.admit.*,
  // serve.breaker.*, and serve.solve.* actually guard live code paths.
  RCR_CHAOS_TRACE();
  serve::WorkloadConfig wc;
  wc.num_cells = 3;
  wc.num_rbs = 5;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.seed = 11;
  serve::ServiceConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_solves_per_tick = 2;
  sc.admission.cell_slices = {qos::ServiceClass::kUrllc,
                              qos::ServiceClass::kEmbb,
                              qos::ServiceClass::kMmtc};
  sc.breaker.enabled = true;
  sc.breaker.failure_threshold = 2;
  sc.breaker.open_ticks = 2;
  sc.watchdog.enabled = true;
  sc.watchdog.quarantine_ticks = 2;
  serve::DiurnalWorkload wl(wc);
  serve::AllocationService service(sc, wc.num_cells);
  for (std::size_t t = 0; t < 4; ++t) {
    wl.advance(t);
    const serve::TickReport report = service.tick(t, wl);
    EXPECT_EQ(report.cells, wc.num_cells);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const serve::CellAllocation& a = service.allocation(c);
      EXPECT_TRUE(a.status.usable()) << a.status.to_string();
      EXPECT_TRUE(robust::all_finite(a.power)) << a.status.to_string();
      EXPECT_TRUE(std::isfinite(a.sum_rate)) << a.status.to_string();
      EXPECT_EQ(a.power.size(), wc.num_rbs);
    }
  }
}

void run_learn_workload() {
  // learn.head.corrupt is inert unless the learned head is armed; arm it
  // with a deterministic randomly-initialized predictor (no artifact file
  // needed -- the contract under test is rejection, not model quality).
  RCR_CHAOS_TRACE();
  serve::WorkloadConfig wc;
  wc.num_cells = 2;
  wc.num_rbs = 5;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.seed = 11;
  serve::ServiceConfig sc;
  sc.learned.enabled = true;
  serve::DiurnalWorkload wl(wc);
  serve::AllocationService service(sc, wc.num_cells);
  ASSERT_TRUE(service.arm_learned_head(
      learn::random_predictor(8, 2, sc.admm_rho, 77)));
  for (std::size_t t = 0; t < 3; ++t) {
    wl.advance(t);
    const serve::TickReport report = service.tick(t, wl);
    EXPECT_EQ(report.cells, wc.num_cells);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const serve::CellAllocation& a = service.allocation(c);
      EXPECT_TRUE(a.status.usable()) << a.status.to_string();
      EXPECT_TRUE(robust::all_finite(a.power)) << a.status.to_string();
      EXPECT_EQ(a.power.size(), wc.num_rbs);
    }
  }
}

// Routes each site to a workload that passes through it.
void run_workload_for_site(const std::string& site) {
  if (site.rfind("admm.", 0) == 0 || site == "numerics.lu.singular") {
    run_admm_workload();
    run_robust_boxqp_workload();
  } else if (site.rfind("sdp.", 0) == 0) {
    run_sdp_workload();
  } else if (site.rfind("qcqp.", 0) == 0) {
    run_qcqp_workload();
  } else if (site.rfind("lbfgs.", 0) == 0) {
    run_lbfgs_workload();
  } else if (site.rfind("tr.", 0) == 0) {
    run_trust_region_workload();
  } else if (site.rfind("pso.", 0) == 0) {
    run_pso_workload();
  } else if (site.rfind("verify.", 0) == 0) {
    run_verify_workload();
  } else if (site.rfind("qos.", 0) == 0) {
    run_qos_workload();
  } else if (site.rfind("rrm.", 0) == 0) {
    run_rrm_workload();
  } else if (site.rfind("serve.admit.", 0) == 0 ||
             site.rfind("serve.breaker.", 0) == 0 ||
             site.rfind("serve.solve.", 0) == 0) {
    run_serve_overload_workload();
  } else if (site.rfind("serve.", 0) == 0) {
    run_serve_workload();
  } else if (site.rfind("learn.", 0) == 0) {
    run_learn_workload();
  } else if (site.rfind("stack.", 0) == 0) {
    // The full stack is exercised by its own test below (expensive); here
    // the site's glob simply must not break the cheap workloads.
    run_qos_workload();
  } else {
    FAIL() << "registered site with no chaos workload: " << site
           << " -- add a route here when adding injection sites";
  }
}

// ---- The per-site sweep: the acceptance gate for the fault registry.

TEST(Chaos, EverySiteYieldsDegradedButValidAnswers) {
  for (const std::string& site : faults::registered_sites()) {
    SCOPED_TRACE("site: " + site);
    faults::ScopedFaults scope(spec_for(site));
    run_workload_for_site(site);
  }
}

TEST(Chaos, InjectionsActuallyFireAtCoreSites) {
  // Guard against silently-dead injection points: for these sites the
  // workload is known to pass through the guarded code.
  const std::pair<const char*, void (*)()> wired[] = {
      {"admm.iterate.nan", &run_admm_workload},
      {"admm.deadline", &run_admm_workload},
      {"sdp.iterate.nan", &run_sdp_workload},
      {"sdp.deadline", &run_sdp_workload},
      {"qcqp.deadline", &run_qcqp_workload},
      {"lbfgs.gradient.nan", &run_lbfgs_workload},
      {"lbfgs.deadline", &run_lbfgs_workload},
      {"tr.step.nan", &run_trust_region_workload},
      {"tr.deadline", &run_trust_region_workload},
      {"pso.objective.nan", &run_pso_workload},
      {"pso.deadline", &run_pso_workload},
      {"verify.crown.nan", &run_verify_workload},
      {"rrm.deadline", &run_rrm_workload},
      {"serve.admit.shed", &run_serve_overload_workload},
      {"serve.breaker.trip", &run_serve_overload_workload},
      {"serve.solve.corrupt", &run_serve_overload_workload},
      {"learn.head.corrupt", &run_learn_workload},
  };
  for (const auto& [site, workload] : wired) {
    SCOPED_TRACE(std::string("site: ") + site);
    faults::ScopedFaults scope(spec_for(site));
    workload();
    EXPECT_GT(faults::injection_count(site), 0u) << site;
  }
}

TEST(Chaos, NanInjectionDegradesCrownToIbp) {
  faults::ScopedFaults scope(spec_for("verify.crown.nan"));
  RCR_CHAOS_TRACE();
  num::Rng rng(7);
  const verify::ReluNetwork net =
      verify::ReluNetwork::random({2, 8, 3}, rng);
  const verify::Box input = verify::Box::around(Vec{0.0, 0.0}, 0.05);
  const verify::RobustBounds b = verify::compute_bounds_robust(net, input);
  EXPECT_EQ(b.method, verify::BoundMethod::kIbp);
  EXPECT_EQ(b.status.code, StatusCode::kDegraded);
  ASSERT_FALSE(b.status.trail.empty());
  EXPECT_NE(b.status.trail[0].find("crown"), std::string::npos);
  EXPECT_TRUE(robust::all_finite(b.bounds.output.lower));
}

TEST(Chaos, PsoQuarantinesNanParticlesDeterministically) {
  pso::PsoConfig cfg;
  cfg.swarm_size = 8;
  cfg.max_iterations = 20;
  cfg.seed = 9;
  Vec first;
  std::size_t first_quarantines = 0;
  {
    faults::ScopedFaults scope(spec_for("pso.objective.nan", ",rate=0.2"));
    RCR_CHAOS_TRACE();
    const pso::PsoResult r = pso::minimize(pso::sphere(3), cfg);
    EXPECT_GT(r.nan_quarantines, 0u);
    EXPECT_TRUE(robust::all_finite(r.best_position));
    first = r.best_position;
    first_quarantines = r.nan_quarantines;
  }
  // Same seed, same injections, same answer: schedule-independent.
  {
    faults::ScopedFaults scope(spec_for("pso.objective.nan", ",rate=0.2"));
    RCR_CHAOS_TRACE();
    const pso::PsoResult r = pso::minimize(pso::sphere(3), cfg);
    EXPECT_EQ(r.nan_quarantines, first_quarantines);
    ASSERT_EQ(r.best_position.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
      EXPECT_EQ(r.best_position[i], first[i]) << i;
  }
}

TEST(Chaos, AdmmSingularFactorWalksTheRidgeLadder) {
  faults::ScopedFaults scope(spec_for("admm.factor.singular", ",max=1"));
  RCR_CHAOS_TRACE();
  num::Rng rng(3);
  const num::Matrix p = opt::random_psd(4, 4, rng) + num::Matrix::identity(4);
  const Vec q = rng.normal_vec(4);
  const opt::AdmmResult r =
      opt::admm_box_qp(p, q, Vec(4, -1.0), Vec(4, 1.0));
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_FALSE(r.status.trail.empty()) << r.status.to_string();
  EXPECT_TRUE(robust::all_finite(r.x));
}

TEST(Chaos, SdpKktInjectionDrivesLeastSquaresRecovery) {
  faults::ScopedFaults scope(spec_for("sdp.kkt.singular", ",max=1"));
  RCR_CHAOS_TRACE();
  opt::Sdp p;
  p.c = num::Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(num::Matrix::identity(3));
  p.b_eq.push_back(1.0);
  const opt::SdpResult r = opt::solve_sdp(p);
  EXPECT_TRUE(r.status.usable()) << r.status.to_string();
  EXPECT_FALSE(r.status.trail.empty()) << r.status.to_string();
  EXPECT_GT(faults::injection_count("sdp.kkt.singular"), 0u);
}

TEST(Chaos, StackDeadlineInjectionSkipsPhasesNotAnswers) {
  faults::ScopedFaults scope(spec_for("stack.deadline"));
  RCR_CHAOS_TRACE();
  // rate=1 fires at the first inter-phase boundary, so only the cheap
  // phase 3 runs and the heavy training phases are skipped -- exactly the
  // degradation contract, and it keeps this test fast.
  core::RcrStackConfig cfg;
  cfg.image_size = 8;
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  cfg.pso_swarm = 2;
  cfg.pso_iterations = 1;
  cfg.tuning_epochs = 1;
  cfg.final_epochs = 1;
  cfg.certify_epochs = 1;
  core::RcrStack stack(cfg);
  const core::RcrStackReport r = stack.run();
  EXPECT_EQ(r.status.code, StatusCode::kDeadlineExpired);
  EXPECT_GE(r.phases_completed, 1u);
  EXPECT_LT(r.phases_completed, 5u);
  EXPECT_NE(r.status.detail.find("phase"), std::string::npos)
      << r.status.detail;
  EXPECT_TRUE(std::isfinite(r.inertia_qp_consistency));
}

TEST(Chaos, RandomizedMultiSiteSweepNeverCrashes) {
  // Fractional rate across every site at once, several decision streams.
  for (std::uint64_t round = 0; round < 3; ++round) {
    faults::ScopedFaults scope(
        "seed=" + std::to_string(chaos_seed() + round) + ",rate=0.3");
    SCOPED_TRACE("replay: RCR_FAULTS=\"" + faults::replay_spec() + "\"");
    run_admm_workload();
    run_sdp_workload();
    run_qcqp_workload();
    run_lbfgs_workload();
    run_trust_region_workload();
    run_pso_workload();
    run_verify_workload();
    run_qos_workload();
    run_rrm_workload();
    run_robust_boxqp_workload();
  }
}

}  // namespace
}  // namespace rcr
