#include "rcr/robust/fallback.hpp"

#include <gtest/gtest.h>

namespace rcr::robust {
namespace {

Result<int> ok_result(int v) { return {v, ok_status()}; }

Result<int> failed(StatusCode code, const char* why) {
  return {0, make_status(code, why)};
}

TEST(FallbackChain, FirstStepCleanWinIsOk) {
  FallbackChain<int> chain;
  chain.add("tight", Soundness::kExact, [] { return ok_result(1); })
      .add("loose", Soundness::kHeuristic, [] { return ok_result(2); });
  const ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.value, 1);
  EXPECT_EQ(out.step, "tight");
  EXPECT_EQ(out.soundness, Soundness::kExact);
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.attempts, 1u);
}

TEST(FallbackChain, SecondStepWinIsDegradedAndTrailNamesTheFailure) {
  FallbackChain<int> chain;
  chain.add("tight", Soundness::kExact,
            [] { return failed(StatusCode::kSingular, "KKT degenerate"); })
      .add("loose", Soundness::kRelaxation, [] { return ok_result(2); });
  const ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.value, 2);
  EXPECT_EQ(out.step, "loose");
  EXPECT_EQ(out.soundness, Soundness::kRelaxation);
  EXPECT_EQ(out.status.code, StatusCode::kDegraded);
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_FALSE(out.status.trail.empty());
  EXPECT_NE(out.status.trail[0].find("tight"), std::string::npos);
  EXPECT_NE(out.status.trail[0].find("KKT degenerate"), std::string::npos);
}

TEST(FallbackChain, UsableDegradedAnswerIsBankedWhenNothingFullySucceeds) {
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact,
            [] { return Result<int>{11, make_status(
                     StatusCode::kNonConverged, "budget out")}; })
      .add("b", Soundness::kHeuristic,
           [] { return failed(StatusCode::kInfeasible, "no point"); });
  const ChainOutcome<int> out = chain.run();
  // Step a's answer is usable (non-converged best iterate) and wins.
  EXPECT_EQ(out.value, 11);
  EXPECT_EQ(out.step, "a");
  EXPECT_EQ(out.status.code, StatusCode::kDegraded);
  EXPECT_EQ(out.attempts, 2u);
}

TEST(FallbackChain, FirstUsableBankWinsOverLaterUsable) {
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact,
            [] { return Result<int>{1, make_status(
                     StatusCode::kNonConverged, "x")}; })
      .add("b", Soundness::kHeuristic,
           [] { return Result<int>{2, make_status(
                    StatusCode::kNonConverged, "y")}; });
  const ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.value, 1);
  EXPECT_EQ(out.step, "a");
}

TEST(FallbackChain, ExhaustedWhenNothingUsable) {
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact,
            [] { return failed(StatusCode::kInfeasible, "no point"); })
      .add("b", Soundness::kHeuristic,
           [] { return failed(StatusCode::kFallbackExhausted, "nope"); });
  const ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.status.code, StatusCode::kFallbackExhausted);
  EXPECT_FALSE(out.status.usable());
  EXPECT_EQ(out.value, 0);  // Default-constructed.
  EXPECT_EQ(out.attempts, 2u);
}

TEST(FallbackChain, ExpiredDeadlineSkipsEveryStep) {
  int runs = 0;
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact, [&] {
    ++runs;
    return ok_result(1);
  });
  const ChainOutcome<int> out = chain.run(Deadline::after_seconds(0.0));
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(out.attempts, 0u);
  EXPECT_EQ(out.status.code, StatusCode::kFallbackExhausted);
  ASSERT_FALSE(out.status.trail.empty());
  EXPECT_NE(out.status.trail[0].find("deadline"), std::string::npos);
}

TEST(FallbackChain, LateStepNotRunAfterEarlyWin) {
  int later_runs = 0;
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact, [] { return ok_result(1); })
      .add("b", Soundness::kHeuristic, [&] {
        ++later_runs;
        return ok_result(2);
      });
  chain.run();
  EXPECT_EQ(later_runs, 0);
}

TEST(FallbackChain, CleanWinAfterPriorTrailEventsIsStillDegraded) {
  // A clean second-step answer is a degradation of the *request* even
  // though the step itself succeeded.
  FallbackChain<int> chain;
  chain.add("a", Soundness::kExact,
            [] { return failed(StatusCode::kNumericalFailure, "nan"); })
      .add("b", Soundness::kHeuristic, [] { return ok_result(9); });
  const ChainOutcome<int> out = chain.run();
  EXPECT_EQ(out.status.code, StatusCode::kDegraded);
  EXPECT_EQ(out.value, 9);
}

}  // namespace
}  // namespace rcr::robust
