#include "rcr/robust/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::robust::faults {
namespace {

TEST(FaultConfig, DisabledByDefault) {
  disable();
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(should_inject("admm.iterate.nan"));
  EXPECT_EQ(total_injections(), 0u);
}

TEST(FaultConfig, SpecParsingAcceptsCanonicalForms) {
  EXPECT_TRUE(configure_spec("42"));  // Bare seed.
  EXPECT_TRUE(enabled());
  EXPECT_EQ(config().seed, 42u);

  EXPECT_TRUE(configure_spec("seed=7,rate=0.25,sites=admm.*,max=3"));
  const FaultConfig c = config();
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.rate, 0.25);
  EXPECT_EQ(c.sites, "admm.*");
  EXPECT_EQ(c.max_per_site, 3u);
  disable();
}

TEST(FaultConfig, SpecParsingRejectsMalformedInput) {
  EXPECT_FALSE(configure_spec(""));
  EXPECT_FALSE(configure_spec("rate=0.5"));        // No seed.
  EXPECT_FALSE(configure_spec("seed=abc"));
  EXPECT_FALSE(configure_spec("seed=1,rate=2.0"));  // Rate out of range.
  EXPECT_FALSE(configure_spec("seed=1,bogus=3"));
  EXPECT_FALSE(configure_spec("seed=1,sites="));
  disable();
}

TEST(FaultConfig, ReplaySpecRoundTrips) {
  ASSERT_TRUE(configure_spec("seed=99,rate=0.5,sites=sdp.*,max=2"));
  const std::string spec = replay_spec();
  const FaultConfig before = config();
  disable();
  ASSERT_TRUE(configure_spec(spec));
  const FaultConfig after = config();
  EXPECT_EQ(after.seed, before.seed);
  EXPECT_DOUBLE_EQ(after.rate, before.rate);
  EXPECT_EQ(after.sites, before.sites);
  EXPECT_EQ(after.max_per_site, before.max_per_site);
  disable();
}

TEST(FaultInjection, RateOneFiresEveryHitRateZeroNever) {
  {
    ScopedFaults faults("seed=1,rate=1");
    EXPECT_TRUE(should_inject("admm.iterate.nan"));
    EXPECT_TRUE(should_inject("admm.iterate.nan"));
  }
  {
    ScopedFaults faults("seed=1,rate=0");
    EXPECT_FALSE(should_inject("admm.iterate.nan"));
  }
}

TEST(FaultInjection, UnregisteredSiteNeverFires) {
  ScopedFaults faults("seed=1,rate=1");
  EXPECT_FALSE(should_inject("not.a.site"));
  EXPECT_FALSE(should_inject("not.a.site", 0));
}

TEST(FaultInjection, SiteFilterSelectsOnlyMatchingSites) {
  ScopedFaults faults("seed=1,rate=1,sites=admm.*");
  EXPECT_TRUE(should_inject("admm.iterate.nan"));
  EXPECT_FALSE(should_inject("sdp.iterate.nan"));

  ScopedFaults exact("seed=1,rate=1,sites=pso.deadline");
  EXPECT_TRUE(should_inject("pso.deadline"));
  EXPECT_FALSE(should_inject("pso.objective.nan"));
}

TEST(FaultInjection, MaxPerSiteCapsInjections) {
  ScopedFaults faults("seed=1,rate=1,max=2");
  EXPECT_TRUE(should_inject("tr.step.nan"));
  EXPECT_TRUE(should_inject("tr.step.nan"));
  EXPECT_FALSE(should_inject("tr.step.nan"));
  EXPECT_EQ(injection_count("tr.step.nan"), 2u);
}

TEST(FaultInjection, KeyedDecisionsAreDeterministic) {
  std::vector<bool> first;
  {
    ScopedFaults faults("seed=33,rate=0.5");
    for (std::uint64_t k = 0; k < 64; ++k)
      first.push_back(should_inject("pso.objective.nan", k));
  }
  {
    ScopedFaults faults("seed=33,rate=0.5");
    for (std::uint64_t k = 0; k < 64; ++k)
      EXPECT_EQ(should_inject("pso.objective.nan", k), first[k]) << k;
  }
  // A fractional rate neither fires always nor never.
  bool any = false, all = true;
  for (const bool b : first) {
    any = any || b;
    all = all && b;
  }
  EXPECT_TRUE(any);
  EXPECT_FALSE(all);
}

TEST(FaultInjection, DifferentSeedsGiveDifferentStreams) {
  std::vector<bool> a, b;
  {
    ScopedFaults faults("seed=1,rate=0.5");
    for (std::uint64_t k = 0; k < 128; ++k)
      a.push_back(should_inject("qcqp.newton.nan", k));
  }
  {
    ScopedFaults faults("seed=2,rate=0.5");
    for (std::uint64_t k = 0; k < 128; ++k)
      b.push_back(should_inject("qcqp.newton.nan", k));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjection, CorruptReturnsNanExactlyWhenFiring) {
  ScopedFaults faults("seed=1,rate=1,max=1");
  const double poisoned = corrupt("lbfgs.gradient.nan", 3.5);
  EXPECT_TRUE(std::isnan(poisoned));
  // max=1: second hit passes the value through untouched.
  EXPECT_DOUBLE_EQ(corrupt("lbfgs.gradient.nan", 3.5), 3.5);
}

TEST(FaultInjection, CountersTrackInjectionsAndReset) {
  ScopedFaults faults("seed=1,rate=1");
  should_inject("sdp.kkt.singular");
  should_inject("sdp.kkt.singular");
  should_inject("admm.deadline");
  EXPECT_EQ(injection_count("sdp.kkt.singular"), 2u);
  EXPECT_EQ(injection_count("admm.deadline"), 1u);
  EXPECT_EQ(total_injections(), 3u);
  reset_counters();
  EXPECT_EQ(injection_count("sdp.kkt.singular"), 0u);
  EXPECT_EQ(total_injections(), 0u);
}

TEST(FaultInjection, RegistryHasStableWellFormedNames) {
  const auto& sites = registered_sites();
  EXPECT_GE(sites.size(), 15u);
  for (const std::string& s : sites) {
    EXPECT_NE(s.find('.'), std::string::npos) << s;
    EXPECT_EQ(s.find(' '), std::string::npos) << s;
  }
  // Spot-check the sites the chaos suite depends on.
  for (const char* expected :
       {"numerics.lu.singular", "admm.iterate.nan", "sdp.kkt.singular",
        "qcqp.newton.nan", "lbfgs.gradient.nan", "tr.step.nan",
        "pso.objective.nan", "verify.crown.nan", "qos.exact.stall",
        "rrm.deadline", "stack.deadline"}) {
    bool found = false;
    for (const std::string& s : sites) found = found || s == expected;
    EXPECT_TRUE(found) << expected;
  }
}

TEST(FaultInjection, ScopedFaultsRestoresPreviousPolicy) {
  ASSERT_TRUE(configure_spec("seed=5,rate=0.5"));
  {
    ScopedFaults inner("seed=6");
    EXPECT_EQ(config().seed, 6u);
  }
  EXPECT_TRUE(enabled());
  EXPECT_EQ(config().seed, 5u);
  disable();
  {
    ScopedFaults inner("seed=7");
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace rcr::robust::faults
