// Satellite: the non-convergence paths of the opt solvers, asserted through
// the status taxonomy instead of exceptions.
#include <gtest/gtest.h>

#include <cmath>

#include "rcr/opt/admm.hpp"
#include "rcr/opt/lbfgs.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/opt/trust_region.hpp"

namespace rcr::opt {
namespace {

TEST(QcqpNonConvergence, InfeasibleProblemReportsPhaseOneFailure) {
  // x <= -1 and x >= 1 simultaneously: no strictly feasible point exists.
  Qcqp p;
  p.objective.p = Matrix::identity(1);
  p.objective.q = {0.0};
  QuadraticForm upper;  // x - (-1) <= 0  <=>  x <= -1.
  upper.p = Matrix(1, 1);
  upper.q = {1.0};
  upper.r = 1.0;
  QuadraticForm lower;  // 1 - x <= 0  <=>  x >= 1.
  lower.p = Matrix(1, 1);
  lower.q = {-1.0};
  lower.r = 1.0;
  p.constraints = {upper, lower};

  const QcqpResult r = solve_qcqp_barrier(p);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kInfeasible);
  EXPECT_FALSE(r.status.usable());
  EXPECT_NE(r.message.find("no strictly feasible point found"),
            std::string::npos)
      << r.message;
}

TEST(QcqpNonConvergence, NonStrictlyFeasibleStartIsInfeasibleStatus) {
  // Start exactly on the constraint boundary: rejected, not thrown.
  Qcqp p;
  p.objective.p = Matrix::identity(1);
  p.objective.q = {0.0};
  QuadraticForm ball;  // x^2 - 1 <= 0.
  ball.p = 2.0 * Matrix::identity(1);
  ball.q = {0.0};
  ball.r = -1.0;
  p.constraints = {ball};

  const QcqpResult r = solve_qcqp_barrier(p, Vec{1.0});
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kInfeasible);
}

TEST(AdmmNonConvergence, IterationExhaustionIsNonConvergedStatus) {
  num::Rng rng(3);
  const Matrix p = random_psd(4, 4, rng) + Matrix::identity(4);
  const Vec q = rng.normal_vec(4);
  AdmmOptions options;
  options.max_iterations = 2;     // Far too few.
  options.tolerance = 1e-14;
  const AdmmResult r = admm_box_qp(p, q, Vec(4, -1.0), Vec(4, 1.0), options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kNonConverged);
  EXPECT_TRUE(r.status.usable());
  EXPECT_EQ(r.iterations, 2u);
  // The returned iterate is still feasible by construction.
  for (const double v : r.x) {
    EXPECT_GE(v, -1.0 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(SdpNonConvergence, IterationExhaustionIsNonConvergedStatus) {
  Sdp p;
  p.c = Matrix::diag({1.0, 2.0, 3.0});
  p.a_eq.push_back(Matrix::identity(3));
  p.b_eq.push_back(1.0);
  SdpOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-14;
  const SdpResult r = solve_sdp(p, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kNonConverged);
  EXPECT_TRUE(r.status.usable());
}

TEST(TrustRegionNonConvergence, RadiusCollapseIsReported) {
  // Adversarial objective: the gradient promises descent but every actual
  // step increases f, so the radius shrinks until it collapses.
  Smooth f;
  f.value = [](const Vec& x) {
    return (x[0] == 0.0 && x[1] == 0.0) ? 0.0 : 1.0;
  };
  f.gradient = [](const Vec&) { return Vec{1.0, 1.0}; };

  const MinimizeResult r = trust_region_bfgs(f, Vec{0.0, 0.0});
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kNonConverged);
  EXPECT_NE(r.status.detail.find("radius collapsed"), std::string::npos)
      << r.status.detail;
  // The start point (the only clean iterate) is returned.
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
}

TEST(LbfgsNonConvergence, IterationExhaustionIsNonConvergedStatus) {
  // Rosenbrock from a distant start with a tiny budget.
  Smooth f;
  f.value = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  f.gradient = [](const Vec& x) {
    const double b = x[1] - x[0] * x[0];
    return Vec{-2.0 * (1.0 - x[0]) - 400.0 * x[0] * b, 200.0 * b};
  };
  MinimizeOptions options;
  options.max_iterations = 2;
  const MinimizeResult r = lbfgs(f, Vec{-5.0, 7.0}, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status.code, robust::StatusCode::kNonConverged);
  EXPECT_TRUE(r.status.usable());
  EXPECT_TRUE(std::isfinite(r.value));
}

TEST(ShorBound, ReportsInnerSdpIterationsAndStatus) {
  num::Rng rng(5);
  const Qcqp prob = random_convex_qcqp(3, 2, 0, rng);
  const ShorBound sb = shor_lower_bound(prob);
  EXPECT_GT(sb.iterations, 0u);  // Satellite: ShorBound now carries both.
  if (sb.converged) {
    EXPECT_TRUE(sb.status.ok());
  } else {
    EXPECT_FALSE(sb.status.ok());
  }
}

}  // namespace
}  // namespace rcr::opt
