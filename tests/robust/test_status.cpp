#include "rcr/robust/status.hpp"

#include <gtest/gtest.h>

namespace rcr::robust {
namespace {

TEST(Status, DefaultIsOkUsableNotDegraded) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.usable());
  EXPECT_FALSE(s.degraded());
  EXPECT_TRUE(s.trail.empty());
}

TEST(Status, CodeToStringCoversEveryCode) {
  EXPECT_EQ(to_string(StatusCode::kOk), "ok");
  EXPECT_FALSE(to_string(StatusCode::kDegraded).empty());
  EXPECT_FALSE(to_string(StatusCode::kNonConverged).empty());
  EXPECT_FALSE(to_string(StatusCode::kInfeasible).empty());
  EXPECT_FALSE(to_string(StatusCode::kSingular).empty());
  EXPECT_FALSE(to_string(StatusCode::kNumericalFailure).empty());
  EXPECT_FALSE(to_string(StatusCode::kDeadlineExpired).empty());
  EXPECT_FALSE(to_string(StatusCode::kFallbackExhausted).empty());
}

TEST(Status, UsabilityTaxonomy) {
  // Everything except infeasibility and chain exhaustion still carries a
  // valid (possibly degraded) answer.
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kDegraded, StatusCode::kNonConverged,
        StatusCode::kSingular, StatusCode::kNumericalFailure,
        StatusCode::kDeadlineExpired}) {
    EXPECT_TRUE(make_status(code, "x").usable()) << to_string(code);
  }
  EXPECT_FALSE(make_status(StatusCode::kInfeasible, "x").usable());
  EXPECT_FALSE(make_status(StatusCode::kFallbackExhausted, "x").usable());
}

TEST(Status, NoteAppendsInOrder) {
  Status s;
  s.note("first");
  s.note("second");
  ASSERT_EQ(s.trail.size(), 2u);
  EXPECT_EQ(s.trail[0], "first");
  EXPECT_EQ(s.trail[1], "second");
  EXPECT_TRUE(s.degraded());  // A trail alone marks the answer degraded.
  EXPECT_TRUE(s.ok());        // ...but does not change the terminal code.
}

TEST(Status, AbsorbTrailPrefixesAndAppendsTerminalEvent) {
  Status inner = make_status(StatusCode::kNonConverged, "ran out");
  inner.note("rung 1");

  Status outer;
  outer.absorb_trail("inner", inner);
  ASSERT_GE(outer.trail.size(), 2u);
  EXPECT_NE(outer.trail[0].find("inner"), std::string::npos);
  EXPECT_NE(outer.trail[0].find("rung 1"), std::string::npos);
  // The inner terminal disposition is also recorded.
  bool terminal_seen = false;
  for (const std::string& e : outer.trail)
    if (e.find("ran out") != std::string::npos) terminal_seen = true;
  EXPECT_TRUE(terminal_seen);
}

TEST(Status, AbsorbTrailOfOkStatusIsNoop) {
  Status outer;
  outer.absorb_trail("inner", ok_status());
  EXPECT_TRUE(outer.trail.empty());
  EXPECT_TRUE(outer.ok());
}

TEST(Status, ToStringMentionsCodeDetailAndTrail) {
  Status s = make_status(StatusCode::kDegraded, "ridge fired");
  s.note("retry 1");
  const std::string text = s.to_string();
  EXPECT_NE(text.find("ridge fired"), std::string::npos);
  EXPECT_NE(text.find("retry 1"), std::string::npos);
}

TEST(Result, BoolConversionTracksUsability) {
  Result<int> good{42, ok_status()};
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_TRUE(good.ok());

  Result<int> degraded{7, make_status(StatusCode::kNonConverged, "x")};
  EXPECT_TRUE(static_cast<bool>(degraded));
  EXPECT_FALSE(degraded.ok());

  Result<int> dead{0, make_status(StatusCode::kInfeasible, "x")};
  EXPECT_FALSE(static_cast<bool>(dead));
}

}  // namespace
}  // namespace rcr::robust
