// Allocation-regression tests: the hot paths must perform zero steady-state
// heap allocations once their workspaces are warm (measured with the
// counting global operator new from rcr_allocprobe).
//
// Exact-zero assertions run under ForceSerialGuard: the parallel runtime
// itself allocates per dispatch (task closures and completion state), which
// is runtime overhead, not kernel workspace churn.  Iterative solvers are
// instead checked for iteration-count independence: doubling the iterations
// must not change the allocation count.
#include <gtest/gtest.h>

#include <cstddef>

#include "rcr/nn/conv.hpp"
#include "rcr/numerics/decompositions.hpp"
#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/rt/alloc_probe.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/relu_network.hpp"

namespace rt = rcr::rt;
namespace num = rcr::num;
using rcr::Vec;
using rcr::num::Matrix;

namespace {

Matrix random_matrix(std::size_t r, std::size_t c, num::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

}  // namespace

TEST(AllocRegression, ProbeIsInstalled) {
  ASSERT_TRUE(rt::alloc_probe_active());
  const rt::AllocDelta delta;
  // Call the allocation function directly: a new-expression here could be
  // legally elided by the optimizer, a direct call cannot.
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_GE(delta.delta(), 1u);
}

TEST(AllocRegression, MatmulIntoIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(5);
  const Matrix a = random_matrix(48, 32, rng);
  const Matrix b = random_matrix(32, 40, rng);
  Matrix c, g, o, t;
  Vec x = rng.normal_vec(32);
  Vec y;
  num::multiply_into(a, b, c);
  num::multiply_at_b_into(a, a, g);
  num::multiply_abt_into(a, a, o);
  num::transpose_into(a, t);
  num::matvec_into(a, x, y);

  const rt::AllocDelta delta;
  for (int r = 0; r < 20; ++r) {
    num::multiply_into(a, b, c);
    num::multiply_at_b_into(a, a, g);
    num::multiply_abt_into(a, a, o);
    num::transpose_into(a, t);
    num::matvec_into(a, x, y);
  }
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, LuSolveIntoIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(9);
  Matrix a = random_matrix(24, 24, rng);
  for (std::size_t i = 0; i < 24; ++i) a(i, i) += 24.0;
  const Vec b = rng.normal_vec(24);
  num::LuDecomposition lu;
  Vec x;
  num::lu_decompose_into(a, lu);
  lu.solve_into(b, x);

  const rt::AllocDelta delta;
  for (int r = 0; r < 20; ++r) {
    num::lu_decompose_into(a, lu);
    lu.solve_into(b, x);
  }
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, StftIntoFrameLoopIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(17);
  const Vec signal = rng.normal_vec(64 * 40);
  rcr::sig::StftConfig config;
  config.window = rcr::sig::make_window(rcr::sig::WindowKind::kHann, 64);
  config.hop = 16;
  config.fft_size = 64;
  rcr::sig::TfGrid grid;
  rcr::sig::stft_into(signal, config, grid);  // warm: FFT tables + buffers

  const rt::AllocDelta delta;
  for (int r = 0; r < 10; ++r) rcr::sig::stft_into(signal, config, grid);
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, Conv2dForwardIntoIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(23);
  num::Rng init(1);
  rcr::nn::Conv2d conv(3, 8, 3, 1, 1, init);
  rcr::nn::Tensor input({2, 3, 16, 16});
  for (auto& v : input.data()) v = rng.normal();
  rcr::nn::Tensor out;
  conv.forward_into(input, out);  // warm: output, input cache, arena scratch

  const rt::AllocDelta delta;
  for (int r = 0; r < 10; ++r) conv.forward_into(input, out);
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, AdmmBoxQpAllocsIndependentOfIterationCount) {
  rt::ForceSerialGuard serial;
  num::Rng rng(31);
  const std::size_t n = 24;
  Matrix p = random_matrix(n, n, rng);
  p = num::multiply_at_b(p, p);
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0);
  const Vec hi(n, 1.0);
  rcr::opt::AdmmOptions opts;
  // Negative tolerance: the convergence test can never pass (residuals are
  // >= 0), so the solver runs exactly max_iterations.
  opts.tolerance = -1.0;
  const rcr::opt::BoxQpFactor factor = rcr::opt::prefactor_box_qp(p, opts.rho);

  auto allocs_for = [&](std::size_t iterations) {
    opts.max_iterations = iterations;
    rcr::opt::admm_box_qp(p, factor, q, lo, hi, opts);  // warm
    const rt::AllocDelta delta;
    const rcr::opt::AdmmResult res =
        rcr::opt::admm_box_qp(p, factor, q, lo, hi, opts);
    EXPECT_EQ(res.iterations, iterations);
    return delta.delta();
  };

  const std::uint64_t short_run = allocs_for(10);
  const std::uint64_t long_run = allocs_for(200);
  EXPECT_EQ(short_run, long_run);
}

TEST(AllocRegression, AdmmLassoAllocsIndependentOfIterationCount) {
  rt::ForceSerialGuard serial;
  num::Rng rng(37);
  const Matrix a = random_matrix(32, 20, rng);
  const Vec b = rng.normal_vec(32);
  rcr::opt::AdmmOptions opts;
  opts.tolerance = -1.0;
  const rcr::opt::LassoFactor factor = rcr::opt::prefactor_lasso(a, opts.rho);

  auto allocs_for = [&](std::size_t iterations) {
    opts.max_iterations = iterations;
    rcr::opt::admm_lasso(a, factor, b, 0.1, opts);  // warm
    const rt::AllocDelta delta;
    rcr::opt::admm_lasso(a, factor, b, 0.1, opts);
    return delta.delta();
  };

  EXPECT_EQ(allocs_for(10), allocs_for(200));
}

TEST(AllocRegression, EigenSymIntoIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(41);
  Matrix a = random_matrix(16, 16, rng);
  a.symmetrize();
  num::EigenWorkspace ws;
  num::EigenDecomposition e;
  num::eigen_sym_into(a, ws, e);

  const rt::AllocDelta delta;
  for (int r = 0; r < 10; ++r) num::eigen_sym_into(a, ws, e);
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, ProjectPsdIntoIsAllocationFreeWarm) {
  rt::ForceSerialGuard serial;
  num::Rng rng(43);
  Matrix a = random_matrix(12, 12, rng);
  a.symmetrize();
  num::PsdProjectWorkspace cold_ws, warm_ws;
  num::PsdProjectOptions warm;
  warm.warm_start = true;
  Matrix out;
  num::project_psd_into(a, cold_ws, out);
  num::project_psd_into(a, warm_ws, out, warm);

  const rt::AllocDelta delta;
  for (int r = 0; r < 10; ++r) {
    num::project_psd_into(a, cold_ws, out);
    num::project_psd_into(a, warm_ws, out, warm);
  }
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(AllocRegression, SdpSolveAllocsIndependentOfIterationCount) {
  rt::ForceSerialGuard serial;
  num::Rng rng(47);
  const std::size_t n = 6;
  rcr::opt::Sdp problem;
  Matrix c = random_matrix(n, n, rng);
  problem.c = num::multiply_at_b(c, c);
  problem.a_eq.push_back(Matrix::identity(n));
  problem.b_eq.push_back(1.0);
  rcr::opt::SdpOptions opts;
  opts.tolerance = -1.0;  // never converges: runs exactly max_iterations
  rcr::opt::SdpWorkspace ws;

  auto allocs_for = [&](std::size_t iterations) {
    opts.max_iterations = iterations;
    rcr::opt::solve_sdp(problem, opts, ws);  // warm
    const rt::AllocDelta delta;
    const rcr::opt::SdpResult res = rcr::opt::solve_sdp(problem, opts, ws);
    EXPECT_EQ(res.iterations, iterations);
    return delta.delta();
  };

  const std::uint64_t short_run = allocs_for(10);
  const std::uint64_t long_run = allocs_for(200);
  EXPECT_EQ(short_run, long_run);

  // The fast configuration must hold the same line.
  opts.exploit_structure = true;
  opts.warm_start_projection = true;
  opts.projection_rotation_threshold = 1e-9;
  EXPECT_EQ(allocs_for(10), allocs_for(200));
}

TEST(AllocRegression, CrownBoundsWarmCallsAllocateEqually) {
  // Full zero-alloc is not the contract here (the per-layer result boxes
  // are freshly returned each call); the regression guard is that warm
  // calls allocate a stable, input-independent amount -- workspace growth
  // has stopped.
  rt::ForceSerialGuard serial;
  rcr::verify::ReluNetwork net;
  num::Rng rng(7);
  const std::vector<std::size_t> dims = {8, 24, 24, 4};
  for (std::size_t k = 0; k + 1 < dims.size(); ++k) {
    rcr::verify::AffineLayer layer;
    layer.w = Matrix(dims[k + 1], dims[k]);
    layer.b = Vec(dims[k + 1], 0.0);
    for (std::size_t i = 0; i < dims[k + 1]; ++i)
      for (std::size_t j = 0; j < dims[k]; ++j)
        layer.w(i, j) = rng.normal() / 4.0;
    net.layers.push_back(std::move(layer));
  }
  const rcr::verify::Box input = rcr::verify::Box::around(Vec(8, 0.1), 0.05);

  rcr::verify::crown_bounds(net, input);  // warm
  const rt::AllocDelta d1;
  rcr::verify::crown_bounds(net, input);
  const std::uint64_t first = d1.delta();
  const rt::AllocDelta d2;
  rcr::verify::crown_bounds(net, input);
  EXPECT_EQ(first, d2.delta());
}
