// Bit-exact equivalence of the parallel kernels against the forced-serial
// reference path, across pool sizes 1, 2, and 8 (the RCR_THREADS values the
// acceptance criteria name).  Every comparison is EXPECT_EQ on raw doubles:
// the deterministic static chunking must make the thread count invisible.
#include <gtest/gtest.h>

#include <vector>

#include "rcr/nn/conv.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/pso/objective.hpp"
#include "rcr/pso/swarm.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/thread_pool.hpp"
#include "rcr/signal/stft.hpp"
#include "rcr/signal/window.hpp"
#include "rcr/verify/bounds.hpp"
#include "rcr/verify/relu_network.hpp"

namespace {

using rcr::Vec;
using rcr::num::Matrix;
using rcr::num::Rng;

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

TEST(ParallelEquivalence, MatrixMultiply) {
  Rng rng(7);
  const Matrix a = random_matrix(93, 71, rng);
  const Matrix b = random_matrix(71, 58, rng);

  Matrix serial;
  {
    rcr::rt::ForceSerialGuard guard;
    serial = a * b;
  }
  for (const std::size_t t : kThreadCounts) {
    rcr::rt::set_global_threads(t);
    const Matrix parallel = a * b;
    ASSERT_EQ(parallel.data().size(), serial.data().size());
    for (std::size_t i = 0; i < serial.data().size(); ++i)
      EXPECT_EQ(parallel.data()[i], serial.data()[i]) << "threads=" << t;
  }
}

TEST(ParallelEquivalence, TransposedMultiplyHelpers) {
  Rng rng(11);
  const Matrix a = random_matrix(64, 37, rng);
  const Matrix b = random_matrix(64, 41, rng);

  rcr::rt::set_global_threads(8);
  const Matrix atb = rcr::num::multiply_at_b(a, b);
  const Matrix atb_ref = a.transpose() * b;
  for (std::size_t i = 0; i < atb_ref.data().size(); ++i)
    EXPECT_EQ(atb.data()[i], atb_ref.data()[i]);

  const Matrix c = random_matrix(29, 37, rng);
  const Matrix abt = rcr::num::multiply_abt(a, c);
  const Matrix abt_ref = a * c.transpose();
  ASSERT_EQ(abt.rows(), abt_ref.rows());
  ASSERT_EQ(abt.cols(), abt_ref.cols());
  // Row-dot accumulation matches the k-ascending order of operator*.
  for (std::size_t i = 0; i < abt_ref.data().size(); ++i)
    EXPECT_EQ(abt.data()[i], abt_ref.data()[i]);
}

TEST(ParallelEquivalence, SparseMultiplyMatchesDense) {
  Rng rng(13);
  Matrix a = random_matrix(40, 40, rng);
  // Zero out most entries so the sparse path actually skips work.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (rng.uniform() < 0.8) a(i, j) = 0.0;
  const Matrix b = random_matrix(40, 33, rng);

  rcr::rt::set_global_threads(8);
  const Matrix dense = a * b;
  const Matrix sparse = rcr::num::multiply_sparse(a, b);
  for (std::size_t i = 0; i < dense.data().size(); ++i)
    EXPECT_EQ(sparse.data()[i], dense.data()[i]);
}

TEST(ParallelEquivalence, ConvForwardBackward) {
  Rng rng(3);
  rcr::nn::Conv2d layer(3, 8, 3, 1, 1, rng);
  rcr::nn::Tensor input({4, 3, 12, 12});
  for (auto& v : input.data()) v = rng.normal();
  rcr::nn::Tensor upstream({4, 8, 12, 12});
  for (auto& v : upstream.data()) v = rng.normal();

  rcr::nn::Tensor fwd_serial;
  rcr::nn::Tensor bwd_serial;
  Vec wgrad_serial;
  Vec bgrad_serial;
  {
    rcr::rt::ForceSerialGuard guard;
    fwd_serial = layer.forward(input, true);
    bwd_serial = layer.backward(upstream);
    wgrad_serial = *layer.params()[0].grad;
    bgrad_serial = *layer.params()[1].grad;
  }

  for (const std::size_t t : kThreadCounts) {
    rcr::rt::set_global_threads(t);
    rcr::num::Rng rng2(3);
    rcr::nn::Conv2d fresh(3, 8, 3, 1, 1, rng2);  // same He init draws
    const rcr::nn::Tensor fwd = fresh.forward(input, true);
    const rcr::nn::Tensor bwd = fresh.backward(upstream);
    for (std::size_t i = 0; i < fwd_serial.size(); ++i)
      EXPECT_EQ(fwd[i], fwd_serial[i]) << "threads=" << t;
    for (std::size_t i = 0; i < bwd_serial.size(); ++i)
      EXPECT_EQ(bwd[i], bwd_serial[i]) << "threads=" << t;
    const Vec& wgrad = *fresh.params()[0].grad;
    const Vec& bgrad = *fresh.params()[1].grad;
    for (std::size_t i = 0; i < wgrad_serial.size(); ++i)
      EXPECT_EQ(wgrad[i], wgrad_serial[i]) << "threads=" << t;
    for (std::size_t i = 0; i < bgrad_serial.size(); ++i)
      EXPECT_EQ(bgrad[i], bgrad_serial[i]) << "threads=" << t;
  }
}

TEST(ParallelEquivalence, Stft) {
  Rng rng(21);
  const Vec signal = rng.normal_vec(2048);
  rcr::sig::StftConfig config;
  config.window = rcr::sig::make_window(rcr::sig::WindowKind::kHann, 128);
  config.hop = 32;
  config.fft_size = 128;

  rcr::sig::TfGrid serial;
  {
    rcr::rt::ForceSerialGuard guard;
    serial = rcr::sig::stft(signal, config);
  }
  for (const std::size_t t : kThreadCounts) {
    rcr::rt::set_global_threads(t);
    const rcr::sig::TfGrid parallel = rcr::sig::stft(signal, config);
    ASSERT_EQ(parallel.data().size(), serial.data().size());
    EXPECT_EQ(rcr::sig::TfGrid::max_abs_diff(parallel, serial), 0.0)
        << "threads=" << t;
  }
}

rcr::verify::ReluNetwork random_network(Rng& rng) {
  rcr::verify::ReluNetwork net;
  const std::vector<std::size_t> dims = {6, 48, 48, 5};
  for (std::size_t k = 0; k + 1 < dims.size(); ++k) {
    rcr::verify::AffineLayer layer;
    layer.w = Matrix(dims[k + 1], dims[k]);
    layer.b = Vec(dims[k + 1], 0.0);
    for (std::size_t i = 0; i < dims[k + 1]; ++i) {
      layer.b[i] = 0.1 * rng.normal();
      for (std::size_t j = 0; j < dims[k]; ++j)
        layer.w(i, j) = rng.normal() / 4.0;
    }
    net.layers.push_back(std::move(layer));
  }
  return net;
}

TEST(ParallelEquivalence, VerifierBounds) {
  Rng rng(5);
  const rcr::verify::ReluNetwork net = random_network(rng);
  const rcr::verify::Box input = rcr::verify::Box::around(Vec(6, 0.25), 0.1);

  rcr::verify::LayerBounds ibp_serial;
  rcr::verify::LayerBounds crown_serial;
  {
    rcr::rt::ForceSerialGuard guard;
    ibp_serial = rcr::verify::ibp_bounds(net, input);
    crown_serial = rcr::verify::crown_bounds(net, input);
  }
  for (const std::size_t t : kThreadCounts) {
    rcr::rt::set_global_threads(t);
    const rcr::verify::LayerBounds ibp = rcr::verify::ibp_bounds(net, input);
    const rcr::verify::LayerBounds crown =
        rcr::verify::crown_bounds(net, input);
    for (std::size_t k = 0; k < net.layers.size(); ++k) {
      for (std::size_t i = 0; i < ibp.pre_activation[k].dim(); ++i) {
        EXPECT_EQ(ibp.pre_activation[k].lower[i],
                  ibp_serial.pre_activation[k].lower[i]);
        EXPECT_EQ(ibp.pre_activation[k].upper[i],
                  ibp_serial.pre_activation[k].upper[i]);
        EXPECT_EQ(crown.pre_activation[k].lower[i],
                  crown_serial.pre_activation[k].lower[i]);
        EXPECT_EQ(crown.pre_activation[k].upper[i],
                  crown_serial.pre_activation[k].upper[i]);
      }
    }
  }
}

TEST(ParallelEquivalence, PsoDeterministicAcrossThreadCounts) {
  rcr::pso::PsoConfig config;
  config.swarm_size = 24;
  config.max_iterations = 60;
  config.seed = 9;

  rcr::pso::PsoResult reference;
  {
    rcr::rt::ForceSerialGuard guard;
    reference = rcr::pso::minimize(rcr::pso::rastrigin(4), config);
  }
  for (const std::size_t t : kThreadCounts) {
    rcr::rt::set_global_threads(t);
    const rcr::pso::PsoResult r =
        rcr::pso::minimize(rcr::pso::rastrigin(4), config);
    EXPECT_EQ(r.best_value, reference.best_value) << "threads=" << t;
    EXPECT_EQ(r.best_position, reference.best_position) << "threads=" << t;
    EXPECT_EQ(r.evaluations, reference.evaluations) << "threads=" << t;
    EXPECT_EQ(r.best_value_history, reference.best_value_history)
        << "threads=" << t;
  }
}

}  // namespace
