#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "rcr/rt/parallel.hpp"
#include "rcr/rt/thread_pool.hpp"

namespace rcr::rt {
namespace {

TEST(ThreadPool, StartStopAndSize) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  // Destructor joins cleanly with no submitted work (end of scope).
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolRejectsSubmit) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, WorkerThreadFlagVisibleInsideTasks) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<bool> seen{false};
  {
    ThreadPool pool(1);
    pool.submit([&seen] { seen = ThreadPool::on_worker_thread(); });
  }
  EXPECT_TRUE(seen.load());
}

TEST(DefaultThreadCount, RespectsEnvOverride) {
  ::setenv("RCR_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::setenv("RCR_THREADS", "not-a-number", 1);
  EXPECT_GE(default_thread_count(), 1u);
  ::unsetenv("RCR_THREADS");
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_global_threads(threads);
    std::vector<int> hits(1000, 0);
    parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  int calls = 0;
  parallel_for(5, 5, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 64, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 3u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  set_global_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::size_t b, std::size_t) {
                     if (b == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives the exception and keeps doing useful work.
  std::atomic<int> count{0};
  parallel_for(0, 64, 1,
               [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedCallsRunInline) {
  set_global_threads(4);
  std::atomic<int> inner_total{0};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    // Nested region: must complete inline on the worker without deadlock.
    parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  // Chunked float summation: partials depend only on the grain, so the
  // result is bit-identical for 1, 2, and 8 threads.
  std::vector<double> data(10007);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1e-3 * static_cast<double>(i % 97) + 1e-9 * static_cast<double>(i);

  auto chunk_sum = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += data[i];
    return acc;
  };
  auto combine = [](double a, double b) { return a + b; };

  set_global_threads(1);
  const double r1 =
      parallel_reduce(0, data.size(), 64, 0.0, chunk_sum, combine);
  set_global_threads(2);
  const double r2 =
      parallel_reduce(0, data.size(), 64, 0.0, chunk_sum, combine);
  set_global_threads(8);
  const double r8 =
      parallel_reduce(0, data.size(), 64, 0.0, chunk_sum, combine);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);

  // Forced-serial path uses the same chunk decomposition.
  ForceSerialGuard serial;
  const double rs =
      parallel_reduce(0, data.size(), 64, 0.0, chunk_sum, combine);
  EXPECT_EQ(r1, rs);
}

TEST(ForceSerialGuard, SuppressesParallelDispatchOnThisThread) {
  set_global_threads(8);
  EXPECT_FALSE(force_serial_active());
  {
    ForceSerialGuard guard;
    EXPECT_TRUE(force_serial_active());
    parallel_for(0, 1000, 1, [&](std::size_t, std::size_t) {
      EXPECT_FALSE(ThreadPool::on_worker_thread());
    });
  }
  EXPECT_FALSE(force_serial_active());
}

TEST(GlobalPool, SetThreadsResizes) {
  set_global_threads(2);
  EXPECT_EQ(global_threads(), 2u);
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1u);
  set_global_threads(8);
  EXPECT_EQ(global_threads(), 8u);
}

}  // namespace
}  // namespace rcr::rt
