// ScratchArena unit tests: alignment, scope rewind, nesting, growth,
// high-water consolidation, per-thread isolation, and steady-state
// allocation freedom (via the counting allocator in rcr_allocprobe).
#include "rcr/rt/scratch_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "rcr/rt/alloc_probe.hpp"
#include "rcr/rt/parallel.hpp"

namespace rt = rcr::rt;

namespace {

bool is_aligned(const void* p, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

}  // namespace

TEST(ScratchArena, RespectsAlignment) {
  rt::ScratchArena arena;
  // Interleave odd sizes with strict alignments to force padding.
  for (std::size_t alignment : {1u, 2u, 8u, 16u, 64u, 256u}) {
    void* odd = arena.allocate(3, 1);
    ASSERT_NE(odd, nullptr);
    void* p = arena.allocate(17, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(is_aligned(p, alignment)) << "alignment " << alignment;
  }
}

TEST(ScratchArena, TypedAllocIsUsableStorage) {
  rt::ScratchArena arena;
  double* xs = arena.alloc<double>(128);
  ASSERT_NE(xs, nullptr);
  EXPECT_TRUE(is_aligned(xs, alignof(double)));
  for (int i = 0; i < 128; ++i) xs[i] = static_cast<double>(i);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(xs[i], static_cast<double>(i));
}

TEST(ScratchArena, RejectsNonPowerOfTwoAlignment) {
  rt::ScratchArena arena;
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
}

TEST(ScratchArena, ScopeRewindsToMarker) {
  rt::ScratchArena arena;
  arena.allocate(100, 8);
  const std::size_t before = arena.used();
  void* first;
  {
    const auto scope = arena.scope();
    first = arena.allocate(64, 8);
    EXPECT_GT(arena.used(), before);
  }
  EXPECT_EQ(arena.used(), before);
  // The rewound storage is handed out again.
  const auto scope = arena.scope();
  void* second = arena.allocate(64, 8);
  EXPECT_EQ(first, second);
}

TEST(ScratchArena, NestedScopesUnwindLifo) {
  rt::ScratchArena arena;
  const auto outer = arena.scope();
  arena.allocate(32, 8);
  const std::size_t after_outer = arena.used();
  {
    const auto inner = arena.scope();
    arena.allocate(512, 8);
    const std::size_t after_inner = arena.used();
    EXPECT_GT(after_inner, after_outer);
    {
      const auto innermost = arena.scope();
      arena.allocate(1024, 8);
      EXPECT_GT(arena.used(), after_inner);
    }
    EXPECT_EQ(arena.used(), after_inner);
  }
  EXPECT_EQ(arena.used(), after_outer);
}

TEST(ScratchArena, GrowsGeometricallyAndTracksHighWater) {
  rt::ScratchArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  arena.allocate(100, 8);
  const std::size_t cap1 = arena.capacity();
  EXPECT_GE(cap1, 100u);
  // Exceed the first block: a strictly larger block is appended.
  arena.allocate(cap1 + 1, 8);
  EXPECT_GT(arena.capacity(), cap1);
  EXPECT_GE(arena.high_water(), cap1 + 1);
}

TEST(ScratchArena, ResetConsolidatesMultiBlockChains) {
  rt::ScratchArena arena;
  // Force a multi-block chain.
  for (int i = 0; i < 6; ++i) arena.allocate(1 << 12, 8);
  const std::size_t high = arena.high_water();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.capacity(), high);
  // The consolidated arena satisfies the same workload from one block with
  // no further heap allocations.
  const rt::AllocDelta delta;
  const auto scope = arena.scope();
  for (int i = 0; i < 6; ++i) arena.allocate(1 << 12, 8);
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(ScratchArena, SteadyStatePassesAreAllocationFree) {
  rt::ScratchArena arena;
  auto pass = [&] {
    const auto scope = arena.scope();
    double* a = arena.alloc<double>(300);
    float* b = arena.alloc<float>(700);
    a[0] = 1.0;
    b[0] = 2.0f;
  };
  pass();  // warm-up growth
  const rt::AllocDelta delta;
  for (int i = 0; i < 50; ++i) pass();
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(ScratchArena, TlsArenasArePerThread) {
  rt::ScratchArena* main_arena = &rt::tls_arena();
  std::vector<rt::ScratchArena*> seen(4, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      rt::ScratchArena& arena = rt::tls_arena();
      seen[t] = &arena;
      // Hammer the arena to give TSan something to bite on if isolation
      // were broken.
      for (int i = 0; i < 200; ++i) {
        const auto scope = arena.scope();
        double* xs = arena.alloc<double>(64);
        xs[0] = static_cast<double>(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(seen[t], nullptr);
    EXPECT_NE(seen[t], main_arena);
    for (int s = 0; s < t; ++s) EXPECT_NE(seen[t], seen[s]);
  }
}

TEST(ScratchArena, ReachableFromPoolWorkers) {
  // Each task block bumps whatever thread it lands on; values written
  // through the arena must never tear across tasks.
  std::vector<double> out(1024, 0.0);
  rt::parallel_for(0, out.size(), 1, [&](std::size_t i0, std::size_t i1) {
    rt::ScratchArena& arena = rt::tls_arena();
    const auto scope = arena.scope();
    double* tmp = arena.alloc<double>(i1 - i0);
    for (std::size_t i = i0; i < i1; ++i) tmp[i - i0] = static_cast<double>(i);
    for (std::size_t i = i0; i < i1; ++i) out[i] = tmp[i - i0];
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<double>(i));
}
