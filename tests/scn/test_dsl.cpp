// Fleet DSL semantics: cartesian enumeration order, seed derivation, the
// RCR_SCN_* replay contract, axis validation, and scenario shrinking.
#include "rcr/scn/dsl.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "rcr/testkit/env.hpp"

namespace rcr::scn {
namespace {

// Sets an environment variable for the current scope, restoring the prior
// value (or unset state) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  /// Unset for the scope: shields a fixture from an outer replay env.
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_previous_)
      ::setenv(name_, previous_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

TEST(FleetSpec, DefaultAxesEnumerateFullCartesianProduct) {
  const FleetSpec spec;
  // Defaults: cells {2,4}, users {2,3}, rbs {4,6}, one value elsewhere.
  EXPECT_EQ(spec.cardinality(), 8u);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  ASSERT_EQ(fleet.size(), 8u);
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet[i].index, i);
}

TEST(FleetSpec, LastAxisVariesFastest) {
  const std::vector<ScenarioSpec> fleet =
      FleetSpec().cells({2, 3}).users_per_cell({2}).rbs({4, 6}).enumerate();
  ASSERT_EQ(fleet.size(), 4u);
  // Canonical order (cells, users, rbs, ...): rbs cycles before cells.
  EXPECT_EQ(fleet[0].cells, 2u);
  EXPECT_EQ(fleet[0].rbs, 4u);
  EXPECT_EQ(fleet[1].cells, 2u);
  EXPECT_EQ(fleet[1].rbs, 6u);
  EXPECT_EQ(fleet[2].cells, 3u);
  EXPECT_EQ(fleet[2].rbs, 4u);
  EXPECT_EQ(fleet[3].cells, 3u);
  EXPECT_EQ(fleet[3].rbs, 6u);
}

TEST(FleetSpec, CellsRangeBuilderIsInclusive) {
  const FleetSpec spec = FleetSpec().cells(2, 8).users_per_cell({2}).rbs({4});
  EXPECT_EQ(spec.cardinality(), 7u);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  EXPECT_EQ(fleet.front().cells, 2u);
  EXPECT_EQ(fleet.back().cells, 8u);
}

TEST(FleetSpec, CaseSeedsDeriveFromFleetSeedAndIndex) {
  const FleetSpec spec = FleetSpec().seed(9001);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  for (const ScenarioSpec& s : fleet)
    EXPECT_EQ(s.seed, testkit::splitmix64(9001 + s.index));

  // A different fleet seed re-seeds every case.
  const std::vector<ScenarioSpec> other =
      FleetSpec().seed(9002).enumerate();
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_NE(fleet[i].seed, other[i].seed);
}

TEST(FleetSpec, EnumerationIsDeterministic) {
  const FleetSpec spec = conformance_fleet();
  const std::vector<ScenarioSpec> a = spec.enumerate();
  const std::vector<ScenarioSpec> b = spec.enumerate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].show(), b[i].show());
  }
}

TEST(FleetSpec, EnvSeedOverridesProgrammaticSeed) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_cap("RCR_SCN_FLEET");
  const ScopedEnv env("RCR_SCN_SEED", "424242");
  const FleetSpec spec = FleetSpec().seed(7).honor_env();
  EXPECT_EQ(spec.fleet_seed(), 424242u);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  EXPECT_EQ(fleet[0].seed, testkit::splitmix64(424242));
}

TEST(FleetSpec, EnvOnlySelectsExactlyOneScenario) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv scrub_cap("RCR_SCN_FLEET");
  const FleetSpec spec = FleetSpec().honor_env();
  const std::vector<ScenarioSpec> full = spec.enumerate();
  const ScopedEnv env("RCR_SCN_ONLY", "5");
  const std::vector<ScenarioSpec> one = spec.enumerate();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].index, 5u);
  EXPECT_EQ(one[0].seed, full[5].seed);
  EXPECT_EQ(one[0].show(), full[5].show());
}

TEST(FleetSpec, EnvOnlyOutOfRangeThrows) {
  const ScopedEnv env("RCR_SCN_ONLY", "8");  // default cardinality is 8
  EXPECT_THROW(FleetSpec().honor_env().enumerate(), std::invalid_argument);
}

TEST(FleetSpec, FixtureSpecsIgnoreTheReplayEnv) {
  // Only opted-in specs (the conformance fleet) honor RCR_SCN_*: a replay
  // line pinning scenario 1337 must not break the small ad-hoc fleets that
  // other tests in the same process build.
  const ScopedEnv seed("RCR_SCN_SEED", "424242");
  const ScopedEnv only("RCR_SCN_ONLY", "1337");
  const FleetSpec spec = FleetSpec().seed(7);
  EXPECT_EQ(spec.fleet_seed(), 7u);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  ASSERT_EQ(fleet.size(), 8u);
  EXPECT_EQ(fleet[0].seed, testkit::splitmix64(7));
}

TEST(FleetSpec, EnvFleetCapStrideSamplesAcrossAxes) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv env("RCR_SCN_FLEET", "4");
  const std::vector<ScenarioSpec> fleet = FleetSpec().honor_env().enumerate();
  ASSERT_EQ(fleet.size(), 4u);  // stride 2 over cardinality 8
  // Stride sampling spans the slowest axis instead of truncating to its
  // first value.
  std::set<std::size_t> cells_seen;
  for (const ScenarioSpec& s : fleet) cells_seen.insert(s.cells);
  EXPECT_EQ(cells_seen.size(), 2u);
  // Indices are positions in the *full* product, so replay lines stay valid.
  EXPECT_EQ(fleet[1].index, 2u);
}

TEST(FleetSpec, InvalidAxesThrow) {
  EXPECT_THROW(FleetSpec().cells(0, 2), std::invalid_argument);
  EXPECT_THROW(FleetSpec().cells(4, 2), std::invalid_argument);
  EXPECT_THROW(FleetSpec().users_per_cell({0}).enumerate(),
               std::invalid_argument);
  EXPECT_THROW(FleetSpec().rbs({}).enumerate(), std::invalid_argument);
  EXPECT_THROW(FleetSpec().mobility({1.5}).enumerate(),
               std::invalid_argument);
  EXPECT_THROW(
      FleetSpec().slices({SliceMix{false, false, false}}).enumerate(),
      std::invalid_argument);
}

TEST(ConformanceFleet, ExceedsThousandScenariosAndCoversEveryAxis) {
  // Coverage is a property of the full product; shield it from any outer
  // replay env so the assertions hold under a replay line too.
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv scrub_cap("RCR_SCN_FLEET");
  const FleetSpec spec = conformance_fleet();
  EXPECT_GE(spec.cardinality(), 1000u);
  const std::vector<ScenarioSpec> fleet = spec.enumerate();
  EXPECT_EQ(fleet.size(), spec.cardinality());

  std::set<std::size_t> cells_seen;
  std::set<std::string> slices_seen;
  std::set<int> traffic_seen;
  bool saw_mobility = false, saw_faults = false;
  for (const ScenarioSpec& s : fleet) {
    cells_seen.insert(s.cells);
    slices_seen.insert(s.slices.show());
    traffic_seen.insert(static_cast<int>(s.traffic));
    saw_mobility = saw_mobility || s.handover_rate > 0.0;
    saw_faults = saw_faults || !s.faults.empty();
  }
  EXPECT_EQ(cells_seen.size(), 7u);  // 2..8
  EXPECT_EQ(slices_seen.size(), 4u);
  EXPECT_EQ(traffic_seen.size(), 2u);
  EXPECT_TRUE(saw_mobility);
  EXPECT_TRUE(saw_faults);
}

TEST(ScenarioSpec, ReplayLineNamesSeedAndIndex) {
  ScenarioSpec spec;
  spec.index = 17;
  EXPECT_EQ(spec.replay_line(99),
            "RCR_SCN_SEED=99 RCR_SCN_ONLY=17 ctest -L scn");
}

// Scalar complexity for shrink ordering: every candidate must be strictly
// simpler under this measure, so greedy shrink descents terminate.
std::size_t complexity(const ScenarioSpec& s) {
  return s.cells + s.users_per_cell + s.rbs + s.ticks + s.slices.count() +
         (s.handover_rate > 0.0 ? 1 : 0) + (s.faults.empty() ? 0 : 1) +
         (s.traffic == Traffic::kStatic ? 0 : 1);
}

TEST(Shrink, CandidatesAreStrictlySimplerAndDescentTerminates) {
  ScenarioSpec spec;
  spec.cells = 8;
  spec.users_per_cell = 4;
  spec.rbs = 8;
  spec.ticks = 6;
  spec.slices = SliceMix{true, true, true};
  spec.handover_rate = 0.2;
  spec.traffic = Traffic::kBursty;
  spec.faults = "sites=serve.*,rate=0.25";

  ScenarioSpec current = spec;
  std::size_t steps = 0;
  for (;;) {
    const std::vector<ScenarioSpec> candidates = shrink(current);
    if (candidates.empty()) break;
    for (const ScenarioSpec& c : candidates) {
      EXPECT_LT(complexity(c), complexity(current)) << c.show();
      // Shrunk reproducers keep the identity of the failing case.
      EXPECT_EQ(c.index, spec.index);
      EXPECT_EQ(c.seed, spec.seed);
    }
    current = candidates.front();  // greedy: always take the first
    ASSERT_LT(++steps, 200u) << "shrink descent failed to terminate";
  }
  EXPECT_EQ(current.cells, 1u);
  EXPECT_EQ(current.users_per_cell, 1u);
  EXPECT_EQ(current.traffic, Traffic::kStatic);
  EXPECT_TRUE(current.faults.empty());
}

TEST(Shrink, MinimalSpecHasNoCandidates) {
  ScenarioSpec spec;
  spec.cells = 1;
  spec.users_per_cell = 1;
  spec.rbs = 1;
  spec.ticks = 1;
  spec.slices = SliceMix{true, false, false};
  spec.handover_rate = 0.0;
  spec.traffic = Traffic::kStatic;
  EXPECT_TRUE(shrink(spec).empty());
}

}  // namespace
}  // namespace rcr::scn
