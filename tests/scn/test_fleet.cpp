// The conformance fleet gate (`ctest -L scn`): enumerate 1000+ scenarios,
// grade them all through rcr::serve, demand zero unsound degradations, and
// write the machine-readable scn_report.json.  Failures print a one-line
// RCR_SCN_SEED/RCR_SCN_ONLY replay spec.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "rcr/scn/dsl.hpp"
#include "rcr/scn/grader.hpp"

namespace rcr::scn {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  /// Unset for the scope: shields a fixture from an outer replay env.
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_previous_)
      ::setenv(name_, previous_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

// The headline conformance gate.  Honors the environment replay contract:
//   RCR_SCN_SEED=<u64>   re-seed the whole fleet
//   RCR_SCN_ONLY=<idx>   replay one scenario (the line a failure prints)
//   RCR_SCN_FLEET=<n>    stride-sample down to n scenarios (CI smoke)
//   RCR_SCN_REPORT=<p>   report path (default scn_report.json)
TEST(ConformanceFleet, GradesEveryScenarioWithZeroUnsoundDegradations) {
  const FleetSpec fleet_spec = conformance_fleet();
  const std::uint64_t fleet_seed = fleet_spec.fleet_seed();
  const std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();

  if (!env_only_index() && !env_fleet_cap()) {
    ASSERT_GE(fleet.size(), 1000u)
        << "conformance fleet shrank below the 1000-scenario floor";
  }

  const FleetReport report = grade_fleet(fleet, fleet_seed);

  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const ScenarioVerdict& v = report.verdicts[i];
    if (v.verdict == Verdict::kUnsound || v.verdict == Verdict::kFail) {
      ADD_FAILURE() << to_string(v.verdict) << " scenario "
                    << fleet[i].show() << "\n  " << v.detail
                    << "\n  replay: " << fleet[i].replay_line(fleet_seed);
    }
  }
  EXPECT_EQ(report.unsound, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.passed + report.degraded + report.failed + report.unsound,
            fleet.size());
  // Every scenario earns the full soundness + feasibility slices; the fleet
  // mean has historically sat near 94 (degradations come from the injected
  // RAT-outage leg).  Guard against silent rubric collapse with headroom.
  EXPECT_GE(report.mean_points, 80.0);
  EXPECT_GE(report.min_points, 50.0);

  ASSERT_TRUE(write_report(report, fleet, env_report_path()))
      << "failed to write " << env_report_path();
}

TEST(ConformanceFleet, SameSeedProducesByteIdenticalReport) {
  // A 56-scenario stride sample keeps the double-grade cheap while still
  // spanning every axis of the fleet.  An outer replay env must not shrink
  // or re-seed this fixture.
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv cap("RCR_SCN_FLEET", "56");
  const FleetSpec fleet_spec = conformance_fleet();
  const std::uint64_t fleet_seed = fleet_spec.fleet_seed();
  const std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  ASSERT_LE(fleet.size(), 56u);
  ASSERT_GE(fleet.size(), 40u);

  const std::string first = report_json(grade_fleet(fleet, fleet_seed), fleet);
  const std::string second =
      report_json(grade_fleet(fleet_spec.enumerate(), fleet_seed), fleet);
  ASSERT_EQ(first, second)
      << "same RCR_SCN_SEED must serialize to byte-identical scn_report.json";
}

TEST(ConformanceFleet, DifferentSeedChangesTheFleet) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv cap("RCR_SCN_FLEET", "8");
  const std::vector<ScenarioSpec> fleet = conformance_fleet().enumerate();
  const std::string a = report_json(grade_fleet(fleet, 1), fleet);

  const ScopedEnv seed("RCR_SCN_SEED", "20260809");
  const std::vector<ScenarioSpec> reseeded = conformance_fleet().enumerate();
  ASSERT_EQ(reseeded.size(), fleet.size());
  EXPECT_NE(reseeded[0].seed, fleet[0].seed);
  const std::string b =
      report_json(grade_fleet(reseeded, 20260809), reseeded);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rcr::scn
