// Verdict grader semantics: clean scenarios pass, fault legs degrade
// soundly, fragment validation, determinism of verdicts and reports.
#include "rcr/scn/grader.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rcr/scn/dsl.hpp"

namespace rcr::scn {
namespace {

ScenarioSpec clean_spec() {
  ScenarioSpec spec;
  spec.index = 0;
  spec.seed = 0x5ca1ab1e;
  spec.cells = 3;
  spec.users_per_cell = 3;
  spec.rbs = 6;
  spec.ticks = 6;
  spec.slices = SliceMix{true, false, false};
  spec.traffic = Traffic::kStatic;
  return spec;
}

TEST(Grader, CleanStaticScenarioScoresFullPoints) {
  const ScenarioVerdict v = grade_scenario(clean_spec());
  EXPECT_EQ(v.verdict, Verdict::kPass) << v.detail;
  EXPECT_DOUBLE_EQ(v.points, 100.0);
  EXPECT_EQ(v.unsound_degradations, 0u);
  EXPECT_LE(v.feasibility_residual, 1e-9);
  EXPECT_DOUBLE_EQ(v.sla_satisfaction, 1.0);
  EXPECT_DOUBLE_EQ(v.deadline_hit_rate, 1.0);
  EXPECT_EQ(v.cell_ticks, clean_spec().cells * clean_spec().ticks);
  EXPECT_GT(v.sla_checks, 0u);
  EXPECT_GT(v.fleet_sum_rate, 0.0);
  EXPECT_TRUE(v.detail.empty());
}

TEST(Grader, UrllcStarvationGradesDegradedNotUnsound) {
  // The service maximizes sum rate, so a lone URLLC user holding the weakest
  // gains in its cell can be starved of every resource block.  The rubric
  // must call that a degraded SLA outcome -- never an unsound one.
  ScenarioSpec spec = clean_spec();
  spec.slices = SliceMix{true, true, false};
  const ScenarioVerdict v = grade_scenario(spec);
  ASSERT_EQ(v.verdict, Verdict::kDegraded) << v.detail;
  EXPECT_EQ(v.unsound_degradations, 0u);
  EXPECT_LT(v.sla_satisfaction, 1.0);
  EXPECT_LT(v.points, 100.0);
  EXPECT_GE(v.points, kSoundnessPoints);
  EXPECT_NE(v.detail.find("URLLC below its aggregate SLA floor"),
            std::string::npos)
      << v.detail;
}

TEST(Grader, VerdictIsDeterministic) {
  const ScenarioSpec spec = clean_spec();
  const ScenarioVerdict a = grade_scenario(spec);
  const ScenarioVerdict b = grade_scenario(spec);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.solution_hash, b.solution_hash);
  EXPECT_EQ(a.feasibility_residual, b.feasibility_residual);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.detail, b.detail);
}

TEST(Grader, FaultLegDegradesButStaysSound) {
  ScenarioSpec spec = clean_spec();
  spec.faults = "sites=serve.*,rate=0.5";
  const ScenarioVerdict v = grade_scenario(spec);
  // Injected RAT outages push cells down the chain: the verdict drops below
  // pass but every degradation must stay soundness-tagged-valid.
  EXPECT_EQ(v.unsound_degradations, 0u) << v.detail;
  EXPECT_NE(v.verdict, Verdict::kUnsound);
  EXPECT_GT(v.degraded, 0u) << "rate=0.5 over serve.* never degraded a cell";
  EXPECT_LT(v.deadline_hit_rate, 1.0);
  EXPECT_LT(v.points, 100.0);
  // The grader still awards the full soundness slice.
  EXPECT_GE(v.points, kSoundnessPoints);
}

TEST(Grader, FaultInjectionIsPartOfTheScenarioSeed) {
  ScenarioSpec spec = clean_spec();
  spec.faults = "sites=serve.*,rate=0.5";
  const ScenarioVerdict a = grade_scenario(spec);
  const ScenarioVerdict b = grade_scenario(spec);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.solution_hash, b.solution_hash);

  spec.seed ^= 1;  // a different case seed redraws the injection stream
  const ScenarioVerdict c = grade_scenario(spec);
  EXPECT_NE(a.solution_hash, c.solution_hash);
}

TEST(Grader, NonServeFaultFragmentsAreRejected) {
  ScenarioSpec spec = clean_spec();
  spec.faults = "sites=admm.*,rate=0.5";
  EXPECT_THROW(grade_scenario(spec), std::invalid_argument);
  spec.faults = "rate=0.5";  // defaults to sites=* -- every module
  EXPECT_THROW(grade_scenario(spec), std::invalid_argument);
  spec.faults = "sites=serve.*,max=3";  // fired-count caps are schedule-bound
  EXPECT_THROW(grade_scenario(spec), std::invalid_argument);
  spec.faults = "sites=serve.*,seed=7";  // the grader owns the seed
  EXPECT_THROW(grade_scenario(spec), std::invalid_argument);
}

TEST(Grader, ArmedWallClockDeadlineIsRejected) {
  GraderOptions options;
  options.service.tick_deadline_s = 0.01;
  EXPECT_THROW(grade_scenario(clean_spec(), options), std::invalid_argument);
}

TEST(Grader, FleetAggregationCountsEveryVerdict) {
  const std::vector<ScenarioSpec> fleet = FleetSpec().enumerate();
  const FleetReport report = grade_fleet(fleet, 1234);
  ASSERT_EQ(report.verdicts.size(), fleet.size());
  EXPECT_EQ(report.passed + report.degraded + report.failed + report.unsound,
            fleet.size());
  EXPECT_EQ(report.fleet_seed, 1234u);
  EXPECT_GT(report.mean_points, 0.0);
  EXPECT_LE(report.min_points, report.mean_points);
}

TEST(Grader, ReportJsonIsByteIdenticalAcrossRuns) {
  const std::vector<ScenarioSpec> fleet =
      FleetSpec().rat_outage({"", "sites=serve.*,rate=0.25"}).enumerate();
  const std::uint64_t fseed = 77;
  const std::string a = report_json(grade_fleet(fleet, fseed), fleet);
  const std::string b = report_json(grade_fleet(fleet, fseed), fleet);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"fleet_seed\": 77"), std::string::npos);
  EXPECT_NE(a.find("\"results\": ["), std::string::npos);
}

TEST(Grader, ReportJsonSizeMismatchThrows) {
  const std::vector<ScenarioSpec> fleet = FleetSpec().enumerate();
  FleetReport report = grade_fleet(fleet, 1);
  report.verdicts.pop_back();
  EXPECT_THROW(report_json(report, fleet), std::invalid_argument);
}

}  // namespace
}  // namespace rcr::scn
