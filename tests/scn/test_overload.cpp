// The overload fleet gate (DESIGN.md §15): priority-inversion scoring,
// the 288-scenario overload fleet with zero unsound/fail verdicts, and the
// headline acceptance property — under a 4x load spike plus a serve.* fault
// storm, the URLLC slice holds its no-overload SLA while lower-priority
// slices degrade first.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "rcr/rt/parallel.hpp"
#include "rcr/scn/dsl.hpp"
#include "rcr/scn/grader.hpp"

namespace rcr::scn {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_previous_)
      ::setenv(name_, previous_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

TEST(PriorityInversion, HighPriorityStaleWhileLowPriorityFreshIsInverted) {
  // Cell 0 is URLLC (rank 0) involuntarily stale; cell 1 is mMTC (rank 2)
  // served fresh: admission inverted the priority order.
  EXPECT_TRUE(priority_inversion({0, 2}, {false, true}, {true, false}));
}

TEST(PriorityInversion, LowPriorityStaleIsTheIntendedDegradation) {
  EXPECT_FALSE(priority_inversion({0, 2}, {true, false}, {false, true}));
}

TEST(PriorityInversion, EqualRanksNeverInvert) {
  EXPECT_FALSE(priority_inversion({1, 1}, {false, true}, {true, false}));
}

TEST(PriorityInversion, VoluntaryStalenessIsExempt) {
  // Stale but not involuntary (injected fault or quarantine): no inversion.
  EXPECT_FALSE(priority_inversion({0, 2}, {false, true}, {false, false}));
}

TEST(PriorityInversion, NothingFreshMeansNoInversion) {
  EXPECT_FALSE(priority_inversion({0, 2}, {false, false}, {true, true}));
}

ScenarioSpec overload_spec(OverloadLeg leg, const std::string& faults) {
  ScenarioSpec spec;
  spec.index = 0;
  spec.seed = 0x9e3779b97f4a7c15ull;
  spec.cells = 6;
  spec.users_per_cell = 3;
  spec.rbs = 6;
  spec.ticks = 9;
  spec.slices = SliceMix{true, true, true};  // cells cycle E, U, M
  spec.handover_rate = 0.0;
  spec.traffic = Traffic::kStatic;
  spec.faults = faults;
  spec.overload = leg;
  return spec;
}

TEST(OverloadFleet, CardinalityAndAxes) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv scrub_cap("RCR_SCN_FLEET");
  const FleetSpec fleet_spec = overload_fleet();
  EXPECT_EQ(fleet_spec.cardinality(), 288u);
  const std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  ASSERT_EQ(fleet.size(), 288u);
  bool saw_spike = false, saw_brownout = false, saw_storm = false;
  for (const ScenarioSpec& spec : fleet) {
    EXPECT_NE(spec.overload, OverloadLeg::kNone);
    saw_spike |= spec.overload == OverloadLeg::kLoadSpike;
    saw_brownout |= spec.overload == OverloadLeg::kBrownout;
    saw_storm |= !spec.faults.empty();
  }
  EXPECT_TRUE(saw_spike);
  EXPECT_TRUE(saw_brownout);
  EXPECT_TRUE(saw_storm);
}

// The overload conformance gate: every leg (baseline, 4x spike, brownout),
// with and without the serve.* storm, grades without a single unsound or
// failed verdict — overload policy degrades lower slices first, never
// inverts priority, and never breaks the soundness contract.
TEST(OverloadFleet, GradesWithZeroUnsoundAndZeroFail) {
  const FleetSpec fleet_spec = overload_fleet();
  const std::uint64_t fleet_seed = fleet_spec.fleet_seed();
  const std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  if (!env_only_index() && !env_fleet_cap()) {
    ASSERT_EQ(fleet.size(), 288u);
  }

  const FleetReport report = grade_fleet(fleet, fleet_seed);
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const ScenarioVerdict& v = report.verdicts[i];
    if (v.verdict == Verdict::kUnsound || v.verdict == Verdict::kFail) {
      ADD_FAILURE() << to_string(v.verdict) << " scenario "
                    << fleet[i].show() << "\n  " << v.detail
                    << "\n  replay: " << fleet[i].replay_line(fleet_seed);
    }
  }
  EXPECT_EQ(report.unsound, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.passed + report.degraded + report.failed + report.unsound,
            fleet.size());
}

// The acceptance property from the issue: same scenario, same fault storm,
// baseline vs 4x load spike.  The URLLC slice's SLA must hold at or above
// its no-overload baseline while the lower slices absorb the degradation
// (freshness ordered URLLC >= eMBB >= mMTC under admission pressure).
TEST(OverloadFleet, UrllcSlaSurvivesTheLoadSpikeLowerSlicesDegradeFirst) {
  const std::string storm = "sites=serve.*,rate=0.4";
  const ScenarioVerdict baseline =
      grade_scenario(overload_spec(OverloadLeg::kBaseline, storm));
  const ScenarioVerdict spiked =
      grade_scenario(overload_spec(OverloadLeg::kLoadSpike, storm));

  constexpr std::size_t kEmbb = 0, kUrllc = 1, kMmtc = 2;
  EXPECT_NE(spiked.verdict, Verdict::kUnsound) << spiked.detail;
  EXPECT_NE(spiked.verdict, Verdict::kFail) << spiked.detail;
  EXPECT_GE(spiked.sla_by_class[kUrllc], baseline.sla_by_class[kUrllc])
      << "the highest-priority slice lost SLA under overload";
  EXPECT_GE(spiked.fresh_by_class[kUrllc], spiked.fresh_by_class[kEmbb]);
  EXPECT_LT(spiked.fresh_by_class[kMmtc], 1.0)
      << "a 4x spike over a cells/2 budget must defer someone";

  // Admission pressure lands strictly bottom-up on the fault-free pair
  // (injected serve.admit.shed faults hand freed budget slots down the rank
  // order, which can locally reshuffle eMBB vs mMTC freshness).
  const ScenarioVerdict clean =
      grade_scenario(overload_spec(OverloadLeg::kLoadSpike, ""));
  EXPECT_NE(clean.verdict, Verdict::kUnsound) << clean.detail;
  EXPECT_GE(clean.fresh_by_class[kUrllc], clean.fresh_by_class[kEmbb]);
  EXPECT_GE(clean.fresh_by_class[kEmbb], clean.fresh_by_class[kMmtc]);
  EXPECT_EQ(clean.fresh_by_class[kUrllc], 1.0)
      << "URLLC cells fit inside the cells/2 budget and must stay fresh";
}

TEST(OverloadFleet, BrownoutLegGradesSoundAndDeterministic) {
  const ScenarioSpec spec = overload_spec(OverloadLeg::kBrownout,
                                          "sites=serve.*,rate=0.4");
  const ScenarioVerdict v = grade_scenario(spec);
  EXPECT_NE(v.verdict, Verdict::kUnsound) << v.detail;
  EXPECT_NE(v.verdict, Verdict::kFail) << v.detail;

  const ScenarioVerdict again = grade_scenario(spec);
  EXPECT_EQ(v.points, again.points);
  EXPECT_EQ(v.solution_hash, again.solution_hash);
}

TEST(OverloadFleet, GradesByteIdenticalSerialVsParallel) {
  const ScopedEnv scrub_only("RCR_SCN_ONLY");
  const ScopedEnv scrub_seed("RCR_SCN_SEED");
  const ScopedEnv cap("RCR_SCN_FLEET", "24");
  const FleetSpec fleet_spec = overload_fleet();
  const std::uint64_t fleet_seed = fleet_spec.fleet_seed();
  const std::vector<ScenarioSpec> fleet = fleet_spec.enumerate();
  ASSERT_GE(fleet.size(), 16u);

  std::string serial_report;
  {
    rt::ForceSerialGuard serial;
    serial_report = report_json(grade_fleet(fleet, fleet_seed), fleet);
  }
  const std::string parallel_report =
      report_json(grade_fleet(fleet, fleet_seed), fleet);
  EXPECT_EQ(serial_report, parallel_report)
      << "admission/breaker/brownout decisions drifted across RCR_THREADS";
}

TEST(OverloadShrink, DropsTheOverloadLeg) {
  const ScenarioSpec spec = overload_spec(OverloadLeg::kLoadSpike, "");
  bool dropped = false;
  for (const ScenarioSpec& candidate : shrink(spec))
    if (candidate.overload == OverloadLeg::kNone) dropped = true;
  EXPECT_TRUE(dropped);
}

}  // namespace
}  // namespace rcr::scn
