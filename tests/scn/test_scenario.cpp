// ScenarioWorkload semantics: determinism, traffic curves, slice tagging,
// handover churn, and SLA floor wiring.
#include "rcr/scn/scenario.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>

namespace rcr::scn {
namespace {

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.index = 0;
  spec.seed = 0xfeedbeef;
  spec.cells = 3;
  spec.users_per_cell = 4;
  spec.rbs = 6;
  spec.ticks = 8;
  spec.slices = SliceMix{true, true, true};
  return spec;
}

TEST(ScenarioWorkload, DeterministicAcrossInstances) {
  const ScenarioSpec spec = base_spec();
  ScenarioWorkload a(spec), b(spec);
  for (std::size_t t = 0; t < spec.ticks; ++t) {
    a.advance(t);
    b.advance(t);
    for (std::size_t c = 0; c < a.num_cells(); ++c) {
      ASSERT_EQ(a.cell(c).num_users(), b.cell(c).num_users());
      for (std::size_t u = 0; u < a.cell(c).num_users(); ++u) {
        EXPECT_EQ(a.slice_of(c, u), b.slice_of(c, u));
        for (std::size_t rb = 0; rb < a.cell(c).num_rbs(); ++rb)
          ASSERT_EQ(a.cell(c).gain(u, rb), b.cell(c).gain(u, rb));
      }
    }
  }
}

TEST(ScenarioWorkload, StaticTrafficKeepsPopulationFlat) {
  ScenarioSpec spec = base_spec();
  spec.traffic = Traffic::kStatic;
  ScenarioWorkload wl(spec);
  for (std::size_t t = 0; t < spec.ticks; ++t) {
    wl.advance(t);
    for (std::size_t c = 0; c < wl.num_cells(); ++c)
      EXPECT_EQ(wl.cell(c).num_users(), spec.users_per_cell);
  }
}

TEST(ScenarioWorkload, DiurnalPopulationSpansBaseToPeak) {
  ScenarioSpec spec = base_spec();
  spec.traffic = Traffic::kDiurnal;
  ScenarioWorkload wl(spec);
  std::set<std::size_t> seen;
  for (std::size_t t = 0; t < spec.ticks; ++t)
    seen.insert(wl.target_users(0, t));
  const std::size_t base = (spec.users_per_cell + 1) / 2;
  for (std::size_t target : seen) {
    EXPECT_GE(target, base);
    EXPECT_LE(target, spec.users_per_cell);
  }
  EXPECT_GT(seen.size(), 1u) << "diurnal curve never moved the population";
  EXPECT_EQ(*seen.begin(), base);
  EXPECT_EQ(*seen.rbegin(), spec.users_per_cell);
}

TEST(ScenarioWorkload, BurstyPopulationIsBimodal) {
  ScenarioSpec spec = base_spec();
  spec.traffic = Traffic::kBursty;
  spec.ticks = 64;
  ScenarioWorkload wl(spec);
  const std::size_t base = (spec.users_per_cell + 1) / 2;
  std::size_t bursts = 0;
  for (std::size_t t = 0; t < spec.ticks; ++t) {
    const std::size_t target = wl.target_users(1, t);
    EXPECT_TRUE(target == base || target == spec.users_per_cell);
    if (target == spec.users_per_cell) ++bursts;
  }
  // ~1/4 burst probability over 64 ticks: expect at least a few of each.
  EXPECT_GT(bursts, 0u);
  EXPECT_LT(bursts, spec.ticks);
}

TEST(ScenarioWorkload, SliceTaggingIsRoundRobinInCanonicalOrder) {
  ScenarioSpec spec = base_spec();
  spec.slices = SliceMix{true, true, true};
  spec.traffic = Traffic::kStatic;
  ScenarioWorkload wl(spec);
  wl.advance(0);
  EXPECT_EQ(wl.slice_of(0, 0), ServiceClass::kEmbb);
  EXPECT_EQ(wl.slice_of(0, 1), ServiceClass::kUrllc);
  EXPECT_EQ(wl.slice_of(0, 2), ServiceClass::kMmtc);
  EXPECT_EQ(wl.slice_of(0, 3), ServiceClass::kEmbb);
}

TEST(ScenarioWorkload, MinRateFloorsFollowSlicePolicy) {
  ScenarioSpec spec = base_spec();
  spec.traffic = Traffic::kStatic;
  ScenarioWorkload wl(spec);
  wl.advance(0);
  const SlaPolicy policy;
  const RraProblem& problem = wl.cell(0);
  for (std::size_t u = 0; u < problem.num_users(); ++u)
    EXPECT_EQ(problem.min_rate[u], sla_floor(policy, wl.slice_of(0, u)));
  // mMTC carries no rate floor.
  EXPECT_EQ(sla_floor(policy, ServiceClass::kMmtc), 0.0);
  EXPECT_GT(sla_floor(policy, ServiceClass::kUrllc),
            sla_floor(policy, ServiceClass::kEmbb));
}

TEST(ScenarioWorkload, HandoverChurnsGeometryDeterministically) {
  ScenarioSpec still = base_spec();
  still.traffic = Traffic::kStatic;
  ScenarioSpec mobile = still;
  mobile.handover_rate = 1.0;  // every user hands over every tick

  ScenarioWorkload a(still), b(mobile), b2(mobile);
  bool diverged = false;
  for (std::size_t t = 0; t < still.ticks; ++t) {
    a.advance(t);
    b.advance(t);
    b2.advance(t);
    for (std::size_t c = 0; c < a.num_cells(); ++c) {
      ASSERT_EQ(b.cell(c).num_users(), b2.cell(c).num_users());
      for (std::size_t u = 0; u < b.cell(c).num_users(); ++u)
        for (std::size_t rb = 0; rb < b.cell(c).num_rbs(); ++rb) {
          ASSERT_EQ(b.cell(c).gain(u, rb), b2.cell(c).gain(u, rb));
          if (t > 0 && b.cell(c).gain(u, rb) != a.cell(c).gain(u, rb))
            diverged = true;
        }
    }
  }
  EXPECT_TRUE(diverged) << "full mobility never changed a channel";
}

TEST(ScenarioWorkload, InvalidSpecsThrow) {
  ScenarioSpec spec = base_spec();
  spec.cells = 0;
  EXPECT_THROW(ScenarioWorkload{spec}, std::invalid_argument);
  spec = base_spec();
  spec.handover_rate = 2.0;
  EXPECT_THROW(ScenarioWorkload{spec}, std::invalid_argument);
  spec = base_spec();
  spec.slices = SliceMix{false, false, false};
  EXPECT_THROW(ScenarioWorkload{spec}, std::invalid_argument);

  ScenarioWorkload wl(base_spec());
  wl.advance(0);
  EXPECT_THROW(wl.advance(3), std::invalid_argument);  // non-consecutive
}

TEST(SliceMix, ShowAndActiveAreCanonical) {
  EXPECT_EQ((SliceMix{true, false, false}).show(), "E");
  EXPECT_EQ((SliceMix{true, true, true}).show(), "EUM");
  EXPECT_EQ((SliceMix{false, true, true}).show(), "UM");
  const auto active = SliceMix{false, true, true}.active();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], ServiceClass::kUrllc);
  EXPECT_EQ(active[1], ServiceClass::kMmtc);
}

TEST(Traffic, ToStringNamesAllPatterns) {
  EXPECT_STREQ(to_string(Traffic::kStatic), "static");
  EXPECT_STREQ(to_string(Traffic::kDiurnal), "diurnal");
  EXPECT_STREQ(to_string(Traffic::kBursty), "bursty");
}

}  // namespace
}  // namespace rcr::scn
