// Slice-aware admission control: planner ordering and budget semantics,
// snapshot service for deferred/shed cells, the full-shed expired-deadline
// tick, and bit-exactness of every admission decision across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/obs/obs.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/overload.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::serve {
namespace {

WorkloadConfig admission_workload() {
  WorkloadConfig wc;
  wc.num_cells = 6;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.period_ticks = 16;
  wc.coherence_ticks = 4;
  wc.seed = 99;
  return wc;
}

ServiceConfig admission_config() {
  ServiceConfig sc;
  sc.admission.enabled = true;
  sc.admission.max_solves_per_tick = 3;
  sc.admission.max_stale_ticks = 4;
  // Cell-sliced priorities: U, E, M, U, E, M.
  sc.admission.cell_slices = {qos::ServiceClass::kUrllc,
                              qos::ServiceClass::kEmbb,
                              qos::ServiceClass::kMmtc};
  return sc;
}

bool trail_has(const robust::Status& status, const char* needle) {
  for (const std::string& line : status.trail)
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

TEST(PriorityRank, UrllcOutranksEmbbOutranksMmtc) {
  EXPECT_LT(priority_rank(qos::ServiceClass::kUrllc),
            priority_rank(qos::ServiceClass::kEmbb));
  EXPECT_LT(priority_rank(qos::ServiceClass::kEmbb),
            priority_rank(qos::ServiceClass::kMmtc));
}

TEST(AdmissionPlanner, DisabledAdmitsEverything) {
  std::vector<CellGate> gates(5);
  AdmissionInputs in;
  const AdmissionPlan plan = plan_admission(gates, in);
  EXPECT_EQ(plan.admitted, 5u);
  EXPECT_EQ(plan.deferred + plan.shed + plan.quarantined, 0u);
}

TEST(AdmissionPlanner, BudgetAdmitsByRankThenStaleness) {
  // ranks U(0) E(1) E(1) M(2); the stale eMBB cell beats the fresh one.
  std::vector<CellGate> gates(4);
  gates[0].rank = 0;
  gates[1].rank = 1;
  gates[1].staleness = 0;
  gates[2].rank = 1;
  gates[2].staleness = 3;
  gates[3].rank = 2;
  AdmissionInputs in;
  in.admission_enabled = true;
  in.budget = 2;
  in.max_stale_ticks = 8;
  const AdmissionPlan plan = plan_admission(gates, in);
  EXPECT_EQ(plan.decisions[0], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[2], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[1], AdmitDecision::kDefer);
  EXPECT_EQ(plan.decisions[3], AdmitDecision::kDefer);
  EXPECT_EQ(plan.admitted, 2u);
  EXPECT_EQ(plan.deferred, 2u);
}

TEST(AdmissionPlanner, OverStaleDeferralsBecomeSheds) {
  std::vector<CellGate> gates(3);
  gates[0].rank = 0;
  gates[1].rank = 2;
  gates[1].staleness = 4;
  gates[2].rank = 2;
  gates[2].staleness = 1;
  AdmissionInputs in;
  in.admission_enabled = true;
  in.budget = 1;
  in.max_stale_ticks = 4;
  const AdmissionPlan plan = plan_admission(gates, in);
  EXPECT_EQ(plan.decisions[0], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[1], AdmitDecision::kShed);
  EXPECT_EQ(plan.decisions[2], AdmitDecision::kDefer);
}

TEST(AdmissionPlanner, ShedLowestKeepsOnlyTheTopClassPresent) {
  std::vector<CellGate> gates(4);
  gates[0].rank = 1;
  gates[1].rank = 1;
  gates[2].rank = 2;
  gates[3].rank = 2;
  AdmissionInputs in;
  in.shed_lowest = true;
  in.max_stale_ticks = 100;
  const AdmissionPlan plan = plan_admission(gates, in);
  // No URLLC present: the top rank *present* (eMBB) is admitted.
  EXPECT_EQ(plan.decisions[0], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[1], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[2], AdmitDecision::kDefer);
  EXPECT_EQ(plan.decisions[3], AdmitDecision::kDefer);
}

TEST(AdmissionPlanner, FullShedShedsEveryCell) {
  std::vector<CellGate> gates(3);
  AdmissionInputs in;
  in.full_shed = true;
  const AdmissionPlan plan = plan_admission(gates, in);
  EXPECT_EQ(plan.shed, 3u);
  for (const AdmitDecision d : plan.decisions)
    EXPECT_EQ(d, AdmitDecision::kShed);
}

TEST(AdmissionPlanner, QuarantinedCellsNeverConsumeBudget) {
  std::vector<CellGate> gates(3);
  gates[0].quarantined = true;
  AdmissionInputs in;
  in.admission_enabled = true;
  in.budget = 2;
  const AdmissionPlan plan = plan_admission(gates, in);
  EXPECT_EQ(plan.decisions[0], AdmitDecision::kQuarantine);
  EXPECT_EQ(plan.decisions[1], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.decisions[2], AdmitDecision::kAdmit);
  EXPECT_EQ(plan.quarantined, 1u);
  EXPECT_EQ(plan.admitted, 2u);
}

TEST(Admission, BudgetCapsSolvesAndHighPriorityCellsStayFresh) {
  const WorkloadConfig wc = admission_workload();
  DiurnalWorkload wl(wc);
  ServiceConfig sc = admission_config();
  sc.cache_enabled = false;  // every admitted cell actually solves
  AllocationService service(sc, wc.num_cells);

  for (std::size_t t = 0; t < 8; ++t) {
    wl.advance(t);
    const TickReport r = service.tick(t, wl);
    EXPECT_LE(r.solves, sc.admission.max_solves_per_tick) << "tick " << t;
    EXPECT_EQ(r.admitted + r.deferred + r.shed + r.quarantined,
              wc.num_cells);
    // The two URLLC cells (0, 3) fit inside the budget of 3 every tick.
    for (const std::size_t c : {0u, 3u}) {
      const CellAllocation& a = service.allocation(c);
      EXPECT_NE(a.step, "snapshot") << "URLLC cell " << c << " tick " << t;
      EXPECT_NE(a.step, "shed-fill") << "URLLC cell " << c << " tick " << t;
    }
    // Every cell still has a budget-feasible answer.
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const CellAllocation& a = service.allocation(c);
      ASSERT_EQ(a.power.size(), wc.num_rbs);
      double total = 0.0;
      for (double p : a.power) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_LE(total, wc.total_power * (1.0 + 1e-9));
      EXPECT_TRUE(a.status.usable());
    }
  }
}

TEST(Admission, DeferredCellsCarryDegradedStaleTrail) {
  const WorkloadConfig wc = admission_workload();
  DiurnalWorkload wl(wc);
  ServiceConfig sc = admission_config();
  sc.cache_enabled = false;
  AllocationService service(sc, wc.num_cells);

  std::size_t stale_served = 0;
  for (std::size_t t = 0; t < 6; ++t) {
    wl.advance(t);
    service.tick(t, wl);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const CellAllocation& a = service.allocation(c);
      if (a.step == "snapshot") {
        ++stale_served;
        EXPECT_TRUE(trail_has(a.status, "degraded:stale"))
            << "cell " << c << " tick " << t;
        EXPECT_EQ(a.status.code, robust::StatusCode::kDegraded);
      } else if (a.step == "shed-fill") {
        EXPECT_TRUE(trail_has(a.status, "degraded:shed"));
      }
    }
  }
  EXPECT_GT(stale_served, 0u) << "budget of 3 over 6 cells never deferred";
}

TEST(Admission, ExpiredDeadlineAtTickStartIsAFullShedTick) {
  // Satellite: a deadline that is already gone at the tick boundary must
  // shed everything -- no solver invoked, every cell served from snapshot,
  // one rcr.admit.shed per cell, bit-exact serial vs parallel.
  const WorkloadConfig wc = admission_workload();
  ServiceConfig sc = admission_config();
  sc.cache_enabled = false;
  sc.tick_deadline_s = 1e-12;  // gone before the boundary check runs

  const auto run = [&]() {
    obs::ScopedMetrics metrics;
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    std::vector<std::uint64_t> hashes;
    for (std::size_t t = 0; t < 3; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      EXPECT_EQ(r.solves, 0u) << "tick " << t << ": a solver ran";
      EXPECT_EQ(r.cache_hits, 0u);
      EXPECT_EQ(r.shed, wc.num_cells);
      EXPECT_EQ(r.admitted, 0u);
      for (std::size_t c = 0; c < wc.num_cells; ++c) {
        const CellAllocation& a = service.allocation(c);
        EXPECT_EQ(a.step, "shed-fill") << "cell " << c;
        EXPECT_EQ(a.power.size(), wc.num_rbs);
        double total = 0.0;
        for (double p : a.power) total += p;
        EXPECT_LE(total, wc.total_power * (1.0 + 1e-9));
      }
      hashes.push_back(r.solution_hash);
    }
    // One rcr.admit.shed per cell per tick.
    for (const obs::MetricSample& s : obs::metrics_snapshot()) {
      if (s.name == "rcr.admit.shed") {
        EXPECT_EQ(s.value, static_cast<double>(3 * wc.num_cells));
      }
    }
    return hashes;
  };

  std::vector<std::uint64_t> serial_hashes;
  {
    rt::ForceSerialGuard serial;
    serial_hashes = run();
  }
  const std::vector<std::uint64_t> parallel_hashes = run();
  EXPECT_EQ(serial_hashes, parallel_hashes);
}

TEST(Admission, DecisionsBitExactSerialVsParallel) {
  const WorkloadConfig wc = admission_workload();
  ServiceConfig sc = admission_config();

  const auto run = [&]() {
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    std::vector<std::string> trace;
    for (std::size_t t = 0; t < 10; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      trace.push_back(std::to_string(r.solution_hash) + ":" +
                      std::to_string(r.admitted) + ":" +
                      std::to_string(r.deferred) + ":" +
                      std::to_string(r.shed));
      for (std::size_t c = 0; c < wc.num_cells; ++c)
        trace.push_back(service.allocation(c).step);
    }
    return trace;
  };

  std::vector<std::string> serial_trace;
  {
    rt::ForceSerialGuard serial;
    serial_trace = run();
  }
  EXPECT_EQ(serial_trace, run());
}

}  // namespace
}  // namespace rcr::serve
