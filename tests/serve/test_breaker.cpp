// Per-solver circuit breakers: trip threshold, deterministic tick-count
// backoff with half-open probes, and the service integration where a
// serve.breaker.trip storm opens the ADMM breaker and the chain skips it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/overload.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::serve {
namespace {

BreakerConfig breaker_config() {
  BreakerConfig bc;
  bc.enabled = true;
  bc.failure_threshold = 3;
  bc.open_ticks = 4;
  bc.max_open_ticks = 16;
  return bc;
}

TEST(CircuitBreaker, StaysClosedBelowTheFailureThreshold) {
  const BreakerConfig bc = breaker_config();
  CircuitBreaker brk;
  brk.record_failure(bc, 0);
  brk.record_failure(bc, 1);
  EXPECT_FALSE(brk.blocked(2));
  EXPECT_EQ(brk.trips, 0u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  const BreakerConfig bc = breaker_config();
  CircuitBreaker brk;
  brk.record_failure(bc, 0);
  brk.record_failure(bc, 1);
  brk.record_success(bc, 2);
  brk.record_failure(bc, 3);
  brk.record_failure(bc, 4);
  EXPECT_FALSE(brk.blocked(5)) << "streak should have reset at tick 2";
}

TEST(CircuitBreaker, TripsOpenForOpenTicksThenProbes) {
  const BreakerConfig bc = breaker_config();
  CircuitBreaker brk;
  brk.record_failure(bc, 5);
  brk.record_failure(bc, 5);
  brk.record_failure(bc, 5);  // third consecutive failure trips
  EXPECT_EQ(brk.trips, 1u);
  EXPECT_EQ(brk.open_until, 5 + 1 + bc.open_ticks);
  EXPECT_TRUE(brk.blocked(9));
  EXPECT_FALSE(brk.blocked(10));
  EXPECT_TRUE(brk.probing(10));
}

TEST(CircuitBreaker, ProbeSuccessFullyCloses) {
  const BreakerConfig bc = breaker_config();
  CircuitBreaker brk;
  for (int i = 0; i < 3; ++i) brk.record_failure(bc, 5);
  brk.record_success(bc, 10);  // half-open probe came back clean
  EXPECT_FALSE(brk.blocked(11));
  EXPECT_FALSE(brk.probing(11));
  EXPECT_EQ(brk.backoff, 0u) << "a clean probe resets the backoff";
}

TEST(CircuitBreaker, ProbeFailureDoublesTheBackoffUpToTheCap) {
  const BreakerConfig bc = breaker_config();
  CircuitBreaker brk;
  for (int i = 0; i < 3; ++i) brk.record_failure(bc, 5);
  EXPECT_EQ(brk.backoff, 4u);
  brk.record_failure(bc, 10);  // probe failed: 4 -> 8
  EXPECT_EQ(brk.backoff, 8u);
  EXPECT_EQ(brk.open_until, 10 + 1 + 8u);
  brk.record_failure(bc, 19);  // 8 -> 16
  EXPECT_EQ(brk.backoff, 16u);
  brk.record_failure(bc, 36);  // capped at max_open_ticks
  EXPECT_EQ(brk.backoff, 16u);
  EXPECT_EQ(brk.trips, 4u);
}

WorkloadConfig breaker_workload() {
  WorkloadConfig wc;
  wc.num_cells = 3;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.period_ticks = 16;
  wc.coherence_ticks = 1;
  wc.seed = 4321;
  return wc;
}

ServiceConfig breaker_service_config() {
  ServiceConfig sc;
  sc.cache_enabled = false;
  sc.breaker = breaker_config();
  sc.breaker.failure_threshold = 2;
  sc.breaker.open_ticks = 3;
  return sc;
}

TEST(Breaker, TripStormOpensTheAdmmBreakerAndTheChainSkipsIt) {
  const WorkloadConfig wc = breaker_workload();
  const ServiceConfig sc = breaker_service_config();

  robust::faults::ScopedFaults scope(
      "seed=11,rate=1,sites=serve.breaker.trip");
  obs::ScopedMetrics metrics;
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);

  bool saw_skip_trail = false;
  for (std::size_t t = 0; t < 8; ++t) {
    wl.advance(t);
    service.tick(t, wl);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const CellAllocation& a = service.allocation(c);
      EXPECT_TRUE(a.status.usable()) << "cell " << c << " tick " << t;
      // The ADMM step never wins under the storm.
      EXPECT_NE(a.step, "admm");
      for (const std::string& line : a.status.trail)
        if (line.find("step 'admm' skipped (breaker open)") !=
            std::string::npos)
          saw_skip_trail = true;
    }
  }
  EXPECT_TRUE(saw_skip_trail) << "breaker never opened under a rate=1 storm";

  double skipped = 0.0, opened = 0.0;
  for (const obs::MetricSample& s : obs::metrics_snapshot()) {
    if (s.name == "rcr.fallback.skipped") skipped += s.value;
    if (s.name == "rcr.breaker.opened") opened += s.value;
  }
  EXPECT_GT(skipped, 0.0);
  EXPECT_GT(opened, 0.0);
}

TEST(Breaker, RecoversAfterTheStormLifts) {
  const WorkloadConfig wc = breaker_workload();
  const ServiceConfig sc = breaker_service_config();
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);

  {
    robust::faults::ScopedFaults scope(
        "seed=11,rate=1,sites=serve.breaker.trip");
    for (std::size_t t = 0; t < 4; ++t) {
      wl.advance(t);
      service.tick(t, wl);
    }
  }
  // Storm over: after the open window drains, probes succeed and the ADMM
  // head serves again.
  bool admm_back = false;
  for (std::size_t t = 4; t < 14; ++t) {
    wl.advance(t);
    service.tick(t, wl);
    for (std::size_t c = 0; c < wc.num_cells; ++c)
      if (service.allocation(c).step == "admm") admm_back = true;
  }
  EXPECT_TRUE(admm_back) << "breaker never re-closed after the storm";
}

TEST(Breaker, DecisionsBitExactSerialVsParallel) {
  const WorkloadConfig wc = breaker_workload();
  const ServiceConfig sc = breaker_service_config();

  const auto run = [&]() {
    robust::faults::ScopedFaults scope(
        "seed=11,rate=0.6,sites=serve.breaker.trip");
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    std::vector<std::string> trace;
    for (std::size_t t = 0; t < 10; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      trace.push_back(std::to_string(r.solution_hash));
      for (std::size_t c = 0; c < wc.num_cells; ++c)
        trace.push_back(service.allocation(c).step);
    }
    return trace;
  };

  std::vector<std::string> serial_trace;
  {
    rt::ForceSerialGuard serial;
    serial_trace = run();
  }
  EXPECT_EQ(serial_trace, run());
}

}  // namespace
}  // namespace rcr::serve
