// Brownout controller: hysteresis state machine on deterministic pressure
// sequences, dwell/transition accounting, and the integration path where a
// sustained ADMM outage storm escalates the service into BROWNOUT.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/overload.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::serve {
namespace {

BrownoutConfig fast_config() {
  BrownoutConfig bc;
  bc.enabled = true;
  bc.enter_brownout = 0.5;
  bc.enter_shed = 0.9;
  bc.exit_margin = 0.5;
  bc.enter_ticks = 2;
  bc.exit_ticks = 2;
  return bc;
}

// Pressure here comes only from degraded_fraction; depth 1.0 and zero
// latency keep the other two terms quiet.
void feed(BrownoutController& ctl, double degraded_fraction,
          std::size_t ticks) {
  for (std::size_t i = 0; i < ticks; ++i)
    ctl.observe(degraded_fraction, 1.0, 0.0);
}

TEST(BrownoutController, DisabledNeverLeavesNormal) {
  BrownoutConfig bc = fast_config();
  bc.enabled = false;
  BrownoutController ctl(bc);
  feed(ctl, 1.0, 10);
  EXPECT_EQ(ctl.state(), BrownoutState::kNormal);
  EXPECT_EQ(ctl.transitions(), 0u);
}

TEST(BrownoutController, EntersBrownoutAfterSustainedPressure) {
  BrownoutController ctl(fast_config());
  feed(ctl, 0.6, 1);
  EXPECT_EQ(ctl.state(), BrownoutState::kNormal) << "one tick is not enough";
  feed(ctl, 0.6, 1);
  EXPECT_EQ(ctl.state(), BrownoutState::kBrownout);
  EXPECT_EQ(ctl.transitions(), 1u);
}

TEST(BrownoutController, PressureBlipDoesNotTrip) {
  BrownoutController ctl(fast_config());
  feed(ctl, 0.6, 1);
  feed(ctl, 0.0, 1);  // dip resets the enter counter
  feed(ctl, 0.6, 1);
  EXPECT_EQ(ctl.state(), BrownoutState::kNormal);
}

TEST(BrownoutController, EscalatesToShedAndRecoversStepwise) {
  BrownoutController ctl(fast_config());
  feed(ctl, 0.6, 2);
  ASSERT_EQ(ctl.state(), BrownoutState::kBrownout);
  feed(ctl, 0.95, 2);
  ASSERT_EQ(ctl.state(), BrownoutState::kShed);
  // Recovery is stepwise: SHED -> BROWNOUT -> NORMAL, each gated by
  // exit_ticks below the exit threshold (enter x exit_margin).
  feed(ctl, 0.3, 2);  // below 0.9*0.5 = 0.45
  EXPECT_EQ(ctl.state(), BrownoutState::kBrownout);
  feed(ctl, 0.1, 2);  // below 0.5*0.5 = 0.25
  EXPECT_EQ(ctl.state(), BrownoutState::kNormal);
  EXPECT_EQ(ctl.transitions(), 4u);
}

TEST(BrownoutController, MiddleZoneHoldsBrownout) {
  BrownoutController ctl(fast_config());
  feed(ctl, 0.6, 2);
  ASSERT_EQ(ctl.state(), BrownoutState::kBrownout);
  feed(ctl, 0.4, 20);  // above exit (0.25), below shed-entry (0.9)
  EXPECT_EQ(ctl.state(), BrownoutState::kBrownout);
  EXPECT_EQ(ctl.transitions(), 1u);
}

TEST(BrownoutController, DwellCountsSumToObservedTicks) {
  BrownoutController ctl(fast_config());
  feed(ctl, 0.6, 2);
  feed(ctl, 0.95, 2);
  feed(ctl, 0.0, 4);
  EXPECT_EQ(ctl.dwell(BrownoutState::kNormal) +
                ctl.dwell(BrownoutState::kBrownout) +
                ctl.dwell(BrownoutState::kShed),
            8u);
  EXPECT_GT(ctl.dwell(BrownoutState::kShed), 0u);
}

TEST(BrownoutController, LatencyPressureUsesEwmaAgainstBudget) {
  BrownoutConfig bc = fast_config();
  bc.latency_budget_us = 1000.0;
  BrownoutController ctl(bc);
  // Latency at 2x budget with zero degradation still builds pressure.
  ctl.observe(0.0, 1.0, 2000.0);
  ctl.observe(0.0, 1.0, 2000.0);
  EXPECT_EQ(ctl.state(), BrownoutState::kBrownout);
}

TEST(BrownoutController, StateNamesAreStable) {
  EXPECT_STREQ(to_string(BrownoutState::kNormal), "normal");
  EXPECT_STREQ(to_string(BrownoutState::kBrownout), "brownout");
  EXPECT_STREQ(to_string(BrownoutState::kShed), "shed");
}

WorkloadConfig storm_workload() {
  WorkloadConfig wc;
  wc.num_cells = 4;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.period_ticks = 16;
  wc.coherence_ticks = 1;  // fresh channels: no cache shortcuts
  wc.seed = 1234;
  return wc;
}

TEST(Brownout, AdmmOutageStormEscalatesTheService) {
  // rate=1 on serve.admm.outage degrades every cell every tick; the
  // degraded_fraction pressure trips BROWNOUT after enter_ticks.
  const WorkloadConfig wc = storm_workload();
  ServiceConfig sc;
  sc.cache_enabled = false;
  sc.brownout.enabled = true;
  sc.brownout.enter_brownout = 0.5;
  sc.brownout.enter_shed = 2.0;  // unreachable: stay in BROWNOUT
  sc.brownout.enter_ticks = 2;
  sc.brownout.exit_ticks = 2;

  robust::faults::ScopedFaults scope(
      "seed=7,rate=1,sites=serve.admm.outage");
  obs::ScopedMetrics metrics;
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);
  for (std::size_t t = 0; t < 6; ++t) {
    wl.advance(t);
    service.tick(t, wl);
  }
  EXPECT_EQ(service.brownout().state(), BrownoutState::kBrownout);
  EXPECT_GE(service.brownout().transitions(), 1u);

  bool saw_transition_counter = false;
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == "rcr.brownout.transitions" && s.value >= 1.0)
      saw_transition_counter = true;
  EXPECT_TRUE(saw_transition_counter);
}

TEST(Brownout, EscalationIsBitExactSerialVsParallel) {
  const WorkloadConfig wc = storm_workload();
  ServiceConfig sc;
  sc.cache_enabled = false;
  sc.brownout.enabled = true;
  sc.brownout.enter_brownout = 0.5;
  sc.brownout.enter_shed = 2.0;
  sc.brownout.enter_ticks = 2;
  sc.brownout.exit_ticks = 2;

  const auto run = [&]() {
    robust::faults::ScopedFaults scope(
        "seed=7,rate=1,sites=serve.admm.outage");
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    std::vector<std::string> trace;
    for (std::size_t t = 0; t < 8; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      trace.push_back(std::to_string(r.solution_hash) + ":" +
                      std::to_string(r.brownout_state));
    }
    return trace;
  };

  std::vector<std::string> serial_trace;
  {
    rt::ForceSerialGuard serial;
    serial_trace = run();
  }
  EXPECT_EQ(serial_trace, run());
}

}  // namespace
}  // namespace rcr::serve
