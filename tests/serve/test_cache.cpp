// ShardedLruCache and problem-signature semantics.
#include "rcr/serve/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "rcr/serve/signature.hpp"
#include "rcr/serve/workload.hpp"

namespace rcr::serve {
namespace {

TEST(ShardedLruCache, MissThenHit) {
  ShardedLruCache<int> cache(64, 4);
  int out = 0;
  EXPECT_FALSE(cache.get(1, 0, out));
  cache.put(1, 0, 41);
  EXPECT_TRUE(cache.get(1, 1, out));
  EXPECT_EQ(out, 41);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST(ShardedLruCache, PutOverwritesAndRefreshesStamp) {
  ShardedLruCache<int> cache(64, 1);
  cache.put(5, 0, 1);
  cache.put(5, 3, 2);
  int out = 0;
  ASSERT_TRUE(cache.get(5, 4, out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ShardedLruCache, EvictsSmallestStampDeterministically) {
  // One shard of capacity 2: inserting a third key evicts the entry with
  // the smallest stamp regardless of insertion order.
  ShardedLruCache<int> cache(2, 1);
  cache.put(10, 5, 1);
  cache.put(20, 3, 2);  // oldest stamp
  cache.put(30, 7, 3);  // evicts key 20
  int out = 0;
  EXPECT_TRUE(cache.get(10, 8, out));
  EXPECT_FALSE(cache.get(20, 9, out));
  EXPECT_TRUE(cache.get(30, 10, out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, GetRefreshesRecency) {
  ShardedLruCache<int> cache(2, 1);
  cache.put(1, 0, 1);
  cache.put(2, 1, 2);
  int out = 0;
  ASSERT_TRUE(cache.get(1, 2, out));  // key 1 now newer than key 2
  cache.put(3, 3, 3);                 // evicts key 2
  EXPECT_TRUE(cache.get(1, 4, out));
  EXPECT_FALSE(cache.get(2, 5, out));
}

TEST(ShardedLruCache, StampTiesBreakBySmallerKey) {
  ShardedLruCache<int> cache(2, 1);
  cache.put(7, 1, 1);
  cache.put(9, 1, 2);   // same stamp
  cache.put(11, 2, 3);  // tie on stamp 1 -> evict smaller key 7
  int out = 0;
  EXPECT_FALSE(cache.get(7, 3, out));
  EXPECT_TRUE(cache.get(9, 4, out));
}

TEST(ShardedLruCache, DeferredOpsApplyInStampOrderAtFlush) {
  // Committed: {k1@1, k2@2} in a full capacity-2 shard.  In the deferred
  // window a get of k1 (stamp 10) is buffered AFTER a put of k3 (stamp 5)
  // in call order -- but flush applies ops in STAMP order, exactly as a
  // serial run would have issued them: insert k3@5 evicts k1 (min stamp 1),
  // then the k1@10 refresh finds nothing and is a no-op.
  ShardedLruCache<int> cache(2, 1);
  cache.put(1, 1, 11);
  cache.put(2, 2, 22);

  cache.begin_deferred();
  int out = 0;
  ASSERT_TRUE(cache.get(1, 10, out));  // buffered refresh, call order first
  cache.put(3, 5, 33);                 // buffered insert, smaller stamp
  cache.flush();

  EXPECT_FALSE(cache.get(1, 20, out)) << "k1 must be the eviction victim";
  EXPECT_TRUE(cache.get(2, 21, out));
  EXPECT_TRUE(cache.get(3, 22, out));
  EXPECT_EQ(out, 33);
}

TEST(ShardedLruCache, DeferredRefreshBeforeInsertProtectsTheEntry) {
  // Same shape, but the refresh stamp precedes the insert stamp: flush
  // applies k1@3 first, so the insert at stamp 5 evicts k2 (now oldest).
  ShardedLruCache<int> cache(2, 1);
  cache.put(1, 1, 11);
  cache.put(2, 2, 22);

  cache.begin_deferred();
  int out = 0;
  ASSERT_TRUE(cache.get(1, 3, out));
  cache.put(3, 5, 33);
  cache.flush();

  EXPECT_TRUE(cache.get(1, 20, out));
  EXPECT_FALSE(cache.get(2, 21, out)) << "k2 must be the eviction victim";
  EXPECT_TRUE(cache.get(3, 22, out));
}

TEST(ShardedLruCache, DeferredWindowReadsTheCommittedMapOnly) {
  ShardedLruCache<int> cache(4, 1);
  cache.put(1, 0, 11);

  cache.begin_deferred();
  int out = 0;
  cache.put(2, 1, 22);
  // A racing reader must see the frozen pre-window map regardless of
  // schedule: the buffered insert is invisible until flush.
  EXPECT_FALSE(cache.get(2, 2, out));
  EXPECT_TRUE(cache.get(1, 3, out));
  EXPECT_EQ(cache.stats().size, 1u);
  cache.flush();

  EXPECT_TRUE(cache.get(2, 4, out));
  EXPECT_EQ(out, 22);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ShardedLruCache, FlushOutsideDeferredWindowIsANoOp) {
  ShardedLruCache<int> cache(4, 1);
  cache.put(1, 0, 11);
  cache.flush();
  int out = 0;
  EXPECT_TRUE(cache.get(1, 1, out));
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ShardedLruCache, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache<int> cache(100, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ShardedLruCache, ConcurrentPutsAndGetsStayConsistent) {
  ShardedLruCache<std::uint64_t> cache(1024, 16);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeysPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t]() {
      for (std::size_t i = 0; i < kKeysPerThread; ++i) {
        const std::uint64_t key = t * kKeysPerThread + i;
        cache.put(key, key, key * 3);
        std::uint64_t out = 0;
        if (cache.get(key, key + 1, out)) {
          EXPECT_EQ(out, key * 3);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, kThreads * kKeysPerThread);
  EXPECT_LE(s.size, cache.capacity());
}

TEST(ProblemSignature, IdenticalProblemsShareSignature) {
  WorkloadConfig wc;
  wc.num_cells = 1;
  DiurnalWorkload a(wc), b(wc);
  EXPECT_EQ(problem_signature(a.cell(0)), problem_signature(b.cell(0)));
}

TEST(ProblemSignature, SubQuantumPerturbationKeepsSignature) {
  WorkloadConfig wc;
  wc.num_cells = 1;
  DiurnalWorkload wl(wc);
  RraProblem p = wl.cell(0);
  const std::uint64_t before = problem_signature(p);
  // A 0.01% gain change is far below the default 0.05 log2 quantum --
  // except at a bucket boundary, which the fixture gains do not sit on.
  p.gain(0, 0) *= 1.0001;
  EXPECT_EQ(before, problem_signature(p));
}

TEST(ProblemSignature, MaterialChangesChangeSignature) {
  WorkloadConfig wc;
  wc.num_cells = 1;
  DiurnalWorkload wl(wc);
  const RraProblem& base = wl.cell(0);
  const std::uint64_t sig = problem_signature(base);

  RraProblem bigger_gain = base;
  bigger_gain.gain(0, 0) *= 2.0;
  EXPECT_NE(sig, problem_signature(bigger_gain));

  RraProblem more_power = base;
  more_power.total_power *= 2.0;
  EXPECT_NE(sig, problem_signature(more_power));

  RraProblem tighter_qos = base;
  tighter_qos.min_rate[0] += 1.0;
  EXPECT_NE(sig, problem_signature(tighter_qos));
}

TEST(ProblemSignature, QuantumControlsSensitivity) {
  WorkloadConfig wc;
  wc.num_cells = 1;
  DiurnalWorkload wl(wc);
  RraProblem p = wl.cell(0);
  RraProblem drifted = p;
  for (std::size_t u = 0; u < drifted.num_users(); ++u)
    for (std::size_t rb = 0; rb < drifted.num_rbs(); ++rb)
      drifted.gain(u, rb) *= 1.02;  // ~0.0286 in log2

  SignatureConfig coarse;
  coarse.gain_log2_quantum = 1.0;  // buckets of a full octave
  EXPECT_EQ(problem_signature(p, coarse), problem_signature(drifted, coarse));

  SignatureConfig fine;
  fine.gain_log2_quantum = 1e-4;
  EXPECT_NE(problem_signature(p, fine), problem_signature(drifted, fine));
}

TEST(ProblemSignature, ZeroGainUsesSentinelBucket) {
  EXPECT_EQ(quantize_gain(0.0, 0.05),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(quantize_gain(-1.0, 0.05),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_NE(quantize_gain(1e-300, 0.05),
            std::numeric_limits<std::int64_t>::min());
}

}  // namespace
}  // namespace rcr::serve
