// Chaos suite for the allocation service (`ctest -L chaos`): seeded fault
// storms over the serve.* injection sites must leave every cell with a
// usable answer, and the rcr.fallback.depth{chain=serve.cell} gauge must
// agree with the degradation trail of the chain run that set it.
//
// The serve.* sites are keyed by the per-cell tick stamp, so the injection
// stream is a pure function of (seed, site, stamp) -- bit-identical across
// thread counts.  Failures print the RCR_FAULTS replay spec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "rcr/obs/metrics.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::serve {
namespace {

namespace faults = robust::faults;

#define RCR_CHAOS_TRACE() SCOPED_TRACE("replay: RCR_FAULTS=\"" + \
                                       faults::replay_spec() + "\"")

WorkloadConfig chaos_workload() {
  WorkloadConfig wc;
  wc.num_cells = 4;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 4;
  wc.period_ticks = 16;
  wc.coherence_ticks = 4;
  wc.seed = 77;
  return wc;
}

// Every cell must answer: full-size allocation, finite power on the budget,
// usable status, and a step drawn from the service's published set.
void expect_cell_answers(const AllocationService& service,
                         const DiurnalWorkload& wl) {
  for (std::size_t c = 0; c < service.num_cells(); ++c) {
    const CellAllocation& a = service.allocation(c);
    SCOPED_TRACE("cell " + std::to_string(c) + " step '" + a.step + "'");
    EXPECT_TRUE(a.status.usable()) << a.status.to_string();
    ASSERT_EQ(a.assignment.size(), wl.cell(c).num_rbs());
    ASSERT_EQ(a.power.size(), wl.cell(c).num_rbs());
    double total = 0.0;
    for (double p : a.power) {
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, wl.cell(c).total_power, 1e-9);
    EXPECT_TRUE(std::isfinite(a.sum_rate));
    EXPECT_TRUE(a.step == "cache" || a.step == "admm" ||
                a.step == "waterfill" || a.step == "equal-power" ||
                a.step == "deadline-fill")
        << a.step;
  }
}

// Count of failed chain steps recorded in a cell's degradation trail.
std::size_t failed_steps(const CellAllocation& a) {
  std::size_t n = 0;
  for (const std::string& line : a.status.trail)
    if (line.find("' failed") != std::string::npos) ++n;
  return n;
}

double fallback_depth_gauge() {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == "rcr.fallback.depth" && s.label_value == "serve.cell")
      return s.value;
  return -1.0;
}

TEST(ServeChaos, TotalOutageStormStillAnswersEveryCell) {
  // rate=1 over serve.*: the cache never hits, the ADMM head and the
  // water-filling middle both fail on every cell -- the whole fleet rides
  // the equal-power floor, and every cell still answers.
  faults::ScopedFaults scope("seed=20260809,rate=1,sites=serve.*");
  RCR_CHAOS_TRACE();
  const WorkloadConfig wc = chaos_workload();
  DiurnalWorkload wl(wc);
  AllocationService service(ServiceConfig{}, wc.num_cells);
  for (std::size_t t = 0; t < 6; ++t) {
    wl.advance(t);
    const TickReport report = service.tick(t, wl);
    EXPECT_EQ(report.cells, wc.num_cells);
    EXPECT_EQ(report.degraded, wc.num_cells);
    EXPECT_EQ(report.cache_hits, 0u);
    expect_cell_answers(service, wl);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      EXPECT_EQ(service.allocation(c).step, "equal-power");
      EXPECT_EQ(failed_steps(service.allocation(c)), 2u)
          << service.allocation(c).status.to_string();
    }
  }
}

TEST(ServeChaos, FractionalStormNeverDropsACell) {
  faults::ScopedFaults scope("seed=20260809,rate=0.3,sites=serve.*");
  RCR_CHAOS_TRACE();
  const WorkloadConfig wc = chaos_workload();
  DiurnalWorkload wl(wc);
  AllocationService service(ServiceConfig{}, wc.num_cells);
  std::size_t degraded = 0;
  for (std::size_t t = 0; t < 12; ++t) {
    wl.advance(t);
    degraded += service.tick(t, wl).degraded;
    expect_cell_answers(service, wl);
  }
  EXPECT_GT(degraded, 0u) << "rate=0.3 over 48 cell-ticks never degraded";
}

TEST(ServeChaos, InjectionsActuallyFireAtEveryServeSite) {
  // The head sites can be targeted alone.  serve.waterfill.outage only
  // guards the waterfill *step*, which never runs while the ADMM head
  // succeeds -- so it is exercised under the serve.* storm, where the
  // injected head outage pushes every cell into the waterfill step.
  for (const char* site : {"serve.admm.outage", "serve.cache.drop"}) {
    faults::ScopedFaults scope(std::string("seed=1,rate=1,sites=") + site);
    RCR_CHAOS_TRACE();
    const WorkloadConfig wc = chaos_workload();
    DiurnalWorkload wl(wc);
    AllocationService service(ServiceConfig{}, wc.num_cells);
    for (std::size_t t = 0; t < 2; ++t) {
      wl.advance(t);
      service.tick(t, wl);
    }
    EXPECT_GT(faults::injection_count(site), 0u) << site;
  }
  {
    faults::ScopedFaults scope("seed=1,rate=1,sites=serve.*");
    RCR_CHAOS_TRACE();
    const WorkloadConfig wc = chaos_workload();
    DiurnalWorkload wl(wc);
    AllocationService service(ServiceConfig{}, wc.num_cells);
    for (std::size_t t = 0; t < 2; ++t) {
      wl.advance(t);
      service.tick(t, wl);
    }
    EXPECT_GT(faults::injection_count("serve.waterfill.outage"), 0u);
  }
}

TEST(ServeChaos, FallbackDepthGaugeMatchesTheDegradationTrail) {
  // The gauge holds the depth of the most recent serve.cell chain run.
  // Under a serial tick with the cache disabled, that is cell N-1's chain:
  // depth = 1 (the winning step) + one per failed step in its trail.
  rt::ForceSerialGuard serial;
  obs::ScopedMetrics metrics;
  const WorkloadConfig wc = chaos_workload();

  {  // Clean ticks: the ADMM head answers everywhere, depth stays 1.
    DiurnalWorkload wl(wc);
    ServiceConfig sc;
    sc.cache_enabled = false;
    AllocationService service(sc, wc.num_cells);
    for (std::size_t t = 0; t < 3; ++t) {
      wl.advance(t);
      service.tick(t, wl);
      const CellAllocation& last = service.allocation(wc.num_cells - 1);
      EXPECT_EQ(failed_steps(last), 0u) << last.status.to_string();
      EXPECT_EQ(fallback_depth_gauge(), 1.0);
    }
  }

  {  // Fault storm: depth must track the last cell's trail tick by tick.
    faults::ScopedFaults scope("seed=20260809,rate=0.5,sites=serve.*");
    RCR_CHAOS_TRACE();
    DiurnalWorkload wl(wc);
    ServiceConfig sc;
    sc.cache_enabled = false;
    AllocationService service(sc, wc.num_cells);
    bool saw_depth_beyond_head = false;
    for (std::size_t t = 0; t < 8; ++t) {
      wl.advance(t);
      service.tick(t, wl);
      const CellAllocation& last = service.allocation(wc.num_cells - 1);
      const double expected = 1.0 + static_cast<double>(failed_steps(last));
      EXPECT_EQ(fallback_depth_gauge(), expected)
          << "tick " << t << ": " << last.status.to_string();
      if (expected > 1.0) saw_depth_beyond_head = true;
    }
    EXPECT_TRUE(saw_depth_beyond_head)
        << "storm never pushed the last cell past the chain head";
  }
}

TEST(ServeChaos, KeyedInjectionKeepsTicksBitExactSerialVsParallel) {
  // serve.* sites key on the cell-tick stamp, so a fault storm must not
  // break the service's cross-thread determinism witness.
  const WorkloadConfig wc = chaos_workload();
  const char* spec = "seed=20260809,rate=0.5,sites=serve.*";

  std::vector<std::uint64_t> serial_hashes, parallel_hashes;
  {
    rt::ForceSerialGuard serial;
    faults::ScopedFaults scope(spec);
    RCR_CHAOS_TRACE();
    DiurnalWorkload wl(wc);
    AllocationService service(ServiceConfig{}, wc.num_cells);
    for (std::size_t t = 0; t < 8; ++t) {
      wl.advance(t);
      serial_hashes.push_back(service.tick(t, wl).solution_hash);
    }
  }
  {
    faults::ScopedFaults scope(spec);
    RCR_CHAOS_TRACE();
    DiurnalWorkload wl(wc);
    AllocationService service(ServiceConfig{}, wc.num_cells);
    for (std::size_t t = 0; t < 8; ++t) {
      wl.advance(t);
      parallel_hashes.push_back(service.tick(t, wl).solution_hash);
    }
  }
  EXPECT_EQ(serial_hashes, parallel_hashes);
}

}  // namespace
}  // namespace rcr::serve
