// AllocationService tick-loop semantics: workload determinism, cache
// behavior over coherence intervals, warm-start iteration savings,
// bit-exactness across thread counts, and deadline degradation.
#include "rcr/serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rcr/rt/parallel.hpp"
#include "rcr/rt/thread_pool.hpp"

namespace rcr::serve {
namespace {

WorkloadConfig small_workload() {
  WorkloadConfig wc;
  wc.num_cells = 4;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 4;
  wc.period_ticks = 16;
  wc.coherence_ticks = 4;
  wc.seed = 77;
  return wc;
}

TEST(DiurnalWorkload, DeterministicAcrossInstances) {
  const WorkloadConfig wc = small_workload();
  DiurnalWorkload a(wc), b(wc);
  for (std::size_t t = 0; t < 12; ++t) {
    a.advance(t);
    b.advance(t);
    for (std::size_t c = 0; c < a.num_cells(); ++c) {
      ASSERT_EQ(a.cell(c).num_users(), b.cell(c).num_users());
      for (std::size_t u = 0; u < a.cell(c).num_users(); ++u)
        for (std::size_t rb = 0; rb < a.cell(c).num_rbs(); ++rb)
          ASSERT_EQ(a.cell(c).gain(u, rb), b.cell(c).gain(u, rb));
    }
  }
}

TEST(DiurnalWorkload, ProblemHoldsStillInsideCoherenceInterval) {
  WorkloadConfig wc = small_workload();
  wc.min_users = 3;
  wc.peak_users = 3;  // flat population: only fading can change a problem
  DiurnalWorkload wl(wc);
  std::size_t unchanged_ticks = 0;
  for (std::size_t t = 1; t < 16; ++t) {
    wl.advance(t);
    for (std::size_t c = 0; c < wl.num_cells(); ++c)
      if (!wl.changed(c)) ++unchanged_ticks;
  }
  // coherence_ticks = 4: each cell refreshes on 1 tick in 4.
  EXPECT_GT(unchanged_ticks, 0u);
}

TEST(DiurnalWorkload, TargetTracksDiurnalCurve) {
  const WorkloadConfig wc = small_workload();
  DiurnalWorkload wl(wc);
  std::size_t lo = wc.peak_users, hi = wc.min_users;
  for (std::size_t t = 0; t < wc.period_ticks; ++t) {
    const std::size_t target = wl.target_users(0, t);
    lo = std::min(lo, target);
    hi = std::max(hi, target);
  }
  EXPECT_EQ(lo, wc.min_users);
  EXPECT_EQ(hi, wc.peak_users);
}

TEST(DiurnalWorkload, NonConsecutiveTickThrows) {
  DiurnalWorkload wl(small_workload());
  wl.advance(1);
  EXPECT_THROW(wl.advance(5), std::invalid_argument);
}

TEST(AllocationService, EveryCellGetsABudgetFeasibleAllocation) {
  const WorkloadConfig wc = small_workload();
  DiurnalWorkload wl(wc);
  ServiceConfig sc;
  AllocationService service(sc, wc.num_cells);
  for (std::size_t t = 0; t < 8; ++t) {
    wl.advance(t);
    const TickReport report = service.tick(t, wl);
    EXPECT_EQ(report.cells, wc.num_cells);
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const CellAllocation& a = service.allocation(c);
      ASSERT_EQ(a.power.size(), wc.num_rbs);
      ASSERT_EQ(a.assignment.size(), wc.num_rbs);
      double total = 0.0;
      for (double p : a.power) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_LE(total, wc.total_power * (1.0 + 1e-9));
      EXPECT_TRUE(a.status.usable());
      EXPECT_GT(a.sum_rate, 0.0);
    }
  }
}

TEST(AllocationService, CacheHitsOnUnchangedProblems) {
  WorkloadConfig wc = small_workload();
  wc.min_users = 3;
  wc.peak_users = 3;
  wc.coherence_ticks = 4;
  DiurnalWorkload wl(wc);
  ServiceConfig sc;
  AllocationService service(sc, wc.num_cells);

  std::size_t hits = 0;
  for (std::size_t t = 0; t < 12; ++t) {
    wl.advance(t);
    hits += service.tick(t, wl).cache_hits;
  }
  // Flat population + 4-tick coherence: roughly 3 of every 4 cell-ticks are
  // identical problems, and every identical problem must hit.
  EXPECT_GT(hits, 12 * wc.num_cells / 2);
  EXPECT_GT(service.cache_stats().hit_rate(), 0.5);
}

TEST(AllocationService, CacheHitReturnsSameAllocationAsSolve) {
  WorkloadConfig wc = small_workload();
  wc.min_users = 3;
  wc.peak_users = 3;
  DiurnalWorkload wl(wc);
  // Warm start off in both: cold solves of bit-identical problems are
  // bit-identical, so a cached allocation must equal a fresh solve exactly.
  // (With warm start on, the two services' warm states evolve differently --
  // the cached service solves less often -- so allocations agree only to
  // solver tolerance, not bit-for-bit.)
  ServiceConfig with_cache;
  with_cache.warm_start = false;
  ServiceConfig no_cache;
  no_cache.warm_start = false;
  no_cache.cache_enabled = false;
  AllocationService cached(with_cache, wc.num_cells);
  AllocationService uncached(no_cache, wc.num_cells);
  for (std::size_t t = 0; t < 8; ++t) {
    wl.advance(t);
    const TickReport rc = cached.tick(t, wl);
    const TickReport ru = uncached.tick(t, wl);
    EXPECT_EQ(rc.solution_hash, ru.solution_hash)
        << "tick " << t << ": cache changed the allocation";
  }
}

TEST(AllocationService, WarmStartCutsIterations) {
  // Block-fading workload (4-tick coherence): inside a coherence interval a
  // warm solve resumes at its own fixed point and converges in a couple of
  // iterations, and on refresh ticks the AR(1) drift keeps the warm state
  // close.  Cache disabled so every cell-tick actually solves.
  const WorkloadConfig wc = small_workload();
  ServiceConfig warm_cfg;
  warm_cfg.cache_enabled = false;
  ServiceConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;

  std::size_t warm_iters = 0, cold_iters = 0, warm_accepted = 0;
  {
    DiurnalWorkload wl(wc);
    AllocationService service(warm_cfg, wc.num_cells);
    for (std::size_t t = 0; t < 24; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      if (t > 0) {
        warm_iters += r.total_iterations;
        warm_accepted += r.warm_accepted;
      }
    }
  }
  {
    DiurnalWorkload wl(wc);
    AllocationService service(cold_cfg, wc.num_cells);
    for (std::size_t t = 0; t < 24; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      if (t > 0) cold_iters += r.total_iterations;
    }
  }
  EXPECT_GT(warm_accepted, 0u);
  // The soak bench's acceptance bar is < 0.5; this fixture measures ~0.41,
  // asserted with headroom.
  EXPECT_LT(static_cast<double>(warm_iters),
            0.6 * static_cast<double>(cold_iters))
      << "warm " << warm_iters << " vs cold " << cold_iters;
}

TEST(AllocationService, SolutionHashBitExactSerialVsParallel) {
  const WorkloadConfig wc = small_workload();
  ServiceConfig sc;

  std::vector<std::uint64_t> serial_hashes, parallel_hashes;
  {
    rt::ForceSerialGuard serial;
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    for (std::size_t t = 0; t < 10; ++t) {
      wl.advance(t);
      serial_hashes.push_back(service.tick(t, wl).solution_hash);
    }
  }
  {
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    for (std::size_t t = 0; t < 10; ++t) {
      wl.advance(t);
      parallel_hashes.push_back(service.tick(t, wl).solution_hash);
    }
  }
  EXPECT_EQ(serial_hashes, parallel_hashes);
}

TEST(AllocationService, CacheEvictionOrderBitExactSerialVsParallel) {
  // Eviction pressure: 8 cells funnel into a single-shard capacity-4 cache,
  // so every tick evicts.  Which entry survives decides later hits, so any
  // schedule dependence in the eviction order (a racing get's stamp refresh
  // vs a racing put's victim scan) shows up as diverging hit counts or
  // solution hashes.  The deferred two-phase protocol makes both runs
  // bit-identical.
  WorkloadConfig wc = small_workload();
  wc.num_cells = 8;
  ServiceConfig sc;
  sc.cache_capacity = 4;
  sc.cache_shards = 1;

  struct TickTrace {
    std::uint64_t hash;
    std::size_t hits;
    bool operator==(const TickTrace&) const = default;
  };
  const auto run = [&]() {
    std::vector<TickTrace> trace;
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    for (std::size_t t = 0; t < 24; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      trace.push_back(TickTrace{r.solution_hash, r.cache_hits});
    }
    const CacheStats s = service.cache_stats();
    EXPECT_GT(s.evictions, 0u) << "fixture lost its eviction pressure";
    EXPECT_GT(s.hits, 0u);
    trace.push_back(TickTrace{s.evictions, s.hits});
    trace.push_back(TickTrace{s.insertions, s.misses});
    return trace;
  };

  std::vector<TickTrace> serial_trace;
  {
    rt::ForceSerialGuard serial;
    serial_trace = run();
  }
  const std::vector<TickTrace> parallel_trace = run();
  EXPECT_EQ(serial_trace, parallel_trace);
}

TEST(AllocationService, ExpiredDeadlineStillAnswersEveryCell) {
  const WorkloadConfig wc = small_workload();
  DiurnalWorkload wl(wc);
  ServiceConfig sc;
  sc.tick_deadline_s = 1e-9;  // expires before any chain step can run
  sc.cache_enabled = false;
  AllocationService service(sc, wc.num_cells);
  const TickReport report = service.tick(0, wl);
  EXPECT_EQ(report.cells, wc.num_cells);
  for (std::size_t c = 0; c < wc.num_cells; ++c) {
    const CellAllocation& a = service.allocation(c);
    ASSERT_EQ(a.power.size(), wc.num_rbs);
    double total = 0.0;
    for (double p : a.power) total += p;
    // Degraded cells fall back to a full-budget split somewhere along the
    // chain; the answer is always present and budget-feasible.
    EXPECT_LE(total, wc.total_power * (1.0 + 1e-9));
    EXPECT_FALSE(a.step.empty());
  }
}

TEST(AllocationService, FleetSizeMismatchThrows) {
  DiurnalWorkload wl(small_workload());
  ServiceConfig sc;
  AllocationService service(sc, 2);  // workload has 4 cells
  EXPECT_THROW(service.tick(0, wl), std::invalid_argument);
}

}  // namespace
}  // namespace rcr::serve
