// Quantization boundary semantics for serve::signature.
//
// The log2 gain grid buckets with llround, so each bucket k covers the
// half-open log2 interval ((k - 0.5) q, (k + 0.5) q] with the midpoint
// rounding away from zero.  The documented contract for adjacent gains that
// straddle a bucket midpoint is DISTINCT keys: once two gains sit on
// opposite sides of the midpoint by more than the log/exp round-trip error
// (~1e-12 in the log2 domain), they land in different buckets and therefore
// different signatures.  Gains inside one bucket share the key.  In every
// case the mapping is a pure function of the bits of the gain -- the same
// double always produces the same bucket, so cache keys never flap.
#include "rcr/serve/signature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>

#include "rcr/numerics/rng.hpp"
#include "rcr/testkit/gen.hpp"

namespace rcr::serve {
namespace {

// Single-user problem: the active-set fingerprint is constant, so signature
// differences isolate the gain quantization.
RraProblem one_user_problem(double gain) {
  RraProblem problem;
  problem.gain = num::Matrix(1, 1);
  problem.gain(0, 0) = gain;
  problem.total_power = 1.0;
  problem.min_rate = Vec{0.0};
  return problem;
}

TEST(SignatureBoundary, GainsWithinOneBucketShareTheKey) {
  const SignatureConfig config;
  const double q = config.gain_log2_quantum;
  // Bucket 10 spans log2 in (10q - q/2, 10q + q/2]; probe well inside it.
  const double lo = std::exp2((10.0 - 0.4) * q);
  const double hi = std::exp2((10.0 + 0.4) * q);
  EXPECT_EQ(quantize_gain(lo, q), 10);
  EXPECT_EQ(quantize_gain(hi, q), 10);
  EXPECT_EQ(problem_signature(one_user_problem(lo), config),
            problem_signature(one_user_problem(hi), config));
}

TEST(SignatureBoundary, GainsStraddlingABucketMidpointGetDistinctKeys) {
  const SignatureConfig config;
  const double q = config.gain_log2_quantum;
  // 1e-9 in the log2 domain: far above the exp2/log2 round-trip error,
  // far below the quantum.  These are "adjacent" at channel-estimation
  // scale (~3e-10 dB apart) yet must separate deterministically.
  const double below = std::exp2((10.5 - 1e-9) * q);
  const double above = std::exp2((10.5 + 1e-9) * q);
  EXPECT_EQ(quantize_gain(below, q), 10);
  EXPECT_EQ(quantize_gain(above, q), 11);
  EXPECT_NE(problem_signature(one_user_problem(below), config),
            problem_signature(one_user_problem(above), config));
}

TEST(SignatureBoundary, AdjacentDoublesAtTheMidpointAreDeterministic) {
  // At one-ULP spacing the log/exp round trip can place both doubles in
  // either bucket -- the contract is only that each maps to ONE bucket,
  // every time, and the pair never lands more than one bucket apart.
  const double q = SignatureConfig{}.gain_log2_quantum;
  const double mid = std::exp2(10.5 * q);
  const double below = std::nextafter(mid, 0.0);
  const double above = std::nextafter(mid, std::numeric_limits<double>::max());
  const std::int64_t bucket_mid = quantize_gain(mid, q);
  const std::int64_t bucket_below = quantize_gain(below, q);
  const std::int64_t bucket_above = quantize_gain(above, q);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(quantize_gain(mid, q), bucket_mid);
    ASSERT_EQ(quantize_gain(below, q), bucket_below);
    ASSERT_EQ(quantize_gain(above, q), bucket_above);
  }
  EXPECT_LE(bucket_below, bucket_above);
  EXPECT_LE(bucket_above - bucket_below, 1);
  EXPECT_TRUE(bucket_mid == 10 || bucket_mid == 11);
}

TEST(SignatureBoundary, NonPositiveGainsMapToTheSentinelBucket) {
  const double q = SignatureConfig{}.gain_log2_quantum;
  const std::int64_t sentinel = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(quantize_gain(0.0, q), sentinel);
  EXPECT_EQ(quantize_gain(-1.0, q), sentinel);
  EXPECT_EQ(quantize_gain(std::numeric_limits<double>::quiet_NaN(), q),
            sentinel);
  // The smallest positive double stays a real (deeply negative) bucket.
  EXPECT_NE(quantize_gain(std::numeric_limits<double>::denorm_min(), q),
            sentinel);
}

TEST(SignatureBoundary, TenThousandRandomProblemsDoNotCollide) {
  // Collision sanity over problems whose gains span six orders of
  // magnitude: 10k draws into a 64-bit space should stay collision-free
  // (expected collisions ~ 1e4^2 / 2^65 ~ 3e-12).
  const auto gen_gain = testkit::gen_log_uniform(1e-3, 1e3);
  num::Rng rng(0xb0d1ull);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t users = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const std::size_t rbs = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    RraProblem problem;
    problem.gain = num::Matrix(users, rbs);
    for (std::size_t u = 0; u < users; ++u)
      for (std::size_t rb = 0; rb < rbs; ++rb)
        problem.gain(u, rb) = gen_gain.sample(rng);
    problem.total_power = rng.uniform(0.5, 4.0);
    problem.min_rate = Vec(users, 0.0);
    for (std::size_t u = 0; u < users; ++u)
      problem.min_rate[u] = rng.uniform(0.0, 0.05);
    seen.insert(problem_signature(problem));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SignatureBoundary, SignatureIsStableAcrossRepeatedEvaluation) {
  const auto gen_gain = testkit::gen_log_uniform(1e-2, 1e2);
  num::Rng rng(0x51617ull);
  RraProblem problem;
  problem.gain = num::Matrix(3, 5);
  for (std::size_t u = 0; u < 3; ++u)
    for (std::size_t rb = 0; rb < 5; ++rb)
      problem.gain(u, rb) = gen_gain.sample(rng);
  problem.total_power = 2.0;
  problem.min_rate = Vec{0.01, 0.0, 0.02};
  const std::uint64_t first = problem_signature(problem);
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(problem_signature(problem), first);
}

}  // namespace
}  // namespace rcr::serve
