// Telemetry coverage for warm-start rejection: feeding a corrupted or
// wrong-dimension warm state into admm_box_qp / solve_sdp /
// solve_qcqp_barrier must (a) run bit-identical to the cold path and
// (b) tick rcr.warm.rejected{solver=admm|sdp|qcqp} exactly once per
// rejected solve -- never the accepted counter, and vice versa.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "rcr/numerics/rng.hpp"
#include "rcr/obs/metrics.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"

namespace rcr::opt {
namespace {

double solver_counter(const std::string& name, const std::string& solver) {
  for (const obs::MetricSample& s : obs::metrics_snapshot())
    if (s.name == name && s.label_value == solver) return s.value;
  return 0.0;
}

double rejected(const std::string& solver) {
  return solver_counter("rcr.warm.rejected", solver);
}

double accepted(const std::string& solver) {
  return solver_counter("rcr.warm.accepted", solver);
}

Matrix random_spd(std::size_t n, num::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      p(i, j) = acc + (i == j ? static_cast<double>(n) : 0.0);
    }
  return p;
}

TEST(WarmRejectCounters, AdmmCorruptStatesTickRejectedAndStayCold) {
  obs::ScopedMetrics metrics;
  num::Rng rng(31);
  const std::size_t n = 6;
  const Matrix p = random_spd(n, rng);
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0), hi(n, 1.0);
  AdmmOptions options;
  const BoxQpFactor factor = prefactor_box_qp(p, options.rho);

  const AdmmResult cold = admm_box_qp(p, factor, q, lo, hi, options);
  EXPECT_EQ(rejected("admm"), 0.0);

  AdmmWarmState wrong_size;
  wrong_size.z.assign(n + 1, 0.0);
  wrong_size.u.assign(n + 1, 0.0);
  AdmmWarmState nan_state;
  nan_state.z.assign(n, 0.0);
  nan_state.u.assign(n, 0.0);
  nan_state.z[1] = std::numeric_limits<double>::quiet_NaN();
  AdmmWarmState inf_state;
  inf_state.z.assign(n, 0.0);
  inf_state.u.assign(n, 0.0);
  inf_state.u[0] = std::numeric_limits<double>::infinity();

  double expected = 0.0;
  for (AdmmWarmState* bad : {&wrong_size, &nan_state, &inf_state}) {
    const AdmmResult r = admm_box_qp(p, factor, q, lo, hi, options, bad);
    EXPECT_EQ(r.warm_use, WarmUse::kRejected);
    EXPECT_EQ(r.iterations, cold.iterations);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(r.x[i], cold.x[i]);
    EXPECT_EQ(rejected("admm"), ++expected);
  }
  EXPECT_EQ(accepted("admm"), 0.0)
      << "a rejected warm state must never count as accepted";
}

TEST(WarmRejectCounters, SdpCorruptStatesTickRejectedAndStayCold) {
  obs::ScopedMetrics metrics;
  num::Rng rng(32);
  const std::size_t n = 4;
  Sdp sdp;
  sdp.c = random_spd(n, rng);
  sdp.a_eq.push_back(Matrix::identity(n));
  sdp.b_eq = {1.0};
  SdpOptions options;

  SdpWorkspace ws_cold;
  const SdpResult cold = solve_sdp(sdp, options, ws_cold);
  EXPECT_EQ(rejected("sdp"), 0.0);

  SdpWarmState wrong_size;
  wrong_size.z.assign(n, 0.0);  // dim_y is n*n
  wrong_size.u.assign(n, 0.0);
  SdpWarmState nan_state;
  nan_state.z.assign(n * n, 0.0);
  nan_state.u.assign(n * n, 0.0);
  nan_state.u[2] = std::numeric_limits<double>::quiet_NaN();

  double expected = 0.0;
  for (SdpWarmState* bad : {&wrong_size, &nan_state}) {
    SdpWorkspace ws;
    const SdpResult r = solve_sdp(sdp, options, ws, bad);
    EXPECT_EQ(r.warm_use, WarmUse::kRejected);
    EXPECT_EQ(r.iterations, cold.iterations);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(r.x(i, j), cold.x(i, j));
    EXPECT_EQ(rejected("sdp"), ++expected);
  }
  EXPECT_EQ(accepted("sdp"), 0.0);
}

TEST(WarmRejectCounters, QcqpCorruptStatesTickRejectedAndStayCold) {
  obs::ScopedMetrics metrics;
  Qcqp problem;
  problem.objective.p = Matrix{{2.0, 0.0}, {0.0, 2.0}};
  problem.objective.q = {-2.0, -2.0};
  QuadraticForm ball;
  ball.p = Matrix{{2.0, 0.0}, {0.0, 2.0}};
  ball.q = {0.0, 0.0};
  ball.r = -1.0;
  problem.constraints.push_back(ball);
  BarrierOptions options;

  const QcqpResult cold = solve_qcqp_barrier(problem);
  EXPECT_EQ(rejected("qcqp"), 0.0);

  BarrierWarmState wrong_size;
  wrong_size.x = {0.0, 0.0, 0.0};
  wrong_size.t = 10.0;
  BarrierWarmState infeasible;
  infeasible.x = {2.0, 2.0};  // outside the unit ball
  infeasible.t = 100.0;
  BarrierWarmState nan_state;
  nan_state.x = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  nan_state.t = 10.0;

  double expected = 0.0;
  for (BarrierWarmState* bad : {&wrong_size, &infeasible, &nan_state}) {
    const QcqpResult r = solve_qcqp_barrier(problem, options, bad);
    EXPECT_EQ(r.warm_use, WarmUse::kRejected);
    EXPECT_EQ(r.newton_iterations, cold.newton_iterations);
    for (std::size_t i = 0; i < cold.x.size(); ++i)
      ASSERT_EQ(r.x[i], cold.x[i]);
    EXPECT_EQ(rejected("qcqp"), ++expected);
  }
  EXPECT_EQ(accepted("qcqp"), 0.0);
}

TEST(WarmRejectCounters, AcceptedWarmStatesTickTheOtherCounter) {
  obs::ScopedMetrics metrics;
  num::Rng rng(33);
  const std::size_t n = 5;
  const Matrix p = random_spd(n, rng);
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0), hi(n, 1.0);
  AdmmOptions options;
  const BoxQpFactor factor = prefactor_box_qp(p, options.rho);

  AdmmWarmState warm;
  admm_box_qp(p, factor, q, lo, hi, options, &warm);  // cold, writes back
  EXPECT_EQ(accepted("admm"), 0.0);
  admm_box_qp(p, factor, q, lo, hi, options, &warm);  // resumes
  EXPECT_EQ(accepted("admm"), 1.0);
  EXPECT_EQ(rejected("admm"), 0.0);
}

}  // namespace
}  // namespace rcr::opt
