// Warm-start contract tests for the solvers the serve layer resumes:
// admm_box_qp, solve_sdp, and the QCQP barrier.
//
// The contract (src/opt/include/rcr/opt/warm.hpp):
//  - a null or empty warm state is exactly the cold path (bit-identical);
//  - a warm state equal to the cold initialization is bit-identical to cold;
//  - a valid warm state from a nearby solve reaches the same fixed point
//    within tolerance, in (typically far) fewer iterations;
//  - a corrupted state (wrong size, NaN, Inf) is rejected: the solve runs
//    cold bit-identically, records WarmUse::kRejected, and notes the trail;
//  - the state is cleared after a numerical failure (chaos leg).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/qcqp.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/robust/fault_injection.hpp"

namespace rcr::opt {
namespace {

Matrix random_spd(std::size_t n, num::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      p(i, j) = acc + (i == j ? static_cast<double>(n) : 0.0);
    }
  return p;
}

struct BoxQpCase {
  Matrix p;
  BoxQpFactor factor;
  Vec q, lo, hi;
  AdmmOptions options;
};

BoxQpCase make_box_qp(std::uint64_t seed) {
  num::Rng rng(seed);
  BoxQpCase c;
  const std::size_t n = 6;
  c.p = random_spd(n, rng);
  c.q = rng.normal_vec(n);
  c.lo.assign(n, -1.0);
  c.hi.assign(n, 1.0);
  c.options.tolerance = 1e-10;
  c.factor = prefactor_box_qp(c.p, c.options.rho);
  return c;
}

TEST(AdmmWarmStart, NullAndEmptyAreColdBitIdentical) {
  BoxQpCase c = make_box_qp(7);
  const AdmmResult cold =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options);
  const AdmmResult null_warm =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, nullptr);
  AdmmWarmState empty;
  const AdmmResult empty_warm =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &empty);

  EXPECT_EQ(null_warm.warm_use, WarmUse::kCold);
  EXPECT_EQ(empty_warm.warm_use, WarmUse::kCold);
  EXPECT_EQ(cold.iterations, null_warm.iterations);
  EXPECT_EQ(cold.iterations, empty_warm.iterations);
  for (std::size_t i = 0; i < cold.x.size(); ++i) {
    EXPECT_EQ(cold.x[i], null_warm.x[i]);
    EXPECT_EQ(cold.x[i], empty_warm.x[i]);
  }
  // Writeback happened: the empty state is now the converged one.
  EXPECT_FALSE(empty.empty());
}

TEST(AdmmWarmStart, WarmStateEqualToColdInitIsBitIdentical) {
  BoxQpCase c = make_box_qp(8);
  const std::size_t n = c.q.size();
  // Cold init is z = clamp(0, lo, hi) = 0 (box spans 0), u = 0.
  AdmmWarmState warm;
  warm.z.assign(n, 0.0);
  warm.u.assign(n, 0.0);
  const AdmmResult cold =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options);
  const AdmmResult warmed =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &warm);
  EXPECT_EQ(warmed.warm_use, WarmUse::kAccepted);
  EXPECT_EQ(cold.iterations, warmed.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cold.x[i], warmed.x[i]);
}

TEST(AdmmWarmStart, WarmResolveReachesSameFixedPointInFewerIterations) {
  BoxQpCase c = make_box_qp(9);
  AdmmWarmState warm;
  const AdmmResult first =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &warm);
  ASSERT_TRUE(first.converged);
  ASSERT_FALSE(warm.empty());

  // Drift the linear term slightly (the serve regime: AR(1) channel drift).
  Vec q2 = c.q;
  for (double& v : q2) v *= 1.01;
  const AdmmResult cold2 =
      admm_box_qp(c.p, c.factor, q2, c.lo, c.hi, c.options);
  const AdmmResult warm2 =
      admm_box_qp(c.p, c.factor, q2, c.lo, c.hi, c.options, &warm);
  ASSERT_TRUE(cold2.converged);
  ASSERT_TRUE(warm2.converged);
  EXPECT_EQ(warm2.warm_use, WarmUse::kAccepted);
  EXPECT_LT(warm2.iterations, cold2.iterations);
  for (std::size_t i = 0; i < q2.size(); ++i)
    EXPECT_NEAR(cold2.x[i], warm2.x[i], 1e-6);
}

TEST(AdmmWarmStart, CorruptedStateRejectedAndColdBitIdentical) {
  BoxQpCase c = make_box_qp(10);
  const std::size_t n = c.q.size();
  const AdmmResult cold =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options);

  const auto expect_rejected_cold = [&](AdmmWarmState& bad) {
    const AdmmResult r =
        admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &bad);
    EXPECT_EQ(r.warm_use, WarmUse::kRejected);
    EXPECT_EQ(cold.iterations, r.iterations);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cold.x[i], r.x[i]);
    ASSERT_FALSE(r.status.trail.empty());
    EXPECT_NE(r.status.trail.front().find("warm state rejected"),
              std::string::npos);
  };

  AdmmWarmState wrong_size;
  wrong_size.z.assign(n + 1, 0.0);
  wrong_size.u.assign(n + 1, 0.0);
  expect_rejected_cold(wrong_size);

  AdmmWarmState nan_state;
  nan_state.z.assign(n, 0.0);
  nan_state.u.assign(n, 0.0);
  nan_state.z[1] = std::numeric_limits<double>::quiet_NaN();
  expect_rejected_cold(nan_state);

  AdmmWarmState inf_state;
  inf_state.z.assign(n, 0.0);
  inf_state.u.assign(n, 0.0);
  inf_state.u[0] = std::numeric_limits<double>::infinity();
  expect_rejected_cold(inf_state);
}

TEST(AdmmWarmStart, ChaosNanIterateClearsWarmState) {
  BoxQpCase c = make_box_qp(11);
  AdmmWarmState warm;
  const AdmmResult seed_run =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &warm);
  ASSERT_TRUE(seed_run.converged);
  ASSERT_FALSE(warm.empty());

  {
    robust::faults::FaultConfig fc;
    fc.enabled = true;
    fc.seed = 3;
    fc.sites = "admm.iterate.nan";
    fc.max_per_site = 1;
    robust::faults::ScopedFaults scoped(fc);
    const AdmmResult faulted =
        admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &warm);
    ASSERT_EQ(faulted.status.code, robust::StatusCode::kNumericalFailure);
  }
  // The poisoned state must not leak into the next tick.
  EXPECT_TRUE(warm.empty());

  // And the next solve runs cold, bit-identical to a fresh cold solve.
  const AdmmResult after =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options, &warm);
  EXPECT_EQ(after.warm_use, WarmUse::kCold);
  const AdmmResult cold =
      admm_box_qp(c.p, c.factor, c.q, c.lo, c.hi, c.options);
  EXPECT_EQ(cold.iterations, after.iterations);
  for (std::size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_EQ(cold.x[i], after.x[i]);
}

Sdp make_sdp(std::uint64_t seed) {
  num::Rng rng(seed);
  const std::size_t n = 4;
  Sdp sdp;
  sdp.c = random_spd(n, rng);
  Matrix a_tr(n, n);
  for (std::size_t i = 0; i < n; ++i) a_tr(i, i) = 1.0;
  sdp.a_eq.push_back(a_tr);
  sdp.b_eq = {1.0};
  return sdp;
}

TEST(SdpWarmStart, EmptyStateIsColdAndWrittenBack) {
  const Sdp sdp = make_sdp(21);
  SdpOptions options;
  SdpWorkspace ws_cold, ws_warm;
  const SdpResult cold = solve_sdp(sdp, options, ws_cold);
  SdpWarmState warm;
  const SdpResult warmed = solve_sdp(sdp, options, ws_warm, &warm);
  EXPECT_EQ(warmed.warm_use, WarmUse::kCold);
  EXPECT_EQ(cold.iterations, warmed.iterations);
  for (std::size_t i = 0; i < sdp.dim(); ++i)
    for (std::size_t j = 0; j < sdp.dim(); ++j)
      EXPECT_EQ(cold.x(i, j), warmed.x(i, j));
  EXPECT_FALSE(warm.empty());
  EXPECT_EQ(warm.z.size(), sdp.dim() * sdp.dim());
}

TEST(SdpWarmStart, WarmResolveConvergesFasterOnDriftedProblem) {
  const Sdp sdp = make_sdp(22);
  SdpOptions options;
  SdpWorkspace ws;
  SdpWarmState warm;
  const SdpResult first = solve_sdp(sdp, options, ws, &warm);
  ASSERT_TRUE(first.converged);

  Sdp drifted = sdp;
  for (std::size_t i = 0; i < drifted.c.rows(); ++i)
    for (std::size_t j = 0; j < drifted.c.cols(); ++j)
      drifted.c(i, j) *= 1.01;
  SdpWorkspace ws_cold;
  const SdpResult cold = solve_sdp(drifted, options, ws_cold);
  const SdpResult warmed = solve_sdp(drifted, options, ws, &warm);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warmed.converged);
  EXPECT_EQ(warmed.warm_use, WarmUse::kAccepted);
  EXPECT_LT(warmed.iterations, cold.iterations);
  for (std::size_t i = 0; i < sdp.dim(); ++i)
    for (std::size_t j = 0; j < sdp.dim(); ++j)
      EXPECT_NEAR(cold.x(i, j), warmed.x(i, j), 1e-4);
}

TEST(SdpWarmStart, CorruptedStateRejectedColdBitIdentical) {
  const Sdp sdp = make_sdp(23);
  SdpOptions options;
  SdpWorkspace ws_cold, ws_warm;
  const SdpResult cold = solve_sdp(sdp, options, ws_cold);

  SdpWarmState bad;
  bad.z.assign(sdp.dim() * sdp.dim(), 0.0);
  bad.u.assign(sdp.dim() * sdp.dim(), 0.0);
  bad.u[2] = std::numeric_limits<double>::quiet_NaN();
  const SdpResult r = solve_sdp(sdp, options, ws_warm, &bad);
  EXPECT_EQ(r.warm_use, WarmUse::kRejected);
  EXPECT_EQ(cold.iterations, r.iterations);
  for (std::size_t i = 0; i < sdp.dim(); ++i)
    for (std::size_t j = 0; j < sdp.dim(); ++j)
      EXPECT_EQ(cold.x(i, j), r.x(i, j));
}

Qcqp make_qcqp() {
  // min (x-1)^2 + (y-1)^2  s.t.  x^2 + y^2 <= 1  (active at the optimum).
  Qcqp problem;
  problem.objective.p = Matrix{{2.0, 0.0}, {0.0, 2.0}};
  problem.objective.q = {-2.0, -2.0};
  QuadraticForm ball;
  ball.p = Matrix{{2.0, 0.0}, {0.0, 2.0}};
  ball.q = {0.0, 0.0};
  ball.r = -1.0;
  problem.constraints.push_back(ball);
  return problem;
}

TEST(QcqpWarmStart, EmptyStateIsColdAndWrittenBack) {
  const Qcqp problem = make_qcqp();
  BarrierOptions options;
  const QcqpResult cold = solve_qcqp_barrier(problem);
  BarrierWarmState warm;
  const QcqpResult warmed = solve_qcqp_barrier(problem, options, &warm);
  EXPECT_EQ(warmed.warm_use, WarmUse::kCold);
  EXPECT_EQ(cold.newton_iterations, warmed.newton_iterations);
  for (std::size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_EQ(cold.x[i], warmed.x[i]);
  EXPECT_FALSE(warm.empty());
  EXPECT_GT(warm.t, 0.0);
}

TEST(QcqpWarmStart, WarmResolveSkipsPhaseIAndConvergesFaster) {
  const Qcqp problem = make_qcqp();
  BarrierOptions options;
  BarrierWarmState warm;
  const QcqpResult first = solve_qcqp_barrier(problem, options, &warm);
  ASSERT_TRUE(first.converged);

  Qcqp drifted = problem;
  drifted.objective.q = {-2.02, -1.98};
  const QcqpResult cold = solve_qcqp_barrier(drifted);
  const QcqpResult warmed = solve_qcqp_barrier(drifted, options, &warm);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warmed.converged);
  EXPECT_EQ(warmed.warm_use, WarmUse::kAccepted);
  EXPECT_LT(warmed.newton_iterations, cold.newton_iterations);
  for (std::size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_NEAR(cold.x[i], warmed.x[i], 1e-5);
}

TEST(QcqpWarmStart, InfeasibleWarmPointRejectedColdBitIdentical) {
  const Qcqp problem = make_qcqp();
  BarrierOptions options;
  const QcqpResult cold = solve_qcqp_barrier(problem);

  BarrierWarmState outside;
  outside.x = {2.0, 2.0};  // outside the unit ball: not strictly feasible
  outside.t = 100.0;
  const QcqpResult r = solve_qcqp_barrier(problem, options, &outside);
  EXPECT_EQ(r.warm_use, WarmUse::kRejected);
  EXPECT_EQ(cold.newton_iterations, r.newton_iterations);
  for (std::size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_EQ(cold.x[i], r.x[i]);

  BarrierWarmState nan_state;
  nan_state.x = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  nan_state.t = 10.0;
  const QcqpResult r2 = solve_qcqp_barrier(problem, options, &nan_state);
  EXPECT_EQ(r2.warm_use, WarmUse::kRejected);
  EXPECT_EQ(cold.newton_iterations, r2.newton_iterations);
}

}  // namespace
}  // namespace rcr::opt
