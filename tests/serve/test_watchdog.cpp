// Solve-output watchdog: NaN-poisoned answers are quarantined and served
// from the last-known-good snapshot, corrupted results never enter the
// warm cache, and quarantined cells recover after the window drains.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "rcr/obs/obs.hpp"
#include "rcr/robust/fault_injection.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/serve/overload.hpp"
#include "rcr/serve/service.hpp"

namespace rcr::serve {
namespace {

WorkloadConfig watchdog_workload() {
  WorkloadConfig wc;
  wc.num_cells = 3;
  wc.num_rbs = 6;
  wc.min_users = 2;
  wc.peak_users = 3;
  wc.period_ticks = 16;
  wc.coherence_ticks = 4;
  wc.seed = 555;
  return wc;
}

ServiceConfig watchdog_config() {
  ServiceConfig sc;
  sc.watchdog.enabled = true;
  sc.watchdog.quarantine_ticks = 2;
  return sc;
}

bool all_finite(const CellAllocation& alloc) {
  if (!std::isfinite(alloc.sum_rate)) return false;
  for (double p : alloc.power)
    if (!std::isfinite(p)) return false;
  return true;
}

bool trail_has(const robust::Status& status, const char* needle) {
  for (const std::string& line : status.trail)
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

TEST(Watchdog, CorruptStormQuarantinesEveryCellYetServesFinite) {
  const WorkloadConfig wc = watchdog_workload();
  ServiceConfig sc = watchdog_config();
  sc.cache_enabled = false;

  robust::faults::ScopedFaults scope(
      "seed=3,rate=1,sites=serve.solve.corrupt");
  obs::ScopedMetrics metrics;
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);

  std::size_t quarantine_steps = 0;
  for (std::size_t t = 0; t < 6; ++t) {
    wl.advance(t);
    const TickReport r = service.tick(t, wl);
    EXPECT_EQ(r.quarantined + r.admitted, wc.num_cells) << "tick " << t;
    for (std::size_t c = 0; c < wc.num_cells; ++c) {
      const CellAllocation& a = service.allocation(c);
      EXPECT_TRUE(all_finite(a))
          << "cell " << c << " tick " << t << " leaked a NaN";
      EXPECT_TRUE(a.status.usable());
      if (a.step == "quarantine") {
        ++quarantine_steps;
        EXPECT_TRUE(trail_has(a.status, "degraded:quarantined"));
        EXPECT_EQ(a.status.code, robust::StatusCode::kDegraded);
      }
    }
  }
  EXPECT_GT(quarantine_steps, 0u);

  double trips = 0.0, quarantined = 0.0;
  for (const obs::MetricSample& s : obs::metrics_snapshot()) {
    if (s.name == "rcr.watchdog.trips") trips += s.value;
    if (s.name == "rcr.serve.quarantined") quarantined += s.value;
  }
  EXPECT_GT(trips, 0.0);
  EXPECT_GT(quarantined, 0.0);
}

TEST(Watchdog, CorruptedAnswersNeverEnterTheCache) {
  const WorkloadConfig wc = watchdog_workload();
  ServiceConfig sc = watchdog_config();
  sc.cache_enabled = true;

  robust::faults::ScopedFaults scope(
      "seed=3,rate=1,sites=serve.solve.corrupt");
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);
  std::size_t cache_hits = 0;
  for (std::size_t t = 0; t < 6; ++t) {
    wl.advance(t);
    cache_hits += service.tick(t, wl).cache_hits;
    for (std::size_t c = 0; c < wc.num_cells; ++c)
      EXPECT_TRUE(all_finite(service.allocation(c)));
  }
  EXPECT_EQ(cache_hits, 0u)
      << "a NaN-poisoned allocation was served from the cache";
}

TEST(Watchdog, QuarantinedCellsRecoverAfterTheWindow) {
  const WorkloadConfig wc = watchdog_workload();
  ServiceConfig sc = watchdog_config();
  sc.cache_enabled = false;

  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);
  {
    // One poisoned tick, then the storm lifts.
    robust::faults::ScopedFaults scope(
        "seed=3,rate=1,sites=serve.solve.corrupt");
    wl.advance(0);
    const TickReport r = service.tick(0, wl);
    EXPECT_EQ(r.quarantined, wc.num_cells);
  }
  // Quarantine holds for quarantine_ticks, then clean solves resume.
  for (std::size_t t = 1; t <= sc.watchdog.quarantine_ticks; ++t) {
    wl.advance(t);
    service.tick(t, wl);
    for (std::size_t c = 0; c < wc.num_cells; ++c)
      EXPECT_EQ(service.allocation(c).step, "quarantine")
          << "cell " << c << " tick " << t;
  }
  const std::size_t after = sc.watchdog.quarantine_ticks + 1;
  wl.advance(after);
  const TickReport r = service.tick(after, wl);
  EXPECT_EQ(r.quarantined, 0u);
  for (std::size_t c = 0; c < wc.num_cells; ++c) {
    EXPECT_NE(service.allocation(c).step, "quarantine") << "cell " << c;
    EXPECT_TRUE(all_finite(service.allocation(c)));
  }
}

TEST(Watchdog, DisabledWatchdogMeansTheSiteNeverFires) {
  const WorkloadConfig wc = watchdog_workload();
  ServiceConfig sc;  // watchdog off: serve.solve.corrupt must be inert
  sc.cache_enabled = false;

  robust::faults::ScopedFaults scope(
      "seed=3,rate=1,sites=serve.solve.corrupt");
  DiurnalWorkload wl(wc);
  AllocationService service(sc, wc.num_cells);
  for (std::size_t t = 0; t < 3; ++t) {
    wl.advance(t);
    const TickReport r = service.tick(t, wl);
    EXPECT_EQ(r.quarantined, 0u);
    for (std::size_t c = 0; c < wc.num_cells; ++c)
      EXPECT_TRUE(all_finite(service.allocation(c)));
  }
  EXPECT_EQ(robust::faults::injection_count("serve.solve.corrupt"), 0u);
}

TEST(Watchdog, QuarantineBitExactSerialVsParallel) {
  const WorkloadConfig wc = watchdog_workload();
  ServiceConfig sc = watchdog_config();
  sc.cache_enabled = false;

  const auto run = [&]() {
    robust::faults::ScopedFaults scope(
        "seed=3,rate=0.5,sites=serve.solve.corrupt");
    DiurnalWorkload wl(wc);
    AllocationService service(sc, wc.num_cells);
    std::vector<std::string> trace;
    for (std::size_t t = 0; t < 10; ++t) {
      wl.advance(t);
      const TickReport r = service.tick(t, wl);
      trace.push_back(std::to_string(r.solution_hash) + ":" +
                      std::to_string(r.quarantined));
      for (std::size_t c = 0; c < wc.num_cells; ++c)
        trace.push_back(service.allocation(c).step);
    }
    return trace;
  };

  std::vector<std::string> serial_trace;
  {
    rt::ForceSerialGuard serial;
    serial_trace = run();
  }
  EXPECT_EQ(serial_trace, run());
}

}  // namespace
}  // namespace rcr::serve
