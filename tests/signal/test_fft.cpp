#include "rcr/signal/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rcr/numerics/rng.hpp"

namespace rcr::sig {
namespace {

CVec random_signal(std::size_t n, num::Rng& rng) {
  CVec out(n);
  for (auto& v : out) v = {rng.normal(), rng.normal()};
  return out;
}

TEST(Fft, EmptyInput) { EXPECT_TRUE(fft({}).empty()); }

TEST(Fft, SingleSampleIsIdentity) {
  const CVec x = {{3.0, -1.0}};
  const CVec y = fft(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_NEAR(std::abs(y[0] - x[0]), 0.0, 1e-15);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CVec x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const CVec y = fft(x);
  for (const auto& v : y) EXPECT_NEAR(std::abs(v - std::complex<double>(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneHitsOneBin) {
  const std::size_t n = 64;
  CVec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(k) /
                       static_cast<double>(n);
    x[k] = {std::cos(ang), std::sin(ang)};
  }
  const CVec y = fft(x);
  EXPECT_NEAR(std::abs(y[5]), static_cast<double>(n), 1e-9);
  for (std::size_t m = 0; m < n; ++m) {
    if (m != 5) {
      EXPECT_NEAR(std::abs(y[m]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, MatchesReferenceDftPowerOfTwo) {
  num::Rng rng(1);
  const CVec x = random_signal(32, rng);
  EXPECT_LT(max_abs_diff(fft(x), dft_reference(x)), 1e-10);
}

TEST(Fft, MatchesReferenceDftNonPowerOfTwo) {
  num::Rng rng(2);
  for (std::size_t n : {3u, 5u, 12u, 17u, 31u, 100u}) {
    const CVec x = random_signal(n, rng);
    EXPECT_LT(max_abs_diff(fft(x), dft_reference(x)), 1e-9)
        << "length " << n;
  }
}

TEST(Fft, LinearityHolds) {
  num::Rng rng(3);
  const CVec a = random_signal(16, rng);
  const CVec b = random_signal(16, rng);
  CVec sum(16);
  for (std::size_t i = 0; i < 16; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const CVec fa = fft(a);
  const CVec fb = fft(b);
  const CVec fsum = fft(sum);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(std::abs(fsum[i] - (2.0 * fa[i] + 3.0 * fb[i])), 0.0, 1e-10);
}

TEST(Fft, ParsevalEnergyConservation) {
  num::Rng rng(4);
  const CVec x = random_signal(64, rng);
  const CVec y = fft(x);
  double ex = 0.0;
  double ey = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * 64.0, 1e-8);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  num::Rng rng(GetParam());
  const CVec x = random_signal(GetParam(), rng);
  EXPECT_LT(max_abs_diff(ifft(fft(x)), x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 7, 16, 27, 64, 100, 255,
                                           256));

TEST(Rfft, LengthAndConjugateSymmetryConsistency) {
  num::Rng rng(5);
  Vec x(20);
  for (double& v : x) v = rng.normal();
  const CVec half = rfft(x);
  EXPECT_EQ(half.size(), 11u);
  // Must match the first half of the full complex FFT.
  const CVec full = fft(to_complex(x));
  for (std::size_t k = 0; k < half.size(); ++k)
    EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-10);
}

class RfftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftRoundTrip, IrfftInvertsRfft) {
  num::Rng rng(GetParam() + 100);
  Vec x(GetParam());
  for (double& v : x) v = rng.normal();
  const Vec back = irfft(rfft(x), x.size());
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RfftRoundTrip,
                         ::testing::Values(2, 3, 8, 9, 32, 33, 128));

TEST(Irfft, RejectsInconsistentLengths) {
  const CVec spec(5);  // consistent with n = 8 or 9 only
  EXPECT_THROW(irfft(spec, 10), std::invalid_argument);
  EXPECT_THROW(irfft(spec, 0), std::invalid_argument);
}

TEST(Helpers, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(64), 64u);
}

TEST(Helpers, MagnitudeAndRealPart) {
  const CVec x = {{3.0, 4.0}, {0.0, -1.0}};
  EXPECT_EQ(real_part(x), (Vec{3.0, 0.0}));
  const Vec m = magnitude(x);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
}

TEST(Helpers, MaxAbsDiffSizeMismatchIsInfinite) {
  EXPECT_TRUE(std::isinf(max_abs_diff(CVec(3), CVec(4))));
}

}  // namespace
}  // namespace rcr::sig
