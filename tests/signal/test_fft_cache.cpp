// FFT twiddle/chirp table cache: concurrent first-touch safety, LRU
// eviction correctness, the RCR_FFT_CACHE capacity accessor, and the
// allocation-free warm path of the in-place transforms.
#include <gtest/gtest.h>

#include <complex>
#include <thread>
#include <vector>

#include "rcr/rt/alloc_probe.hpp"
#include "rcr/signal/fft.hpp"

namespace sig = rcr::sig;
using sig::CVec;

namespace {

CVec test_signal(std::size_t n, unsigned seed) {
  CVec x(n);
  // Cheap deterministic pseudo-noise; the cache logic under test is
  // insensitive to the distribution.
  std::uint64_t state = 0x9e3779b97f4a7c15ull + seed;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double re = static_cast<double>(state >> 40) / 16777216.0 - 0.5;
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double im = static_cast<double>(state >> 40) / 16777216.0 - 0.5;
    x[i] = {re, im};
  }
  return x;
}

}  // namespace

TEST(FftCache, CapacityIsPositiveAndStable) {
  const std::size_t cap = sig::fft_table_cache_capacity();
  EXPECT_GE(cap, 1u);
  EXPECT_EQ(cap, sig::fft_table_cache_capacity());
}

TEST(FftCache, ConcurrentFirstTouchProducesCorrectTables) {
  // Several threads race to first-touch the *same* fresh sizes (power-of-two
  // and Bluestein); whichever generation wins the insert, every thread must
  // read back a table set that yields the exact DFT.  Run under TSan in CI.
  const std::vector<std::size_t> sizes = {193, 256, 137, 128, 101, 64};
  std::vector<std::vector<CVec>> results(6);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      std::vector<CVec> mine;
      for (std::size_t n : sizes) mine.push_back(sig::fft(test_signal(n, 3)));
      results[t] = std::move(mine);
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const CVec reference = sig::dft_reference(test_signal(sizes[s], 3));
    for (unsigned t = 0; t < 6; ++t) {
      ASSERT_EQ(results[t][s].size(), sizes[s]);
      EXPECT_LT(sig::max_abs_diff(results[t][s], reference),
                1e-8 * static_cast<double>(sizes[s]))
          << "size " << sizes[s] << " thread " << t;
      // All threads see identical bits regardless of who built the tables.
      EXPECT_EQ(sig::max_abs_diff(results[t][s], results[0][s]), 0.0);
    }
  }
}

TEST(FftCache, EvictedSizesRegenerateIdentically) {
  // Sweep more distinct sizes than the cache holds, then return to the
  // first size: its tables were evicted and must regenerate to the same
  // bits (table generation is deterministic).
  const std::size_t first = 21;
  const CVec x = test_signal(first, 7);
  const CVec before = sig::fft(x);

  const std::size_t cap = sig::fft_table_cache_capacity();
  for (std::size_t k = 0; k < cap + 8; ++k) {
    const std::size_t n = 23 + 2 * k;  // odd: all Bluestein
    sig::fft(test_signal(n, 1));
  }

  const CVec after = sig::fft(x);
  EXPECT_EQ(sig::max_abs_diff(before, after), 0.0);
}

TEST(FftCache, InplaceTransformIsAllocationFreeWarm) {
  sig::FftWorkspace ws;
  CVec pow2 = test_signal(128, 2);
  CVec odd = test_signal(84, 2);
  CVec buf;

  // Warm both code paths (radix-2 and Bluestein), the inverse tables
  // (separate cache entries), and the workspace.
  buf = pow2;
  sig::fft_inplace(buf, ws);
  buf = odd;
  sig::fft_inplace(buf, ws);
  sig::ifft_inplace(buf, ws);

  const rcr::rt::AllocDelta delta;
  for (int r = 0; r < 10; ++r) {
    buf.assign(pow2.begin(), pow2.end());
    sig::fft_inplace(buf, ws);
    buf.assign(odd.begin(), odd.end());
    sig::fft_inplace(buf, ws);
    sig::ifft_inplace(buf, ws);
  }
  EXPECT_EQ(delta.delta(), 0u);
}

TEST(FftCache, InplaceMatchesAllocatingTransform) {
  sig::FftWorkspace ws;
  for (std::size_t n : {1u, 2u, 7u, 16u, 21u, 64u, 100u}) {
    const CVec x = test_signal(n, 11);
    const CVec expect_f = sig::fft(x);
    const CVec expect_i = sig::ifft(x);
    CVec buf = x;
    sig::fft_inplace(buf, ws);
    EXPECT_EQ(sig::max_abs_diff(buf, expect_f), 0.0) << "fft n=" << n;
    buf = x;
    sig::ifft_inplace(buf, ws);
    EXPECT_EQ(sig::max_abs_diff(buf, expect_i), 0.0) << "ifft n=" << n;
  }
}
