// Classic DFT theorems as property tests: these pin down the exact
// conventions (sign of the exponent, normalization) that Sec. IV shows
// libraries disagree about.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rcr/numerics/rng.hpp"
#include "rcr/signal/fft.hpp"
#include "rcr/signal/waveform.hpp"

namespace rcr::sig {
namespace {

CVec random_signal(std::size_t n, num::Rng& rng) {
  CVec out(n);
  for (auto& v : out) v = {rng.normal(), rng.normal()};
  return out;
}

class FftTheorems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftTheorems, CircularShiftTheorem) {
  // fft(shift(x, k))[m] = fft(x)[m] * e^{-2*pi*i*m*k/N}.
  const std::size_t n = GetParam();
  num::Rng rng(n);
  Vec x(n);
  for (double& v : x) v = rng.normal();
  const std::size_t k = n / 3 + 1;

  const CVec fx = fft(to_complex(x));
  const CVec fs = fft(to_complex(circular_shift(x, static_cast<std::ptrdiff_t>(k))));
  for (std::size_t m = 0; m < n; ++m) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(m) *
                       static_cast<double>(k) / static_cast<double>(n);
    const std::complex<double> expected =
        fx[m] * std::complex<double>(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(fs[m] - expected), 0.0, 1e-9) << "bin " << m;
  }
}

TEST_P(FftTheorems, ConvolutionTheorem) {
  // ifft(fft(x) .* fft(y)) equals the circular convolution of x and y.
  const std::size_t n = GetParam();
  num::Rng rng(n + 100);
  const CVec x = random_signal(n, rng);
  const CVec y = random_signal(n, rng);

  // Direct circular convolution.
  CVec direct(n, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      direct[(i + j) % n] += x[i] * y[j];

  const CVec fx = fft(x);
  const CVec fy = fft(y);
  CVec prod(n);
  for (std::size_t m = 0; m < n; ++m) prod[m] = fx[m] * fy[m];
  const CVec via_fft = ifft(prod);

  EXPECT_LT(max_abs_diff(via_fft, direct), 1e-8 * (1.0 + static_cast<double>(n)));
}

TEST_P(FftTheorems, ConjugationMirrorsSpectrum) {
  // fft(conj(x))[m] = conj(fft(x)[(-m) mod N]).
  const std::size_t n = GetParam();
  num::Rng rng(n + 200);
  const CVec x = random_signal(n, rng);
  CVec xc(n);
  for (std::size_t i = 0; i < n; ++i) xc[i] = std::conj(x[i]);
  const CVec fx = fft(x);
  const CVec fxc = fft(xc);
  for (std::size_t m = 0; m < n; ++m)
    EXPECT_NEAR(std::abs(fxc[m] - std::conj(fx[(n - m) % n])), 0.0, 1e-9);
}

TEST_P(FftTheorems, RealSignalHermitianSymmetry) {
  const std::size_t n = GetParam();
  num::Rng rng(n + 300);
  Vec x(n);
  for (double& v : x) v = rng.normal();
  const CVec fx = fft(to_complex(x));
  for (std::size_t m = 1; m < n; ++m)
    EXPECT_NEAR(std::abs(fx[m] - std::conj(fx[n - m])), 0.0, 1e-9);
}

TEST_P(FftTheorems, DcBinIsSum) {
  const std::size_t n = GetParam();
  num::Rng rng(n + 400);
  Vec x(n);
  double sum = 0.0;
  for (double& v : x) {
    v = rng.normal();
    sum += v;
  }
  const CVec fx = fft(to_complex(x));
  EXPECT_NEAR(fx[0].real(), sum, 1e-9);
  EXPECT_NEAR(fx[0].imag(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftTheorems,
                         ::testing::Values(8, 12, 16, 27, 64));

}  // namespace
}  // namespace rcr::sig
