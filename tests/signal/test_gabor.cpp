#include "rcr/signal/gabor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rcr/signal/waveform.hpp"

namespace rcr::sig {
namespace {

TEST(Gabor, TransformShape) {
  const Vec s = tone(256, 8.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 16, 64);
  EXPECT_EQ(g.bins(), 64u);
  EXPECT_EQ(g.frames(), 16u);
}

TEST(Gabor, ToneEnergyAtExpectedBin) {
  // freq 8 Hz at fs 256 with 64-point FFT -> bin = 8 * 64 / 256 = 2.
  const Vec s = tone(256, 8.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 16, 64);
  for (std::size_t fr = 0; fr < g.frames(); ++fr) {
    double best = 0.0;
    std::size_t best_bin = 0;
    for (std::size_t m = 1; m < 32; ++m)
      if (std::abs(g(m, fr)) > best) {
        best = std::abs(g(m, fr));
        best_bin = m;
      }
    EXPECT_EQ(best_bin, 2u);
  }
}

TEST(GabPhaseDeriv, ShapesAndMaskSizes) {
  const Vec s = tone(256, 8.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 16, 64);
  const PhaseDerivative d = gabphasederiv(g, PhaseDerivKind::kTime, 16);
  EXPECT_EQ(d.bins, g.bins());
  EXPECT_EQ(d.frames, g.frames());
  EXPECT_EQ(d.values.size(), g.bins());
  EXPECT_EQ(d.reliable.size(), g.bins());
}

TEST(GabPhaseDeriv, ReliableCellsTrackToneFrequency) {
  // Instantaneous frequency of the tone: omega = 2*pi*f/fs rad/sample.
  const double fs = 256.0;
  const double f = 8.0;
  const Vec s = tone(512, f, fs);
  const TfGrid g = gabor_transform(s, 64, 8, 64);
  const PhaseDerivative d = gabphasederiv(g, PhaseDerivKind::kTime, 8, 1e-3);
  const double omega = 2.0 * std::numbers::pi * f / fs;
  const PhaseDerivError err = phase_deriv_error_vs_constant(d, omega);
  ASSERT_GT(err.n_reliable, 0u);
  EXPECT_LT(err.rms_reliable, 0.05);
}

TEST(GabPhaseDeriv, UnreliableCellsAreMuchWorse) {
  // The LTFAT caveat the paper quotes: phase is "almost random" where the
  // coefficient magnitude is near machine precision.
  const Vec s = tone(512, 8.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 8, 64);
  const PhaseDerivative d = gabphasederiv(g, PhaseDerivKind::kTime, 8, 1e-3);
  const double omega = 2.0 * std::numbers::pi * 8.0 / 256.0;
  const PhaseDerivError err = phase_deriv_error_vs_constant(d, omega);
  ASSERT_GT(err.n_unreliable, 0u);
  EXPECT_GT(err.rms_unreliable, 5.0 * err.rms_reliable);
}

TEST(GabPhaseDeriv, MaskStricterWithHigherFloor) {
  const Vec s = tone(256, 8.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 16, 64);
  auto count_reliable = [&](double floor) {
    const PhaseDerivative d =
        gabphasederiv(g, PhaseDerivKind::kTime, 16, floor);
    std::size_t n = 0;
    for (const auto& row : d.reliable)
      for (bool b : row)
        if (b) ++n;
    return n;
  };
  EXPECT_GE(count_reliable(1e-8), count_reliable(1e-2));
}

TEST(GabPhaseDeriv, FrequencyDirectionRuns) {
  const Vec s = chirp(256, 4.0, 30.0, 256.0);
  const TfGrid g = gabor_transform(s, 64, 16, 64);
  const PhaseDerivative d = gabphasederiv(g, PhaseDerivKind::kFrequency, 16);
  EXPECT_EQ(d.bins, g.bins());
  // Values must be finite everywhere.
  for (const auto& row : d.values)
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace rcr::sig
