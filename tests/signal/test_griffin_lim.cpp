#include "rcr/signal/griffin_lim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/signal/waveform.hpp"

namespace rcr::sig {
namespace {

StftConfig gl_config() {
  StftConfig c;
  c.window = make_window(WindowKind::kHann, 64);
  c.hop = 16;
  c.fft_size = 64;
  return c;
}

TEST(GriffinLim, MagnitudeGridDropsPhases) {
  TfGrid g(1, 2);
  g(0, 0) = {3.0, 4.0};
  g(0, 1) = {-2.0, 0.0};
  const TfGrid m = magnitude_grid(g);
  EXPECT_DOUBLE_EQ(m(0, 0).real(), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0).imag(), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1).real(), 2.0);
}

TEST(GriffinLim, ShapeMismatchThrows) {
  const StftConfig c = gl_config();
  EXPECT_THROW(griffin_lim(TfGrid(32, 4), c, 256), std::invalid_argument);
}

TEST(GriffinLim, TruncatePaddingRejected) {
  StftConfig c = gl_config();
  c.padding = FramePadding::kTruncate;
  EXPECT_THROW(griffin_lim(TfGrid(64, 4), c, 256), std::invalid_argument);
}

TEST(GriffinLim, ConvergenceImprovesOverIterations) {
  const StftConfig c = gl_config();
  const Vec original = tone(256, 16.0, 256.0);
  const TfGrid target = magnitude_grid(stft(original, c));

  GriffinLimOptions few;
  few.max_iterations = 2;
  few.tolerance = 0.0;
  GriffinLimOptions many;
  many.max_iterations = 60;
  many.tolerance = 0.0;
  const GriffinLimResult r_few = griffin_lim(target, c, 256, few);
  const GriffinLimResult r_many = griffin_lim(target, c, 256, many);
  EXPECT_LT(r_many.spectral_convergence, r_few.spectral_convergence);
}

TEST(GriffinLim, ReconstructsToneMagnitudeClosely) {
  const StftConfig c = gl_config();
  const Vec original = tone(256, 16.0, 256.0);
  const TfGrid target = magnitude_grid(stft(original, c));

  GriffinLimOptions opts;
  opts.max_iterations = 80;
  const GriffinLimResult r = griffin_lim(target, c, 256, opts);
  EXPECT_LT(r.spectral_convergence, 0.3);  // GL converges slowly but surely
  // The reconstruction concentrates energy at the same frequency.
  const TfGrid rec = stft(r.signal, c);
  double best = 0.0;
  std::size_t best_bin = 0;
  for (std::size_t m = 1; m < 32; ++m) {
    double e = 0.0;
    for (std::size_t fr = 0; fr < rec.frames(); ++fr)
      e += std::norm(rec(m, fr));
    if (e > best) {
      best = e;
      best_bin = m;
    }
  }
  EXPECT_EQ(best_bin, 4u);  // 16 Hz at fs 256 with 64 bins -> bin 4
}

TEST(GriffinLim, ToleranceStopsEarly) {
  const StftConfig c = gl_config();
  const Vec original = tone(256, 16.0, 256.0);
  const TfGrid target = magnitude_grid(stft(original, c));
  GriffinLimOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 0.5;  // easily reached
  const GriffinLimResult r = griffin_lim(target, c, 256, opts);
  EXPECT_LT(r.iterations, 200u);
  EXPECT_LE(r.spectral_convergence, 0.5);
}

TEST(GriffinLim, DeterministicGivenSeed) {
  const StftConfig c = gl_config();
  const Vec original = chirp(256, 4.0, 40.0, 256.0);
  const TfGrid target = magnitude_grid(stft(original, c));
  GriffinLimOptions opts;
  opts.max_iterations = 10;
  const GriffinLimResult a = griffin_lim(target, c, 256, opts);
  const GriffinLimResult b = griffin_lim(target, c, 256, opts);
  EXPECT_EQ(a.signal, b.signal);
}

TEST(GriffinLim, SpectralConvergenceHelperConsistent) {
  const StftConfig c = gl_config();
  const Vec original = tone(256, 16.0, 256.0);
  const TfGrid target = magnitude_grid(stft(original, c));
  // The original signal has convergence 0 against its own magnitudes.
  EXPECT_NEAR(spectral_convergence(original, target, c), 0.0, 1e-12);
}

}  // namespace
}  // namespace rcr::sig
