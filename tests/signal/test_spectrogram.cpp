#include "rcr/signal/spectrogram.hpp"

#include <gtest/gtest.h>

namespace rcr::sig {
namespace {

StftConfig spec_config() {
  StftConfig c;
  c.window = make_window(WindowKind::kHann, 64);
  c.hop = 16;
  c.fft_size = 64;
  return c;
}

TEST(SpectrogramImage, ShapeAndRange) {
  num::Rng rng(1);
  OfdmParams p;
  const Vec burst = ofdm_burst(p, rng);
  const Image img = spectrogram_image(burst, spec_config(), 16, 16);
  EXPECT_EQ(img.height, 16u);
  EXPECT_EQ(img.width, 16u);
  EXPECT_EQ(img.pixels.size(), 256u);
  for (double v : img.pixels) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SpectrogramImage, ZeroSizeThrows) {
  const Vec s = tone(256, 8.0, 256.0);
  EXPECT_THROW(spectrogram_image(s, spec_config(), 0, 16),
               std::invalid_argument);
  EXPECT_THROW(spectrogram_image(s, spec_config(), 16, 0),
               std::invalid_argument);
}

TEST(SpectrogramImage, ToneMakesHorizontalRidge) {
  // A tone should produce one bright row; its row-mean dominates others.
  const Vec s = tone(1024, 32.0, 256.0);
  const Image img = spectrogram_image(s, spec_config(), 16, 16);
  Vec row_mean(16, 0.0);
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) row_mean[r] += img.at(r, c) / 16.0;
  std::size_t brightest = 0;
  double second = 0.0;
  for (std::size_t r = 1; r < 16; ++r)
    if (row_mean[r] > row_mean[brightest]) brightest = r;
  for (std::size_t r = 0; r < 16; ++r)
    if (r != brightest) second = std::max(second, row_mean[r]);
  EXPECT_GT(row_mean[brightest], second + 0.05);
}

TEST(ClassificationDataset, BalancedAndLabeled) {
  num::Rng rng(2);
  const auto ds = make_classification_dataset(5, 16, 0.05, rng);
  ASSERT_EQ(ds.size(), 15u);  // 3 classes x 5
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& s : ds) {
    ASSERT_LT(s.label, 3u);
    ++counts[s.label];
    EXPECT_EQ(s.image.height, 16u);
    EXPECT_EQ(s.image.width, 16u);
  }
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 5u);
  EXPECT_EQ(counts[2], 5u);
}

TEST(ClassificationDataset, DeterministicGivenSeed) {
  num::Rng rng1(3);
  num::Rng rng2(3);
  const auto a = make_classification_dataset(2, 8, 0.05, rng1);
  const auto b = make_classification_dataset(2, 8, 0.05, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].image.pixels, b[i].image.pixels);
}

TEST(DetectionDataset, BoxesNormalized) {
  num::Rng rng(4);
  const auto ds = make_detection_dataset(6, 16, 0.05, rng);
  ASSERT_EQ(ds.size(), 6u);
  for (const auto& s : ds) {
    EXPECT_GE(s.x_center, 0.0);
    EXPECT_LE(s.x_center, 1.0);
    EXPECT_GT(s.box_w, 0.0);
    EXPECT_LE(s.box_w, 1.0);
    EXPECT_GT(s.box_h, 0.0);
    EXPECT_LE(s.box_h, 1.0);
  }
}

TEST(BoxIou, KnownValues) {
  // Identical boxes.
  EXPECT_NEAR(box_iou(0.5, 0.5, 0.2, 0.2, 0.5, 0.5, 0.2, 0.2), 1.0, 1e-12);
  // Disjoint boxes.
  EXPECT_NEAR(box_iou(0.2, 0.2, 0.1, 0.1, 0.8, 0.8, 0.1, 0.1), 0.0, 1e-12);
  // Half-overlapping along x: intersection 0.5*w*h, union 1.5*w*h.
  EXPECT_NEAR(box_iou(0.4, 0.5, 0.2, 0.2, 0.5, 0.5, 0.2, 0.2), 1.0 / 3.0,
              1e-9);
}

TEST(ModulationClasses, ThreeClasses) {
  EXPECT_EQ(modulation_classes().size(), 3u);
}

}  // namespace
}  // namespace rcr::sig
