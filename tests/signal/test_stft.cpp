#include "rcr/signal/stft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rcr/numerics/rng.hpp"
#include "rcr/signal/waveform.hpp"

namespace rcr::sig {
namespace {

StftConfig basic_config(StftConvention convention = StftConvention::kSimplifiedTimeInvariant) {
  StftConfig c;
  c.window = make_window(WindowKind::kHann, 32);
  c.hop = 8;
  c.fft_size = 32;
  c.convention = convention;
  c.padding = FramePadding::kCircular;
  return c;
}

Vec test_signal(std::size_t n, std::uint64_t seed = 1) {
  num::Rng rng(seed);
  Vec s = chirp(n, 2.0, 40.0, 128.0);
  for (double& v : s) v += rng.normal(0.0, 0.02);
  return s;
}

TEST(StftConfig, ValidationErrors) {
  StftConfig c;
  EXPECT_THROW(c.validate(), std::invalid_argument);  // empty window
  c.window = Vec(16, 1.0);
  c.hop = 0;
  c.fft_size = 16;
  EXPECT_THROW(c.validate(), std::invalid_argument);  // zero hop
  c.hop = 4;
  c.fft_size = 8;
  EXPECT_THROW(c.validate(), std::invalid_argument);  // fft < window
  // TI frames are centered, so frame 0 reaches before the signal start;
  // truncate padding cannot represent that (found by the fuzz harness, which
  // hit the out-of-bounds read this combination used to produce).
  c.fft_size = 16;
  c.convention = StftConvention::kTimeInvariant;
  c.padding = FramePadding::kTruncate;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.padding = FramePadding::kCircular;
  EXPECT_NO_THROW(c.validate());
}

TEST(StftConfig, FrameCounts) {
  StftConfig c = basic_config();
  EXPECT_EQ(c.frame_count(128), 16u);  // circular: ceil(128/8)
  c.padding = FramePadding::kTruncate;
  EXPECT_EQ(c.frame_count(128), (128u - 32u) / 8u + 1u);
  EXPECT_EQ(c.frame_count(16), 0u);  // shorter than window
}

TEST(Stft, ShapeMatchesConfig) {
  const Vec s = test_signal(128);
  const TfGrid g = stft(s, basic_config());
  EXPECT_EQ(g.bins(), 32u);
  EXPECT_EQ(g.frames(), 16u);
}

TEST(Stft, EmptySignalThrows) {
  EXPECT_THROW(stft({}, basic_config()), std::invalid_argument);
}

TEST(Stft, ToneConcentratesEnergyInItsBin) {
  // Tone at bin 4 of a 32-point FFT with sample rate mapping: freq = 4/32.
  const std::size_t n = 128;
  Vec s(n);
  for (std::size_t k = 0; k < n; ++k)
    s[k] = std::sin(2.0 * std::numbers::pi * 4.0 * static_cast<double>(k) / 32.0);
  const TfGrid g = stft(s, basic_config());
  // Bin 4 dominates every frame.
  for (std::size_t fr = 0; fr < g.frames(); ++fr) {
    double best = 0.0;
    std::size_t best_bin = 0;
    for (std::size_t m = 1; m < 16; ++m) {  // positive frequencies
      if (std::abs(g(m, fr)) > best) {
        best = std::abs(g(m, fr));
        best_bin = m;
      }
    }
    EXPECT_EQ(best_bin, 4u) << "frame " << fr;
  }
}

TEST(Stft, LinearInTheSignal) {
  const Vec a = test_signal(128, 2);
  const Vec b = test_signal(128, 3);
  Vec sum(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
  const StftConfig c = basic_config();
  const TfGrid ga = stft(a, c);
  const TfGrid gb = stft(b, c);
  const TfGrid gsum = stft(sum, c);
  double worst = 0.0;
  for (std::size_t i = 0; i < gsum.data().size(); ++i)
    worst = std::max(worst,
                     std::abs(gsum.data()[i] - (ga.data()[i] + gb.data()[i])));
  EXPECT_LT(worst, 1e-10);
}

class StftRoundTrip
    : public ::testing::TestWithParam<std::tuple<StftConvention, std::size_t>> {
};

TEST_P(StftRoundTrip, IstftReconstructsSignal) {
  const auto [convention, hop] = GetParam();
  StftConfig c = basic_config(convention);
  c.hop = hop;
  const Vec s = test_signal(128, 7);
  const TfGrid g = stft(s, c);
  const Vec back = istft(g, c, s.size());
  ASSERT_EQ(back.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_NEAR(back[i], s[i], 1e-9) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ConventionsAndHops, StftRoundTrip,
    ::testing::Combine(
        ::testing::Values(StftConvention::kSimplifiedTimeInvariant,
                          StftConvention::kTimeInvariant),
        ::testing::Values(std::size_t{4}, std::size_t{8}, std::size_t{16})));

TEST(Istft, ShapeMismatchThrows) {
  const StftConfig c = basic_config();
  const TfGrid wrong_bins(16, 16);
  EXPECT_THROW(istft(wrong_bins, c, 128), std::invalid_argument);
  const TfGrid wrong_frames(32, 3);
  EXPECT_THROW(istft(wrong_frames, c, 128), std::invalid_argument);
}

TEST(Istft, TruncatePaddingRejected) {
  StftConfig c = basic_config();
  c.padding = FramePadding::kTruncate;
  const Vec s = test_signal(128);
  const TfGrid g = stft(s, c);
  EXPECT_THROW(istft(g, c, s.size()), std::invalid_argument);
}

// ---- The Sec. IV-B phase-skew experiments (Eqs. 5-6). ----

TEST(PhaseSkew, ConventionsDisagreeWithoutCorrection) {
  const Vec s = test_signal(128, 11);
  const StftConfig sti = basic_config(StftConvention::kSimplifiedTimeInvariant);
  const StftConfig ti = basic_config(StftConvention::kTimeInvariant);
  const TfGrid g_sti = stft(s, sti);
  const TfGrid g_ti = stft(s, ti);
  // The raw grids disagree badly in phase.
  const double skew =
      max_phase_discrepancy(g_sti, g_ti, 1e-6 * g_ti.max_magnitude());
  EXPECT_GT(skew, 0.5);
}

TEST(PhaseSkew, PhaseFactorMatrixRestoresAgreementExactly) {
  // TI of s == phase-correction of STI computed on s delayed by Lg/2
  // (the paper's "point-wise multiplication with an a priori determined
  // matrix of phase factors").
  const Vec s = test_signal(128, 13);
  const StftConfig sti = basic_config(StftConvention::kSimplifiedTimeInvariant);
  const StftConfig ti = basic_config(StftConvention::kTimeInvariant);
  const std::size_t lg_half = sti.window.size() / 2;

  const Vec s_shifted = circular_shift(s, static_cast<std::ptrdiff_t>(lg_half));
  const TfGrid g_sti_shifted = stft(s_shifted, sti);
  const TfGrid corrected =
      convert_sti_to_ti(g_sti_shifted, sti.window.size(), sti.fft_size);
  const TfGrid g_ti = stft(s, ti);

  EXPECT_LT(TfGrid::max_abs_diff(corrected, g_ti),
            1e-10 * (1.0 + g_ti.max_magnitude()));
}

TEST(PhaseSkew, GrowsWithWindowLength) {
  // The skew per bin is 2*pi*m*floor(Lg/2)/M: compare the phase factors of
  // two window lengths directly.
  const TfGrid p_short = phase_factor_matrix(32, 1, 8, 32);
  const TfGrid p_long = phase_factor_matrix(32, 1, 24, 32);
  const double skew_short = std::abs(std::arg(p_short(1, 0)));
  const double skew_long = std::abs(std::arg(p_long(1, 0)));
  EXPECT_GT(skew_long, skew_short);
  EXPECT_NEAR(skew_short, 2.0 * std::numbers::pi * 4.0 / 32.0, 1e-12);
}

TEST(PhaseFactorMatrix, UnitModulus) {
  const TfGrid p = phase_factor_matrix(16, 4, 10, 16);
  for (const auto& v : p.data()) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(PointwiseMultiply, ShapeMismatchThrows) {
  EXPECT_THROW(pointwise_multiply(TfGrid(2, 2), TfGrid(2, 3)),
               std::invalid_argument);
}

TEST(MaxPhaseDiscrepancy, IgnoresLowMagnitudeCoefficients) {
  TfGrid a(1, 2);
  TfGrid b(1, 2);
  // Strong coefficient: aligned phases; weak coefficient: opposite phases.
  a(0, 0) = {1.0, 0.0};
  b(0, 0) = {1.0, 0.0};
  a(0, 1) = {1e-12, 0.0};
  b(0, 1) = {-1e-12, 0.0};
  EXPECT_NEAR(max_phase_discrepancy(a, b, 1e-6), 0.0, 1e-12);
}

TEST(TfGrid, MaxMagnitudeAndDiff) {
  TfGrid g(2, 2);
  g(1, 1) = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(g.max_magnitude(), 5.0);
  EXPECT_TRUE(std::isinf(TfGrid::max_abs_diff(TfGrid(1, 1), TfGrid(1, 2))));
}

}  // namespace
}  // namespace rcr::sig
