#include "rcr/signal/variants.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/signal/issue_detector.hpp"
#include "rcr/signal/waveform.hpp"

namespace rcr::sig {
namespace {

Vec test_signal() {
  num::Rng rng(1);
  Vec s = chirp(256, 2.0, 60.0, 256.0);
  for (double& v : s) v += rng.normal(0.0, 0.05);
  return s;
}

TEST(Variants, ReferenceMatchesFreeFunctions) {
  const SimulatedLibrary ref("reference", Defect::kNone);
  const Vec s = test_signal();
  EXPECT_LT(max_abs_diff(ref.fft(to_complex(s)), fft(to_complex(s))), 1e-14);
  EXPECT_LT(max_abs_diff(ref.rfft(s), rfft(s)), 1e-14);
}

TEST(Variants, MissingScaleIfftOffByN) {
  const SimulatedLibrary lib("julia-sim", Defect::kMissingScale);
  const Vec s = test_signal();
  const CVec spec = fft(to_complex(s));
  const CVec bad = lib.ifft(spec);
  const CVec good = ifft(spec);
  for (std::size_t i = 0; i < bad.size(); ++i)
    EXPECT_NEAR(std::abs(bad[i] - 256.0 * good[i]), 0.0, 1e-8);
}

TEST(Variants, ConjugateFlipConjugatesSpectrum) {
  const SimulatedLibrary lib("scipy-legacy-sim", Defect::kConjugateFlip);
  const Vec s = test_signal();
  const CVec flipped = lib.fft(to_complex(s));
  const CVec good = fft(to_complex(s));
  for (std::size_t i = 0; i < good.size(); ++i)
    EXPECT_NEAR(std::abs(flipped[i] - std::conj(good[i])), 0.0, 1e-9);
}

TEST(Variants, LegacySignatureChangesShape) {
  const SimulatedLibrary legacy("torch-0.3-sim", Defect::kLegacySignature);
  const SimulatedLibrary ref("reference", Defect::kNone);
  const Vec s = test_signal();
  const Vec window = make_window(WindowKind::kHann, 32);
  // Caller uses the modern signature: fft_size = 64, window length 32.
  const TfGrid good = ref.stft(s, 64, 16, window);
  const TfGrid bad = legacy.stft(s, 64, 16, window);
  // Legacy semantics size the transform by the frame: 32 bins instead of
  // the requested 64.
  EXPECT_EQ(good.bins(), 64u);
  EXPECT_EQ(bad.bins(), 32u);
}

TEST(Variants, PhaseSkewPreservesMagnitudes) {
  const SimulatedLibrary skew("tensorflow-sim", Defect::kPhaseSkew);
  const SimulatedLibrary ref("reference", Defect::kNone);
  const Vec s = test_signal();
  const Vec window = make_window(WindowKind::kHann, 64);
  const TfGrid a = skew.stft(s, 64, 16, window);
  const TfGrid b = ref.stft(s, 64, 16, window);
  // The skewed library computes the same coefficients -- the defect is that
  // it *documents* them as TI; magnitudes agree with the reference STI.
  for (std::size_t i = 0; i < a.data().size(); ++i)
    EXPECT_NEAR(std::abs(a.data()[i]), std::abs(b.data()[i]), 1e-9);
}

TEST(Variants, NonCircularDropsTailFrames) {
  const SimulatedLibrary trunc("caffe2-sim", Defect::kNonCircular);
  const SimulatedLibrary ref("reference", Defect::kNone);
  const Vec s = test_signal();
  const Vec window = make_window(WindowKind::kHann, 64);
  const TfGrid a = trunc.stft(s, 64, 16, window);
  const TfGrid b = ref.stft(s, 64, 16, window);
  EXPECT_LT(a.frames(), b.frames());
}

TEST(Variants, NonCircularIstftRaises) {
  const SimulatedLibrary trunc("caffe2-sim", Defect::kNonCircular);
  const Vec s = test_signal();
  const Vec window = make_window(WindowKind::kHann, 64);
  const TfGrid g = trunc.stft(s, 64, 16, window);
  EXPECT_THROW(trunc.istft(g, 64, 16, window, s.size()),
               std::invalid_argument);
}

TEST(Variants, UnstableComposeProducesNonFinite) {
  const SimulatedLibrary unstable("caffe-sim", Defect::kUnstableCompose);
  // A constant frame: every non-DC bin has exactly zero power, so the
  // separate normalize-then-log path produces log(0) = -inf.
  const Vec frame(128, 1.0);
  const Vec bad = unstable.log_power(frame);
  bool has_non_finite = false;
  for (double v : bad) has_non_finite |= !std::isfinite(v);
  EXPECT_TRUE(has_non_finite);

  const SimulatedLibrary ref("reference", Defect::kNone);
  const Vec good = ref.log_power(frame);
  for (double v : good) EXPECT_TRUE(std::isfinite(v));
}

TEST(Roster, HasOneLibraryPerDefectClass) {
  const auto roster = standard_library_roster();
  EXPECT_EQ(roster.size(), 7u);
  EXPECT_EQ(roster.front().defect(), Defect::kNone);
}

TEST(DefectNames, AllDistinct) {
  const Defect all[] = {Defect::kNone,         Defect::kLegacySignature,
                        Defect::kPhaseSkew,    Defect::kNonCircular,
                        Defect::kMissingScale, Defect::kConjugateFlip,
                        Defect::kUnstableCompose};
  for (std::size_t i = 0; i < std::size(all); ++i)
    for (std::size_t j = i + 1; j < std::size(all); ++j)
      EXPECT_NE(to_string(all[i]), to_string(all[j]));
}

// ---- Issue detector (Fig. 3 reproduction). ----

TEST(IssueDetector, ReferenceRowIsClean) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  ASSERT_FALSE(m.cells.empty());
  EXPECT_EQ(m.issue_count(0), 0u);  // reference library
}

TEST(IssueDetector, EveryDefectiveLibraryFlagged) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  for (std::size_t r = 1; r < m.library_names.size(); ++r) {
    // The unstable-compose library's defect lives in log_power, which the
    // six FFT-family probes do not exercise; every other defect must show.
    if (m.library_names[r] == "caffe-sim") continue;
    EXPECT_GT(m.issue_count(r), 0u) << m.library_names[r];
  }
}

TEST(IssueDetector, MissingScaleClassifiedAsScaleError) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  std::size_t row = 0;
  for (std::size_t r = 0; r < m.library_names.size(); ++r)
    if (m.library_names[r] == "julia-sim") row = r;
  // IFFT column is index 1.
  EXPECT_EQ(m.cells[row][1].kind, IssueKind::kScaleError);
}

TEST(IssueDetector, PhaseSkewLibraryOkOnPlainFft) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  std::size_t row = 0;
  for (std::size_t r = 0; r < m.library_names.size(); ++r)
    if (m.library_names[r] == "tensorflow-sim") row = r;
  EXPECT_EQ(m.cells[row][0].kind, IssueKind::kOk);  // FFT unaffected
}

TEST(IssueDetector, NonCircularFlaggedAsShapeOrError) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  std::size_t row = 0;
  for (std::size_t r = 0; r < m.library_names.size(); ++r)
    if (m.library_names[r] == "caffe2-sim") row = r;
  // STFT column index 4: shape mismatch; ISTFT column 5: raised error.
  EXPECT_EQ(m.cells[row][4].kind, IssueKind::kShapeMismatch);
  EXPECT_EQ(m.cells[row][5].kind, IssueKind::kRaisedError);
}

TEST(IssueDetector, TableRendersAllRows) {
  const IssueMatrix m = detect_issues(standard_library_roster(), {});
  const std::string table = m.to_table();
  for (const auto& name : m.library_names)
    EXPECT_NE(table.find(name), std::string::npos);
  EXPECT_NE(table.find("STFT"), std::string::npos);
}

TEST(ClassifyOutputs, DirectCases) {
  const CVec ref = {{1.0, 0.0}, {0.0, 2.0}};
  EXPECT_EQ(classify_outputs(ref, ref, 1e-9).kind, IssueKind::kOk);

  CVec scaled = ref;
  for (auto& v : scaled) v *= 3.0;
  EXPECT_EQ(classify_outputs(ref, scaled, 1e-9).kind, IssueKind::kScaleError);

  CVec conj = ref;
  for (auto& v : conj) v = std::conj(v);
  EXPECT_EQ(classify_outputs(ref, conj, 1e-9).kind, IssueKind::kPhaseError);

  CVec nan_out = ref;
  nan_out[0] = {std::nan(""), 0.0};
  EXPECT_EQ(classify_outputs(ref, nan_out, 1e-9).kind, IssueKind::kNonFinite);

  EXPECT_EQ(classify_outputs(ref, CVec(3), 1e-9).kind,
            IssueKind::kShapeMismatch);
}

}  // namespace
}  // namespace rcr::sig
