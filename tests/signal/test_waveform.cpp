#include "rcr/signal/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::sig {
namespace {

TEST(Tone, AmplitudeAndPeriodicity) {
  const Vec s = tone(256, 16.0, 256.0, 2.0);
  double peak = 0.0;
  for (double v : s) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 2.0, 1e-6);
  // Period = 16 samples at these parameters.
  for (std::size_t k = 0; k + 16 < s.size(); ++k)
    EXPECT_NEAR(s[k], s[k + 16], 1e-9);
}

TEST(Chirp, StartsSlowEndsFast) {
  const Vec s = chirp(512, 2.0, 60.0, 512.0);
  // Count zero crossings in the first and last quarter.
  auto crossings = [&](std::size_t lo, std::size_t hi) {
    std::size_t n = 0;
    for (std::size_t k = lo + 1; k < hi; ++k)
      if ((s[k - 1] < 0.0) != (s[k] < 0.0)) ++n;
    return n;
  };
  EXPECT_LT(crossings(0, 128), crossings(384, 512));
}

TEST(Awgn, MomentsRoughlyCorrect) {
  num::Rng rng(1);
  const Vec n = awgn(20000, 0.5, rng);
  double mean = 0.0;
  for (double v : n) mean += v;
  mean /= static_cast<double>(n.size());
  double var = 0.0;
  for (double v : n) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(AddNoise, PreservesLengthAndDeterministic) {
  num::Rng rng1(2);
  num::Rng rng2(2);
  const Vec x = tone(64, 4.0, 64.0);
  const Vec a = add_noise(x, 0.1, rng1);
  const Vec b = add_noise(x, 0.1, rng2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), x.size());
}

TEST(CircularShift, RoundTripAndIdentity) {
  const Vec x = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(circular_shift(x, 0), x);
  EXPECT_EQ(circular_shift(circular_shift(x, 2), -2), x);
  EXPECT_EQ(circular_shift(x, 5), x);   // full cycle
  EXPECT_EQ(circular_shift(x, 1), (Vec{5.0, 1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(circular_shift(x, -1), (Vec{2.0, 3.0, 4.0, 5.0, 1.0}));
}

TEST(Ofdm, TotalSamplesMatchParams) {
  OfdmParams p;
  num::Rng rng(3);
  const Vec burst = ofdm_burst(p, rng);
  EXPECT_EQ(burst.size(), p.total_samples());
  EXPECT_EQ(p.samples_per_symbol(), 80u);
}

TEST(Ofdm, CyclicPrefixCopiesSymbolTail) {
  OfdmParams p;
  p.num_symbols = 1;
  num::Rng rng(4);
  const Vec burst = ofdm_burst(p, rng);
  // CP (first 16 samples) equals the last 16 samples of the symbol body.
  for (std::size_t k = 0; k < p.cyclic_prefix; ++k)
    EXPECT_NEAR(burst[k], burst[p.fft_size + k], 1e-12);
}

TEST(Ofdm, InvalidParamsThrow) {
  OfdmParams p;
  p.active_subcarriers = p.fft_size + 1;
  num::Rng rng(5);
  EXPECT_THROW(ofdm_burst(p, rng), std::invalid_argument);
}

TEST(Ofdm, ModulationsProduceDifferentWaveforms) {
  OfdmParams p;
  num::Rng rng1(6);
  num::Rng rng2(6);
  p.modulation = Modulation::kBpsk;
  const Vec bpsk = ofdm_burst(p, rng1);
  p.modulation = Modulation::kQam16;
  const Vec qam = ofdm_burst(p, rng2);
  EXPECT_NE(bpsk, qam);
}

TEST(EmbeddedBurst, BurstInsideCapture) {
  OfdmParams p;
  num::Rng rng(7);
  const BurstCapture cap = embedded_burst(2048, p, 0.05, rng);
  EXPECT_EQ(cap.samples.size(), 2048u);
  EXPECT_EQ(cap.length, p.total_samples());
  EXPECT_LE(cap.offset + cap.length, 2048u);
}

TEST(EmbeddedBurst, BurstRegionHasMoreEnergy) {
  OfdmParams p;
  num::Rng rng(8);
  const BurstCapture cap = embedded_burst(4096, p, 0.02, rng);
  auto energy = [&](std::size_t lo, std::size_t hi) {
    double e = 0.0;
    for (std::size_t k = lo; k < hi; ++k) e += cap.samples[k] * cap.samples[k];
    return e / static_cast<double>(hi - lo);
  };
  const double inside = energy(cap.offset, cap.offset + cap.length);
  // Pick a noise-only region.
  const std::size_t noise_lo = cap.offset > 200 ? 0 : cap.offset + cap.length;
  const double outside = energy(noise_lo, noise_lo + 100);
  EXPECT_GT(inside, 10.0 * outside);
}

TEST(EmbeddedBurst, TooLongThrows) {
  OfdmParams p;  // 640 samples
  num::Rng rng(9);
  EXPECT_THROW(embedded_burst(100, p, 0.05, rng), std::invalid_argument);
}

TEST(Modulation, Names) {
  EXPECT_EQ(to_string(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(to_string(Modulation::kQpsk), "QPSK");
  EXPECT_EQ(to_string(Modulation::kQam16), "QAM16");
}

}  // namespace
}  // namespace rcr::sig
