#include "rcr/signal/window.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rcr::sig {
namespace {

TEST(Window, ZeroLengthThrows) {
  EXPECT_THROW(make_window(WindowKind::kHann, 0), std::invalid_argument);
}

TEST(Window, RectangularIsAllOnes) {
  const Vec w = make_window(WindowKind::kRectangular, 8);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndpointsAndPeak) {
  const Vec w = make_window(WindowKind::kHann, 16);
  EXPECT_NEAR(w[0], 0.0, 1e-12);       // periodic Hann starts at 0
  EXPECT_NEAR(w[8], 1.0, 1e-12);       // peak at N/2
}

TEST(Window, ValuesInUnitInterval) {
  for (WindowKind kind : {WindowKind::kHann, WindowKind::kHamming,
                          WindowKind::kBlackman, WindowKind::kGaussian}) {
    const Vec w = make_window(kind, 33);
    for (double v : w) {
      EXPECT_GE(v, -1e-12) << to_string(kind);
      EXPECT_LE(v, 1.0 + 1e-12) << to_string(kind);
    }
  }
}

TEST(Window, GaussianSymmetricAboutCenter) {
  const Vec w = make_window(WindowKind::kGaussian, 32);
  for (std::size_t k = 1; k < 16; ++k)
    EXPECT_NEAR(w[16 - k], w[16 + k], 1e-12);
}

TEST(Window, PeakIndexNearCenterForBellWindows) {
  for (WindowKind kind : {WindowKind::kHann, WindowKind::kHamming,
                          WindowKind::kBlackman, WindowKind::kGaussian}) {
    const std::size_t peak = window_peak_index(make_window(kind, 64));
    EXPECT_EQ(peak, 32u) << to_string(kind);
  }
}

TEST(Window, HannSatisfiesColaAtHalfAndQuarterHop) {
  const Vec w = make_window(WindowKind::kHann, 64);
  EXPECT_TRUE(satisfies_cola(w, 32));
  EXPECT_TRUE(satisfies_cola(w, 16));
}

TEST(Window, HannViolatesColaAtIrregularHop) {
  const Vec w = make_window(WindowKind::kHann, 64);
  EXPECT_FALSE(satisfies_cola(w, 48));
}

TEST(Window, RectangularColaAtAnyDividingHop) {
  const Vec w = make_window(WindowKind::kRectangular, 60);
  EXPECT_TRUE(satisfies_cola(w, 10));
  EXPECT_TRUE(satisfies_cola(w, 20));
}

TEST(Window, OverlapAddProfileValues) {
  // Rectangular window of length 4, hop 2: each output bin sees 2 frames.
  const Vec p = overlap_add_profile(make_window(WindowKind::kRectangular, 4), 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

TEST(Window, OverlapAddProfileZeroHopThrows) {
  EXPECT_THROW(overlap_add_profile(Vec(4, 1.0), 0), std::invalid_argument);
}

TEST(Window, Names) {
  EXPECT_EQ(to_string(WindowKind::kHann), "hann");
  EXPECT_EQ(to_string(WindowKind::kGaussian), "gaussian");
}

}  // namespace
}  // namespace rcr::sig
