// Mixed-precision refinement (rcr/numerics/mixed.hpp) and its opt-in
// wiring into the ADMM box-QP and SDP solvers.
//
// Contract under test:
//   - refine_solve reaches the fp64 residual target on well-conditioned
//     seeded instances (the fp32 factor only preconditions; accuracy comes
//     from the fp64 residual loop);
//   - the option is OFF by default and the fp64 paths are bit-identical
//     with it off, even when a mixed-capable factor is supplied;
//   - misuse (mixed_precision without a mixed factor) throws, and fp32
//     singularity degrades to fp64 instead of failing.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/mixed.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/admm.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/testkit/ulp.hpp"

namespace num = rcr::num;
namespace opt = rcr::opt;
namespace tk = rcr::testkit;
using rcr::Vec;
using rcr::num::Matrix;

namespace {

Matrix diag_dominant(std::size_t n, num::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

double residual_inf(const Matrix& a, const Vec& x, const Vec& b) {
  Vec ax;
  num::matvec_into(a, x, ax);
  double r = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    r = std::max(r, std::abs(b[i] - ax[i]));
  return r;
}

}  // namespace

TEST(MixedPrecision, RefineSolveConvergesOnSeededInstances) {
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
    num::Rng rng(seed);
    const std::size_t n = 40;
    const Matrix a = diag_dominant(n, rng);
    const Vec b = rng.normal_vec(n);
    num::FloatLu f;
    num::float_lu_into(a, f);
    ASSERT_FALSE(f.singular) << "seed " << seed;

    Vec x;
    num::RefineWorkspace ws;
    const double tol = 1e-12;
    const int iters = num::refine_solve(a, f, b, x, tol, 8, ws);
    ASSERT_GE(iters, 1) << "seed " << seed;
    double bnorm = 0.0;
    for (double v : b) bnorm = std::max(bnorm, std::abs(v));
    EXPECT_LE(residual_inf(a, x, b), tol * (1.0 + bnorm)) << "seed " << seed;
  }
}

TEST(MixedPrecision, FloatLuFlagsExactSingularity) {
  Matrix a(3, 3);  // rank 1
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = 2.0;
  num::FloatLu f;
  num::float_lu_into(a, f);
  EXPECT_TRUE(f.singular);

  num::RefineWorkspace ws;
  Vec x;
  const Vec b(3, 1.0);
  EXPECT_THROW(num::refine_solve(a, f, b, x, 1e-12, 8, ws),
               std::invalid_argument);
}

TEST(MixedPrecision, AdmmMixedConvergesCloseToFp64) {
  num::Rng rng(21);
  const std::size_t n = 32;
  const Matrix p = opt::random_psd(n, n, rng) + Matrix::identity(n);
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0), hi(n, 1.0);

  const opt::AdmmResult plain = opt::admm_box_qp(p, q, lo, hi);
  opt::AdmmOptions mixed;
  mixed.mixed_precision = true;
  const opt::AdmmResult fast = opt::admm_box_qp(p, q, lo, hi, mixed);

  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(fast.converged);
  EXPECT_GE(fast.refine_iterations, 1u);
  EXPECT_EQ(plain.refine_iterations, 0u);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(fast.x[i], plain.x[i], 1e-6) << "index " << i;
  EXPECT_NEAR(fast.objective, plain.objective, 1e-8);
}

TEST(MixedPrecision, AdmmOffIsBitIdenticalEvenWithMixedFactor) {
  num::Rng rng(22);
  const std::size_t n = 24;
  const Matrix p = opt::random_psd(n, n, rng) + Matrix::identity(n);
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0), hi(n, 1.0);

  const opt::AdmmResult plain = opt::admm_box_qp(p, q, lo, hi);
  // A mixed-capable factor with the option off must not perturb a bit.
  const opt::AdmmOptions options;  // mixed_precision = false
  const opt::BoxQpFactor factor =
      opt::prefactor_box_qp(p, options.rho, /*mixed=*/true);
  const opt::AdmmResult with_factor =
      opt::admm_box_qp(p, factor, q, lo, hi, options);

  EXPECT_EQ("", tk::expect_bits(plain.x, with_factor.x, "admm x"));
  EXPECT_EQ(plain.iterations, with_factor.iterations);
  EXPECT_EQ(with_factor.refine_iterations, 0u);
}

TEST(MixedPrecision, AdmmMixedWithoutMixedFactorThrows) {
  num::Rng rng(23);
  const std::size_t n = 8;
  const Matrix p = opt::random_psd(n, n, rng) + Matrix::identity(n);
  const Vec q = rng.normal_vec(n);
  const Vec lo(n, -1.0), hi(n, 1.0);
  opt::AdmmOptions options;
  options.mixed_precision = true;
  const opt::BoxQpFactor factor = opt::prefactor_box_qp(p, options.rho);
  EXPECT_THROW(opt::admm_box_qp(p, factor, q, lo, hi, options),
               std::invalid_argument);
}

TEST(MixedPrecision, SdpMixedConvergesCloseToFp64) {
  num::Rng rng(24);
  const std::size_t n = 6;
  opt::Sdp problem;
  problem.c = opt::random_psd(n, n, rng) - Matrix::identity(n);
  problem.a_eq.push_back(Matrix::identity(n));
  problem.b_eq.push_back(1.0);
  opt::SdpOptions options;
  options.max_iterations = 2000;

  const opt::SdpResult plain = opt::solve_sdp(problem, options);
  opt::SdpOptions mixed = options;
  mixed.mixed_precision = true;
  const opt::SdpResult fast = opt::solve_sdp(problem, mixed);

  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(fast.converged);
  EXPECT_EQ(plain.refine_iterations, 0u);
  EXPECT_GE(fast.refine_iterations, 1u);
  EXPECT_NEAR(fast.objective, plain.objective, 1e-6);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(fast.x(i, j), plain.x(i, j), 1e-5)
          << "entry (" << i << "," << j << ")";
}
