// Structure-exploiting SDP projection and KKT solves.
//
// Default-path contract: the workspace overload with default options is
// bit-identical to the allocating solve, and project_psd_into's cold path
// is bit-identical to project_psd.  The opt-in fast paths (Schur-structured
// KKT, warm-started eigenbasis, rotation thresholding) are *different
// factorizations / sweep schedules of the same math*: they must converge to
// the same optimum within solver tolerance, never bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/eigen.hpp"
#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/opt/quadratic.hpp"
#include "rcr/opt/sdp.hpp"
#include "rcr/testkit/ulp.hpp"

namespace num = rcr::num;
namespace opt = rcr::opt;
namespace tk = rcr::testkit;
using rcr::Vec;
using rcr::num::Matrix;

namespace {

opt::Sdp seeded_problem(unsigned seed, std::size_t n) {
  num::Rng rng(seed);
  opt::Sdp problem;
  problem.c = opt::random_psd(n, n, rng) - Matrix::identity(n);
  problem.a_eq.push_back(Matrix::identity(n));
  problem.b_eq.push_back(1.0);
  return problem;
}

Matrix random_symmetric(std::size_t n, num::Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  m.symmetrize();
  return m;
}

void expect_close(const opt::SdpResult& a, const opt::SdpResult& b,
                  double tol, const char* what) {
  ASSERT_TRUE(a.converged) << what;
  ASSERT_TRUE(b.converged) << what;
  EXPECT_NEAR(a.objective, b.objective, tol) << what;
  for (std::size_t i = 0; i < a.x.rows(); ++i)
    for (std::size_t j = 0; j < a.x.cols(); ++j)
      EXPECT_NEAR(a.x(i, j), b.x(i, j), 10.0 * tol)
          << what << " entry (" << i << "," << j << ")";
}

}  // namespace

TEST(SdpStructure, WorkspaceOverloadBitIdenticalToDefault) {
  const opt::Sdp problem = seeded_problem(31, 8);
  opt::SdpOptions options;
  options.max_iterations = 2000;
  const opt::SdpResult plain = opt::solve_sdp(problem, options);
  opt::SdpWorkspace ws;
  const opt::SdpResult first = opt::solve_sdp(problem, options, ws);
  // Reused (warm) workspace must not drift either: the default config never
  // carries state between solves.
  const opt::SdpResult second = opt::solve_sdp(problem, options, ws);
  EXPECT_EQ("", tk::expect_bits(plain.x, first.x, "first"));
  EXPECT_EQ("", tk::expect_bits(plain.x, second.x, "second"));
  EXPECT_EQ(plain.iterations, first.iterations);
  EXPECT_EQ(plain.iterations, second.iterations);
  EXPECT_EQ(plain.objective, first.objective);
}

TEST(SdpStructure, StructuredKktMatchesDenseClosely) {
  for (unsigned seed : {41u, 42u, 43u}) {
    const opt::Sdp problem = seeded_problem(seed, 8);
    opt::SdpOptions options;
    options.max_iterations = 4000;
    const opt::SdpResult dense = opt::solve_sdp(problem, options);
    opt::SdpOptions structured = options;
    structured.exploit_structure = true;
    const opt::SdpResult fast = opt::solve_sdp(problem, structured);
    expect_close(dense, fast, 1e-5, "structured");
  }
}

TEST(SdpStructure, WarmStartedProjectionMatchesClosely) {
  const opt::Sdp problem = seeded_problem(44, 8);
  opt::SdpOptions options;
  options.max_iterations = 4000;
  const opt::SdpResult dense = opt::solve_sdp(problem, options);
  opt::SdpOptions warm = options;
  warm.warm_start_projection = true;
  const opt::SdpResult fast = opt::solve_sdp(problem, warm);
  expect_close(dense, fast, 1e-5, "warm");
}

TEST(SdpStructure, FastConfigConvergesAcrossSeededInstances) {
  opt::SdpWorkspace ws;
  for (unsigned seed : {51u, 52u, 53u, 54u}) {
    const opt::Sdp problem = seeded_problem(seed, 10);
    opt::SdpOptions options;
    options.max_iterations = 4000;
    const opt::SdpResult dense = opt::solve_sdp(problem, options);
    opt::SdpOptions fast = options;
    fast.exploit_structure = true;
    fast.warm_start_projection = true;
    fast.projection_rotation_threshold = 1e-9;
    // Workspace reused across *different* problems on purpose: a stale
    // eigenbasis may cost sweeps but never correctness.
    const opt::SdpResult quick = opt::solve_sdp(problem, fast, ws);
    expect_close(dense, quick, 1e-5, "fast config");
  }
}

TEST(SdpStructure, StructuredRespectsInequalitiesAndSlacks) {
  num::Rng rng(61);
  const std::size_t n = 6;
  opt::Sdp problem;
  problem.c = opt::random_psd(n, n, rng) - Matrix::identity(n);
  problem.a_eq.push_back(Matrix::identity(n));
  problem.b_eq.push_back(1.0);
  Matrix pin(n, n);
  pin(0, 0) = 1.0;
  problem.a_in.push_back(pin);
  problem.b_in.push_back(0.05);  // X_00 <= 0.05

  opt::SdpOptions options;
  options.max_iterations = 6000;
  const opt::SdpResult dense = opt::solve_sdp(problem, options);
  opt::SdpOptions structured = options;
  structured.exploit_structure = true;
  const opt::SdpResult fast = opt::solve_sdp(problem, structured);
  expect_close(dense, fast, 1e-4, "inequality");
  EXPECT_LE(fast.x(0, 0), 0.05 + 1e-4);
}

TEST(SdpStructure, ProjectPsdIntoColdPathBitIdenticalToProjectPsd) {
  for (unsigned seed : {71u, 72u, 73u}) {
    num::Rng rng(seed);
    const Matrix a = random_symmetric(12, rng);
    const Matrix legacy = num::project_psd(a);
    num::PsdProjectWorkspace ws;
    Matrix out;
    num::project_psd_into(a, ws, out);
    EXPECT_EQ("", tk::expect_bits(legacy, out, "cold projection"));
    // Warm reuse of a cold-configured workspace stays bit-identical.
    num::project_psd_into(a, ws, out);
    EXPECT_EQ("", tk::expect_bits(legacy, out, "cold projection reuse"));
  }
}

TEST(SdpStructure, WarmStartedProjectionCloseToColdOnDriftingIterates) {
  num::Rng rng(74);
  const std::size_t n = 10;
  Matrix a = random_symmetric(n, rng);
  num::PsdProjectWorkspace warm_ws;
  num::PsdProjectOptions warm;
  warm.warm_start = true;
  Matrix warm_out, cold_out;
  for (int step = 0; step < 20; ++step) {
    num::project_psd_into(a, warm_ws, warm_out, warm);
    num::PsdProjectWorkspace cold_ws;
    num::project_psd_into(a, cold_ws, cold_out);
    const double scale = 1.0 + a.max_abs();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR(warm_out(i, j), cold_out(i, j), 1e-9 * scale)
            << "step " << step << " entry (" << i << "," << j << ")";
    // Small drift, mimicking successive ADMM iterates.
    Matrix bump(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) bump(i, j) = 0.02 * rng.normal();
    bump.symmetrize();
    a = a + bump;
  }
}

TEST(SdpStructure, RotationThresholdBoundsProjectionError) {
  num::Rng rng(75);
  const std::size_t n = 12;
  const Matrix a = random_symmetric(n, rng);
  num::PsdProjectWorkspace exact_ws, approx_ws;
  Matrix exact, approx;
  num::project_psd_into(a, exact_ws, exact);
  num::PsdProjectOptions opts;
  opts.rotation_threshold = 1e-9;
  num::project_psd_into(a, approx_ws, approx, opts);
  const double scale = 1.0 + a.max_abs();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(approx(i, j), exact(i, j), 1e-6 * scale)
          << "entry (" << i << "," << j << ")";
}

TEST(SdpStructure, EigenSymIntoWarmReuseBitIdentical) {
  num::Rng rng(76);
  const Matrix a = random_symmetric(16, rng);
  const num::EigenDecomposition fresh = num::eigen_symmetric(a);
  num::EigenWorkspace ws;
  num::EigenDecomposition out;
  num::eigen_sym_into(a, ws, out);
  EXPECT_EQ("", tk::expect_bits(fresh.eigenvectors, out.eigenvectors, "V"));
  EXPECT_EQ("", tk::expect_bits(fresh.eigenvalues, out.eigenvalues, "lambda"));
  // A second decomposition through the same workspace (different matrix
  // first, then the original again) must land on the same bits.
  const Matrix b = random_symmetric(16, rng);
  num::eigen_sym_into(b, ws, out);
  num::eigen_sym_into(a, ws, out);
  EXPECT_EQ("", tk::expect_bits(fresh.eigenvectors, out.eigenvectors, "V2"));
  EXPECT_EQ("", tk::expect_bits(fresh.eigenvalues, out.eigenvalues, "l2"));
}
