// Differential tests for the rcr::rt::simd kernel layer against the scalar
// reference table (src/runtime/simd_kernels_scalar.cpp).
//
// The layer's contract splits the kernels into two classes:
//
//   lane-independent / sequential -- elementwise ops, axpy, rotate_pair,
//     the *_seq reductions (SIMD products, scalar-ordered lane adds),
//     butterfly, choose_mul, conversions: BIT-IDENTICAL to scalar on every
//     dispatch path, so the default build never changes results.
//   reassociating -- dot_reassoc / sdot_reassoc (lane-strided accumulators)
//     and everything downstream of them: within a small ULP budget of the
//     scalar reference, reached only through opt-in mixed-precision paths.
//
// On scalar-only builds active() IS the scalar table and the comparisons
// are trivially true; on AVX2/NEON builds they pin the vector kernels to
// the reference.  Lengths cover 0, sub-vector tails, exact multiples, and
// off-by-one around the 4/8-lane widths.
#include <gtest/gtest.h>

#include <bit>
#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "rcr/numerics/matrix.hpp"
#include "rcr/numerics/rng.hpp"
#include "rcr/rt/parallel.hpp"
#include "rcr/rt/simd.hpp"
#include "rcr/signal/fft.hpp"
#include "rcr/testkit/ulp.hpp"

namespace simd = rcr::rt::simd;
namespace num = rcr::num;
namespace tk = rcr::testkit;
using rcr::Vec;

namespace {

constexpr std::size_t kLens[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                                 15, 16, 17, 31, 32, 33, 64, 100};

Vec rand_vec(std::size_t n, num::Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.normal();
  // Signed zeros are part of the bit-identity contract (masked_dot_seq must
  // not launder -0.0 through a +0.0 add).
  if (n > 2) {
    v[0] = -0.0;
    v[n / 2] = 0.0;
  }
  return v;
}

Vec positive_vec(std::size_t n, num::Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = 0.25 + std::abs(rng.normal());
  return v;
}

std::uint32_t ulp_distance_f(float a, float b) {
  if (a == b) return 0;
  const std::uint32_t ua = std::bit_cast<std::uint32_t>(std::fabs(a));
  const std::uint32_t ub = std::bit_cast<std::uint32_t>(std::fabs(b));
  if (std::signbit(a) != std::signbit(b)) return ua + ub;
  return ua > ub ? ua - ub : ub - ua;
}

void expect_vec_bits(const Vec& a, const Vec& b, std::size_t len) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(tk::same_bits(a[i], b[i]))
        << "len=" << len << " index " << i << ": " << a[i] << " vs " << b[i];
}

}  // namespace

TEST(SimdKernels, ElementwiseOpsMatchScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(101);
  for (std::size_t len : kLens) {
    const Vec a = rand_vec(len, rng);
    const Vec b = rand_vec(len, rng);
    Vec va(len, 0.0), vs(len, 0.0);
    A.add(a.data(), b.data(), va.data(), len);
    S.add(a.data(), b.data(), vs.data(), len);
    expect_vec_bits(va, vs, len);
    A.sub(a.data(), b.data(), va.data(), len);
    S.sub(a.data(), b.data(), vs.data(), len);
    expect_vec_bits(va, vs, len);
    A.mul(a.data(), b.data(), va.data(), len);
    S.mul(a.data(), b.data(), vs.data(), len);
    expect_vec_bits(va, vs, len);
    A.scale(a.data(), -1.75, va.data(), len);
    S.scale(a.data(), -1.75, vs.data(), len);
    expect_vec_bits(va, vs, len);
  }
}

TEST(SimdKernels, AxpyAndRotatePairMatchScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(102);
  for (std::size_t len : kLens) {
    const Vec x = rand_vec(len, rng);
    Vec ya = rand_vec(len, rng);
    Vec ys = ya;
    A.axpy(0.731, x.data(), ya.data(), len);
    S.axpy(0.731, x.data(), ys.data(), len);
    expect_vec_bits(ya, ys, len);

    Vec xa = rand_vec(len, rng), xs = xa;
    Vec ra = rand_vec(len, rng), rs = ra;
    const double c = 0.8, s = 0.6;
    A.rotate_pair(xa.data(), ra.data(), c, s, len);
    S.rotate_pair(xs.data(), rs.data(), c, s, len);
    expect_vec_bits(xa, xs, len);
    expect_vec_bits(ra, rs, len);
  }
}

TEST(SimdKernels, SequentialReductionsMatchScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(103);
  for (std::size_t len : kLens) {
    const Vec a = rand_vec(len, rng);
    const Vec b = rand_vec(len, rng);
    const Vec w = rand_vec(len, rng);
    ASSERT_TRUE(tk::same_bits(A.dot_seq(0.5, a.data(), b.data(), len),
                              S.dot_seq(0.5, a.data(), b.data(), len)))
        << "dot_seq len=" << len;
    ASSERT_TRUE(tk::same_bits(A.absdot_seq(0.0, a.data(), b.data(), len),
                              S.absdot_seq(0.0, a.data(), b.data(), len)))
        << "absdot_seq len=" << len;
    ASSERT_TRUE(tk::same_bits(
        A.choose_dot_seq(-0.25, w.data(), a.data(), b.data(), len),
        S.choose_dot_seq(-0.25, w.data(), a.data(), b.data(), len)))
        << "choose_dot_seq len=" << len;
    for (bool nonneg : {true, false}) {
      ASSERT_TRUE(
          tk::same_bits(A.masked_dot_seq(-0.0, w.data(), a.data(), len, nonneg),
                        S.masked_dot_seq(-0.0, w.data(), a.data(), len, nonneg)))
          << "masked_dot_seq len=" << len << " nonneg=" << nonneg;
    }
  }
}

TEST(SimdKernels, ChooseMulMatchesScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(104);
  for (std::size_t len : kLens) {
    const Vec w = rand_vec(len, rng);
    const Vec pos = rand_vec(len, rng);
    const Vec neg = rand_vec(len, rng);
    Vec oa(len, 0.0), os(len, 0.0);
    A.choose_mul(w.data(), pos.data(), neg.data(), oa.data(), len);
    S.choose_mul(w.data(), pos.data(), neg.data(), os.data(), len);
    expect_vec_bits(oa, os, len);
  }
}

TEST(SimdKernels, ButterflyMatchesScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(105);
  using C = std::complex<double>;
  for (std::size_t len : kLens) {
    std::vector<C> lo(len), hi(len), tw(len);
    for (std::size_t i = 0; i < len; ++i) {
      lo[i] = {rng.normal(), rng.normal()};
      hi[i] = {rng.normal(), rng.normal()};
      tw[i] = {rng.normal(), rng.normal()};
    }
    auto lo_a = lo, hi_a = hi, lo_s = lo, hi_s = hi;
    A.butterfly(lo_a.data(), hi_a.data(), tw.data(), len);
    S.butterfly(lo_s.data(), hi_s.data(), tw.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_TRUE(tk::same_bits(lo_a[i].real(), lo_s[i].real()) &&
                  tk::same_bits(lo_a[i].imag(), lo_s[i].imag()) &&
                  tk::same_bits(hi_a[i].real(), hi_s[i].real()) &&
                  tk::same_bits(hi_a[i].imag(), hi_s[i].imag()))
          << "butterfly len=" << len << " index " << i;
    }
  }
}

TEST(SimdKernels, ConversionsAndSaxpyMatchScalarBitExact) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(106);
  for (std::size_t len : kLens) {
    const Vec a = rand_vec(len, rng);
    std::vector<float> fa(len, 0.0f), fs(len, 0.0f);
    A.to_float(a.data(), fa.data(), len);
    S.to_float(a.data(), fs.data(), len);
    ASSERT_EQ(0, std::memcmp(fa.data(), fs.data(), len * sizeof(float)))
        << "to_float len=" << len;

    Vec da(len, 0.0), ds(len, 0.0);
    A.to_double(fa.data(), da.data(), len);
    S.to_double(fa.data(), ds.data(), len);
    expect_vec_bits(da, ds, len);

    std::vector<float> x(len), ya(len), ys(len);
    for (std::size_t i = 0; i < len; ++i) {
      x[i] = static_cast<float>(rng.normal());
      ya[i] = ys[i] = static_cast<float>(rng.normal());
    }
    A.saxpy(1.375f, x.data(), ya.data(), len);
    S.saxpy(1.375f, x.data(), ys.data(), len);
    ASSERT_EQ(0, std::memcmp(ya.data(), ys.data(), len * sizeof(float)))
        << "saxpy len=" << len;
  }
}

TEST(SimdKernels, ReassociatingDotsWithinUlpBudget) {
  const simd::Kernels& A = simd::active();
  const simd::Kernels& S = simd::scalar_kernels();
  num::Rng rng(107);
  // Positive operands keep the reduction free of cancellation, so the only
  // divergence between lane-strided and unrolled-scalar accumulation is the
  // rounding of the partial sums: a few ULPs at these lengths.
  for (std::size_t len : kLens) {
    const Vec a = positive_vec(len, rng);
    const Vec b = positive_vec(len, rng);
    const double da = A.dot_reassoc(a.data(), b.data(), len);
    const double ds = S.dot_reassoc(a.data(), b.data(), len);
    EXPECT_LE(tk::ulp_distance(da, ds), 4u) << "dot_reassoc len=" << len;
    // And against the sequential reference -- same budget.
    const double dq = S.dot_seq(0.0, a.data(), b.data(), len);
    EXPECT_LE(tk::ulp_distance(da, dq), 4u)
        << "dot_reassoc vs dot_seq len=" << len;

    std::vector<float> fa(len), fb(len);
    for (std::size_t i = 0; i < len; ++i) {
      fa[i] = static_cast<float>(a[i]);
      fb[i] = static_cast<float>(b[i]);
    }
    const float sa = A.sdot_reassoc(fa.data(), fb.data(), len);
    const float ss = S.sdot_reassoc(fa.data(), fb.data(), len);
    EXPECT_LE(ulp_distance_f(sa, ss), 4u) << "sdot_reassoc len=" << len;
  }
}

TEST(SimdKernels, ForceScalarGuardSwitchesDispatch) {
  EXPECT_FALSE(simd::force_scalar_active());
  {
    simd::ForceScalarGuard guard;
    EXPECT_TRUE(simd::force_scalar_active());
    EXPECT_EQ(&simd::active(), &simd::scalar_kernels());
    {
      simd::ForceScalarGuard nested;
      EXPECT_TRUE(simd::force_scalar_active());
    }
    EXPECT_TRUE(simd::force_scalar_active());
  }
  EXPECT_FALSE(simd::force_scalar_active());
  EXPECT_STREQ(simd::path_name(),
               simd::active_path() == simd::Path::kAvx2
                   ? "avx2"
                   : (simd::active_path() == simd::Path::kNeon ? "neon"
                                                               : "scalar"));
}

// The matrix kernels ride only lane-independent / sequential SIMD
// primitives, so whole-matrix results are bit-identical between the
// vectorized and forced-scalar paths...
TEST(SimdKernels, MatmulSimdVsForcedScalarBitIdentical) {
  num::Rng rng(108);
  const std::size_t n = 37;  // odd: exercises every tail path
  num::Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  num::Matrix c_simd, c_scalar, g_simd, g_scalar;
  Vec x(n);
  for (auto& v : x) v = rng.normal();
  Vec y_simd, y_scalar;
  num::multiply_into(a, b, c_simd);
  num::multiply_at_b_into(a, b, g_simd);
  num::matvec_into(a, x, y_simd);
  {
    simd::ForceScalarGuard guard;
    num::multiply_into(a, b, c_scalar);
    num::multiply_at_b_into(a, b, g_scalar);
    num::matvec_into(a, x, y_scalar);
  }
  EXPECT_EQ("", tk::expect_bits(c_simd, c_scalar, "matmul"));
  EXPECT_EQ("", tk::expect_bits(g_simd, g_scalar, "at_b"));
  EXPECT_EQ("", tk::expect_bits(y_simd, y_scalar, "matvec"));
}

// ...and between serial and pooled execution (the RCR_THREADS contract:
// thread count partitions rows, never the accumulation order).
TEST(SimdKernels, VectorizedMatmulSerialParallelBitIdentical) {
  num::Rng rng(109);
  const std::size_t n = 64;
  num::Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  num::Matrix c_pool, c_serial;
  num::multiply_into(a, b, c_pool);
  {
    rcr::rt::ForceSerialGuard serial;
    num::multiply_into(a, b, c_serial);
  }
  EXPECT_EQ("", tk::expect_bits(c_pool, c_serial, "matmul threads"));
}

TEST(SimdKernels, FftSimdVsForcedScalarBitIdentical) {
  num::Rng rng(110);
  rcr::sig::CVec x(256);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const rcr::sig::CVec y_simd = rcr::sig::fft(x);
  rcr::sig::CVec y_scalar;
  {
    simd::ForceScalarGuard guard;
    y_scalar = rcr::sig::fft(x);
  }
  EXPECT_EQ("", tk::expect_bits(y_simd, y_scalar, "fft"));
}
