// Generator contracts: sampling is a pure function of the seed, shrink lists
// are finite and strictly structured, and the structured matrix generators
// actually produce the structure they advertise.
#include <gtest/gtest.h>

#include "rcr/numerics/decompositions.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
using rcr::num::Matrix;
using rcr::num::Rng;
using rcr::Vec;

namespace {

TEST(TestkitGen, SamplingIsDeterministicInTheSeed) {
  const auto gen = tk::gen_vec(1, 32, -2.0, 2.0);
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    Rng a(seed), b(seed);
    const Vec va = gen.sample(a);
    const Vec vb = gen.sample(b);
    EXPECT_EQ(tk::expect_bits(va, vb, "same-seed draw"), "");
  }
  // Different seeds draw different values (overwhelmingly).
  Rng a(7), b(8);
  EXPECT_NE(tk::expect_bits(gen.sample(a), gen.sample(b), "x"), "");
}

TEST(TestkitGen, ShrinkDoubleProposesSimplerCandidates) {
  EXPECT_TRUE(tk::shrink_double(0.0).empty());
  const auto c = tk::shrink_double(-7.25);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(c.front(), 0.0);  // simplest first
  for (double v : c) EXPECT_LT(std::fabs(v), 7.25 + 1e-12);
  // Deterministic order.
  EXPECT_EQ(tk::shrink_double(-7.25), c);
}

TEST(TestkitGen, ShrinkSizeMovesTowardLowerBound) {
  EXPECT_TRUE(tk::shrink_size(3, 3).empty());
  const auto c = tk::shrink_size(100, 2);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(c.front(), 2u);
  for (std::size_t v : c) {
    EXPECT_GE(v, 2u);
    EXPECT_LT(v, 100u);
  }
}

TEST(TestkitGen, ShrinkVecShortensAndSimplifies) {
  const Vec v = {5.0, -3.0, 2.0, 9.0};
  const auto candidates = tk::shrink_vec(v, 1);
  ASSERT_FALSE(candidates.empty());
  for (const Vec& c : candidates) {
    EXPECT_GE(c.size(), 1u);
    EXPECT_LE(c.size(), v.size());
  }
  // A minimal vector of zeros has no length shrinks and no scalar shrinks.
  EXPECT_TRUE(tk::shrink_vec(Vec{0.0}, 1).empty());
}

TEST(TestkitGen, SymmetricGeneratorIsSymmetric) {
  const auto gen = tk::gen_symmetric(2, 6);
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    const Matrix m = gen.sample(rng);
    EXPECT_TRUE(m.is_symmetric());
  }
}

TEST(TestkitGen, PsdGeneratorIsPsd) {
  const auto gen = tk::gen_psd(2, 6);
  Rng rng(321);
  for (int i = 0; i < 20; ++i) {
    const Matrix m = gen.sample(rng);
    EXPECT_TRUE(m.is_symmetric());
    EXPECT_TRUE(rcr::num::is_psd(m, 1e-9));
  }
}

TEST(TestkitGen, SpdWellConditionedFactorizes) {
  const auto gen = tk::gen_spd_well_conditioned(2, 6);
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    const Matrix m = gen.sample(rng);
    const auto chol = rcr::num::cholesky(m);
    EXPECT_TRUE(chol.has_value());
  }
}

TEST(TestkitGen, NearSingularGeneratorHitsTheRequestedConditioning) {
  const auto gen = tk::gen_near_singular(3, 6, 6.0, 10.0);
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    const Matrix m = gen.sample(rng);
    const double cond = rcr::num::condition_number_1(m);
    // The 1-norm condition estimate is within a dimension factor of the
    // 2-norm target 10^[6,10]; accept a generous bracket.
    EXPECT_GT(cond, 1e4);
    EXPECT_LT(cond, 1e13);
  }
}

TEST(TestkitGen, RandomOrthogonalHasOrthonormalColumns) {
  Rng rng(17);
  const Matrix q = tk::random_orthogonal(5, rng);
  const Matrix qtq = rcr::num::multiply_at_b(q, q);
  EXPECT_TRUE(rcr::num::approx_equal(qtq, Matrix::identity(5), 1e-10));
}

TEST(TestkitGen, MatrixWithSpectrumReproducesSingularValues) {
  Rng rng(29);
  const Vec spectrum = {4.0, 1.0, 0.25};
  const Matrix m = tk::matrix_with_spectrum(spectrum, rng);
  // det = product of singular values (up to sign; orthogonal factors have
  // det +/-1).
  const auto lu = rcr::num::lu_decompose(m);
  ASSERT_FALSE(lu.singular);
  EXPECT_NEAR(std::fabs(lu.determinant()), 4.0 * 1.0 * 0.25, 1e-9);
}

TEST(TestkitGen, StftFixtureGeneratorProducesValidConfigs) {
  const auto gen = tk::gen_stft_fixture();
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    const tk::StftFixture f = gen.sample(rng);
    EXPECT_NO_THROW(f.config.validate());
    EXPECT_GE(f.signal.size(), f.config.window.size());
    // Shrink candidates stay valid too.
    for (const tk::StftFixture& c : gen.shrink(f)) {
      EXPECT_NO_THROW(c.config.validate());
      EXPECT_GE(c.signal.size(), c.config.window.size());
    }
  }
}

TEST(TestkitGen, CanonicalSignalIsDeterministic) {
  const Vec a = tk::canonical_signal(64, 5);
  const Vec b = tk::canonical_signal(64, 5);
  EXPECT_EQ(tk::expect_bits(a, b, "canonical signal"), "");
  const Vec c = tk::canonical_signal(64, 6);
  EXPECT_NE(tk::expect_bits(a, c, "different seed"), "");
}

}  // namespace
