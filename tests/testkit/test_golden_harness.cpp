// Golden-signature harness round trip: regen writes a parseable file, a
// fresh db verifies against it, bit drift is caught, and the tolerance
// fallback accepts sub-tolerance drift when strict mode is off.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
using rcr::sig::CVec;

namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

CVec sample_coefficients() {
  CVec v(16);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {std::sin(0.37 * static_cast<double>(i)),
            std::cos(1.11 * static_cast<double>(i))};
  return v;
}

class GoldenHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "testkit_golden_harness.json";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(GoldenHarnessTest, SignatureHashIsStableAndBitSensitive) {
  const CVec v = sample_coefficients();
  const auto* raw = reinterpret_cast<const double*>(v.data());
  const std::uint64_t h1 = tk::signature_hash(raw, 2 * v.size());
  const std::uint64_t h2 = tk::signature_hash(raw, 2 * v.size());
  EXPECT_EQ(h1, h2);
  CVec perturbed = v;
  perturbed[7] = {std::nextafter(v[7].real(), 2.0), v[7].imag()};
  const std::uint64_t h3 = tk::signature_hash(
      reinterpret_cast<const double*>(perturbed.data()), 2 * perturbed.size());
  EXPECT_NE(h1, h3);  // a single-ulp change flips the hash
}

TEST_F(GoldenHarnessTest, RegenThenVerifyRoundTrips) {
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    ASSERT_TRUE(db.regen_mode());
    EXPECT_EQ(db.check("fixture", sample_coefficients()), "");
    EXPECT_EQ(db.entry_count(), 1u);
  }
  // A fresh db (normal mode) reloads the committed entry and verifies.
  tk::GoldenDb db(path_);
  ASSERT_FALSE(db.regen_mode());
  ASSERT_EQ(db.entry_count(), 1u);
  EXPECT_EQ(db.check("fixture", sample_coefficients()), "");
}

TEST_F(GoldenHarnessTest, BitDriftIsCaughtInStrictMode) {
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    EXPECT_EQ(db.check("fixture", sample_coefficients()), "");
  }
  CVec drifted = sample_coefficients();
  drifted[3] = {std::nextafter(drifted[3].real(), 10.0), drifted[3].imag()};
  tk::GoldenDb db(path_);
  const std::string diag = db.check("fixture", drifted);
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("signature"), std::string::npos);
}

TEST_F(GoldenHarnessTest, ToleranceFallbackAcceptsSubToleranceDrift) {
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    EXPECT_EQ(db.check("fixture", sample_coefficients()), "");
  }
  CVec drifted = sample_coefficients();
  drifted[3] = {std::nextafter(drifted[3].real(), 10.0), drifted[3].imag()};
  ScopedEnv lenient("RCR_GOLDEN_STRICT", "0");
  tk::GoldenDb db(path_);
  EXPECT_EQ(db.check("fixture", drifted), "");
  // A gross change still fails the fallback.
  CVec wrong = sample_coefficients();
  wrong[0] = {wrong[0].real() + 1.0, wrong[0].imag()};
  EXPECT_NE(db.check("fixture", wrong), "");
}

TEST_F(GoldenHarnessTest, MissingEntryNamesTheRegenKnob) {
  tk::GoldenDb db(path_);
  const std::string diag = db.check("never-recorded", sample_coefficients());
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("RCR_REGEN_GOLDEN"), std::string::npos);
}

TEST_F(GoldenHarnessTest, CountChangeIsCaughtBeforeTheSignature) {
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    EXPECT_EQ(db.check("fixture", sample_coefficients()), "");
  }
  CVec shorter = sample_coefficients();
  shorter.pop_back();
  tk::GoldenDb db(path_);
  const std::string diag = db.check("fixture", shorter);
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("count"), std::string::npos);
}

TEST_F(GoldenHarnessTest, GridChecksFoldShapeIntoTheSignature) {
  rcr::sig::TfGrid grid(4, 6);
  for (std::size_t m = 0; m < 4; ++m)
    for (std::size_t n = 0; n < 6; ++n)
      grid(m, n) = {static_cast<double>(m), static_cast<double>(n)};
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    EXPECT_EQ(db.check("grid", grid), "");
  }
  tk::GoldenDb db(path_);
  EXPECT_EQ(db.check("grid", grid), "");
  // Same flattened data under a different shape must fail.
  rcr::sig::TfGrid reshaped(6, 4);
  reshaped.data() = grid.data();
  EXPECT_NE(db.check("grid", reshaped), "");
}

TEST_F(GoldenHarnessTest, SavedFileSurvivesAnEditorRoundTrip) {
  // Entries written with full precision reload to identical GoldenEntries.
  {
    ScopedEnv regen("RCR_REGEN_GOLDEN", "1");
    tk::GoldenDb db(path_);
    EXPECT_EQ(db.check("a", sample_coefficients()), "");
    CVec other = sample_coefficients();
    for (auto& z : other) z *= 3.0;
    EXPECT_EQ(db.check("b", other), "");
    EXPECT_EQ(db.entry_count(), 2u);
  }
  tk::GoldenDb reloaded(path_);
  EXPECT_EQ(reloaded.entry_count(), 2u);
  EXPECT_EQ(reloaded.check("a", sample_coefficients()), "");
}

}  // namespace
