// Acceptance test for the whole testkit pipeline: a deliberately broken
// cache-blocked matmul (the inner-dimension remainder tile is dropped, a
// classic blocking off-by-one) must be caught by a property sweep, shrunk to
// a minimal counterexample, and the printed seed must replay the failure
// deterministically via RCR_TESTKIT_SEED.
#include <gtest/gtest.h>

#include <cstdlib>

#include "rcr/numerics/matrix.hpp"
#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
using rcr::num::Matrix;

namespace {

// Blocked matmul with the injected bug: the k-loop walks full tiles only, so
// any inner dimension with k % kTile != 0 silently loses the tail products.
constexpr std::size_t kTile = 4;

Matrix buggy_blocked_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  const std::size_t k_full = (a.cols() / kTile) * kTile;  // BUG: no remainder
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTile) {
    const std::size_t i1 = std::min(a.rows(), i0 + kTile);
    for (std::size_t k0 = 0; k0 < k_full; k0 += kTile) {
      const std::size_t k1 = k0 + kTile;
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a(i, k);
          for (std::size_t j = 0; j < b.cols(); ++j)
            out(i, j) += aik * b(k, j);
        }
    }
  }
  return out;
}

// Correct control: same blocking, with the remainder tile handled.
Matrix fixed_blocked_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTile) {
    const std::size_t i1 = std::min(a.rows(), i0 + kTile);
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kTile) {
      const std::size_t k1 = std::min(a.cols(), k0 + kTile);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a(i, k);
          for (std::size_t j = 0; j < b.cols(); ++j)
            out(i, j) += aik * b(k, j);
        }
    }
  }
  return out;
}

struct MatmulCase {
  Matrix a;
  Matrix b;
};

// Structured generator: dims in [1, 9] hit both full-tile and remainder
// shapes; shrinking peels dimensions and simplifies entries toward +/-1 so
// the minimal counterexample is human-readable.
tk::Gen<MatmulCase> gen_matmul_case() {
  tk::Gen<MatmulCase> g;
  g.sample = [](rcr::num::Rng& rng) {
    MatmulCase c;
    const auto dim = [&rng] {
      return static_cast<std::size_t>(rng.uniform_int(1, 9));
    };
    const std::size_t r = dim(), k = dim(), cc = dim();
    c.a = Matrix(r, k);
    c.b = Matrix(k, cc);
    for (std::size_t i = 0; i < r; ++i)
      for (std::size_t j = 0; j < k; ++j) c.a(i, j) = rng.normal();
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < cc; ++j) c.b(i, j) = rng.normal();
    return c;
  };
  g.shrink = [](const MatmulCase& c) {
    std::vector<MatmulCase> out;
    const auto truncated = [](const Matrix& m, std::size_t r, std::size_t cc) {
      Matrix t(r, cc);
      for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < cc; ++j) t(i, j) = m(i, j);
      return t;
    };
    const std::size_t r = c.a.rows(), k = c.a.cols(), cc = c.b.cols();
    if (k > 2) {  // most aggressive first: inner dim straight to 1
      MatmulCase s;
      s.a = truncated(c.a, r, 1);
      s.b = truncated(c.b, 1, cc);
      out.push_back(std::move(s));
    }
    if (k > 1) {
      MatmulCase s;
      s.a = truncated(c.a, r, k - 1);
      s.b = truncated(c.b, k - 1, cc);
      out.push_back(std::move(s));
    }
    if (r > 1) {
      MatmulCase s;
      s.a = truncated(c.a, r - 1, k);
      s.b = c.b;
      out.push_back(std::move(s));
    }
    if (cc > 1) {
      MatmulCase s;
      s.a = c.a;
      s.b = truncated(c.b, k, cc - 1);
      out.push_back(std::move(s));
    }
    for (Matrix MatmulCase::*field : {&MatmulCase::a, &MatmulCase::b}) {
      const Matrix& m = c.*field;
      std::size_t budget = 8;
      for (std::size_t i = 0; i < m.rows() && budget > 0; ++i)
        for (std::size_t j = 0; j < m.cols() && budget > 0; ++j)
          for (double candidate : tk::shrink_double(m(i, j))) {
            MatmulCase s = c;
            (s.*field)(i, j) = candidate;
            out.push_back(std::move(s));
            --budget;
            if (budget == 0) break;
          }
    }
    return out;
  };
  g.show = [](const MatmulCase& c) {
    return "A = " + tk::show_matrix(c.a) + ", B = " + tk::show_matrix(c.b);
  };
  return g;
}

std::string agrees_with_reference(const MatmulCase& c,
                                  Matrix (*impl)(const Matrix&,
                                                 const Matrix&)) {
  const Matrix reference = c.a * c.b;
  const Matrix candidate = impl(c.a, c.b);
  // The reference kernel accumulates in the same order inside a tile, so a
  // tight ULP budget suffices; the injected bug is off by entire products.
  return tk::expect_ulp(reference.data(), candidate.data(), 16,
                        "blocked matmul vs reference");
}

TEST(TestkitInjectedBug, CorrectBlockedKernelPassesTheSweep) {
  const auto r = tk::check<MatmulCase>(
      "fixed blocked matmul matches the reference", gen_matmul_case(),
      [](const MatmulCase& c) {
        return agrees_with_reference(c, &fixed_blocked_multiply);
      });
  EXPECT_TRUE(r.ok) << r.report;
}

TEST(TestkitInjectedBug, BuggyKernelIsCaughtShrunkAndReplayable) {
  const auto prop = [](const MatmulCase& c) {
    return agrees_with_reference(c, &buggy_blocked_multiply);
  };
  const auto r = tk::check<MatmulCase>("buggy blocked matmul",
                                       gen_matmul_case(), prop);

  // 1. Caught: the sweep must fail (remainder shapes are drawn constantly).
  ASSERT_FALSE(r.ok);

  // 2. Reported: the failure block carries a replayable seed and the
  //    shrunk counterexample.
  EXPECT_NE(r.report.find("RCR_TESTKIT_SEED="), std::string::npos);
  EXPECT_NE(r.report.find("counterexample"), std::string::npos);
  EXPECT_FALSE(r.counterexample.empty());

  // 3. Shrunk: greedy shrinking must reach the minimal failing shape --
  //    a 1x1 times 1x1 product (inner dim 1 is the smallest remainder).
  EXPECT_GT(r.shrink_steps, 0u);
  EXPECT_NE(r.counterexample.find("matrix 1x1"), std::string::npos)
      << r.counterexample;

  // 4. Replayable: pinning RCR_TESTKIT_SEED to the printed seed reproduces
  //    the identical failure in a single case.
  const std::string seed_str = std::to_string(r.failing_seed);
  ::setenv("RCR_TESTKIT_SEED", seed_str.c_str(), 1);
  const auto replay =
      tk::check<MatmulCase>("buggy blocked matmul", gen_matmul_case(), prop);
  ::unsetenv("RCR_TESTKIT_SEED");
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.cases_run, 1u);
  EXPECT_EQ(replay.failing_seed, r.failing_seed);
  EXPECT_EQ(replay.counterexample, r.counterexample);
  EXPECT_EQ(replay.report, r.report);
}

TEST(TestkitInjectedBug, BugIsInvisibleOnFullTileShapes) {
  // Sanity: on k % 4 == 0 the buggy kernel is exact -- the property pipeline
  // is what surfaces the remainder case, not luck.
  rcr::num::Rng rng(4242);
  Matrix a(4, 8), b(8, 4);
  for (auto& v : a.data()) v = rng.normal();
  for (auto& v : b.data()) v = rng.normal();
  const MatmulCase c{a, b};
  EXPECT_EQ(agrees_with_reference(c, &buggy_blocked_multiply), "");
}

}  // namespace
