// check() driver contracts: pass/fail detection, deterministic greedy
// shrinking, replay-seed reporting, and RCR_TESTKIT_SEED env replay.
#include <gtest/gtest.h>

#include <cstdlib>

#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;

namespace {

// Scoped env override (tests must not leak RCR_TESTKIT_SEED into each other).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(TestkitProperty, PassingPropertyRunsAllCases) {
  const auto r = tk::check<double>(
      "abs is nonnegative", tk::gen_double(-10.0, 10.0),
      [](const double& v) {
        return std::fabs(v) >= 0.0 ? "" : "negative abs";
      });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.cases_run, 100u);
  EXPECT_TRUE(r.report.empty());
}

TEST(TestkitProperty, FailingPropertyShrinksToTheBoundary) {
  // Fails for n >= 7; greedy shrink over {lo, n/2, n-1} must land exactly on
  // the minimal failing size 7.
  const auto r = tk::check<std::size_t>(
      "sizes stay below seven", tk::gen_size(0, 100),
      [](const std::size_t& n) {
        return n < 7 ? "" : "size reached " + std::to_string(n);
      });
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.counterexample, "7");
  EXPECT_GT(r.shrink_steps, 0u);
  EXPECT_NE(r.report.find("RCR_TESTKIT_SEED="), std::string::npos);
  EXPECT_NE(r.report.find("size reached 7"), std::string::npos);
}

TEST(TestkitProperty, FailureReportsAreDeterministic) {
  const auto run = [] {
    return tk::check<std::size_t>(
        "deterministic failure", tk::gen_size(0, 50),
        [](const std::size_t& n) { return n < 3 ? "" : "too big"; });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failing_seed, b.failing_seed);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.report, b.report);
}

TEST(TestkitProperty, ThrownExceptionsCountAsFailures) {
  const auto r = tk::check<double>(
      "no throwing", tk::gen_double(0.0, 1.0),
      [](const double&) -> std::string {
        throw std::runtime_error("boom");
      });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("exception: boom"), std::string::npos);
}

TEST(TestkitProperty, EnvSeedReplaysExactlyOneCase) {
  // First run normally to learn the failing seed.
  const auto prop = [](const std::size_t& n) {
    return n < 7 ? "" : "size reached " + std::to_string(n);
  };
  const auto first = tk::check<std::size_t>("replayable", tk::gen_size(0, 100),
                                            prop);
  ASSERT_FALSE(first.ok);

  // Replaying that seed pins the run to a single identical case.
  ScopedEnv env("RCR_TESTKIT_SEED", std::to_string(first.failing_seed));
  const auto replay =
      tk::check<std::size_t>("replayable", tk::gen_size(0, 100), prop);
  EXPECT_EQ(replay.cases_run, 1u);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.failing_seed, first.failing_seed);
  EXPECT_EQ(replay.counterexample, first.counterexample);
}

TEST(TestkitProperty, EnvSeedOnPassingCaseRunsCleanly) {
  ScopedEnv env("RCR_TESTKIT_SEED", "12345");
  const auto r = tk::check<double>(
      "always true", tk::gen_double(-1.0, 1.0),
      [](const double&) { return std::string(); });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.cases_run, 1u);
}

TEST(TestkitProperty, DifferentBaseSeedsExploreDifferentCases) {
  // With a property that records the first drawn value, two base seeds must
  // produce different draws (the case-seed derivation is splitmix64-mixed).
  double seen_a = 0.0, seen_b = 0.0;
  tk::CheckOptions opts;
  opts.cases = 1;
  opts.honor_replay_env = false;
  opts.seed = 1;
  tk::check<double>("probe a", tk::gen_double(-1.0, 1.0),
                    [&](const double& v) {
                      seen_a = v;
                      return std::string();
                    },
                    opts);
  opts.seed = 2;
  tk::check<double>("probe b", tk::gen_double(-1.0, 1.0),
                    [&](const double& v) {
                      seen_b = v;
                      return std::string();
                    },
                    opts);
  EXPECT_NE(seen_a, seen_b);
}

TEST(TestkitProperty, SplitmixIsTheDocumentedSeedDerivation) {
  // The report's replay seed for case i under base seed s is
  // splitmix64(s + i); lock the function so printed seeds stay replayable
  // across refactors.
  EXPECT_EQ(tk::splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_NE(tk::splitmix64(1), tk::splitmix64(2));
}

}  // namespace
