// ULP-distance semantics and the ""-or-diagnostic comparator contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rcr/testkit/testkit.hpp"

namespace tk = rcr::testkit;
using rcr::Vec;
using rcr::sig::CVec;

namespace {

TEST(TestkitUlp, DistanceZeroIffEqual) {
  EXPECT_EQ(tk::ulp_distance(1.5, 1.5), 0u);
  EXPECT_EQ(tk::ulp_distance(0.0, -0.0), 0u);  // +0 and -0 identified
  EXPECT_EQ(tk::ulp_distance(-3.0, -3.0), 0u);
}

TEST(TestkitUlp, AdjacentDoublesAreOneUlpApart) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  EXPECT_EQ(tk::ulp_distance(x, up), 1u);
  EXPECT_EQ(tk::ulp_distance(up, x), 1u);  // symmetric
  const double down = std::nextafter(x, 0.0);
  EXPECT_EQ(tk::ulp_distance(x, down), 1u);
}

TEST(TestkitUlp, NanIsInfinitelyFar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(tk::ulp_distance(nan, 1.0), UINT64_MAX);
  EXPECT_EQ(tk::ulp_distance(1.0, nan), UINT64_MAX);
  EXPECT_EQ(tk::ulp_distance(nan, nan), UINT64_MAX);
}

TEST(TestkitUlp, OppositeSignsSumDistancesThroughZero) {
  const double tiny = std::numeric_limits<double>::denorm_min();
  // +denorm_min and -denorm_min straddle zero: one step each side.
  EXPECT_EQ(tk::ulp_distance(tiny, -tiny), 2u);
  EXPECT_EQ(tk::ulp_distance(0.0, tiny), 1u);
}

TEST(TestkitUlp, ExpectBitsReportsFirstMismatch) {
  const Vec a = {1.0, 2.0, 3.0};
  Vec b = a;
  EXPECT_EQ(tk::expect_bits(a, b, "vec"), "");
  b[1] = std::nextafter(2.0, 3.0);
  const std::string diag = tk::expect_bits(a, b, "vec");
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("[1]"), std::string::npos);
  EXPECT_NE(diag.find("1 ulps"), std::string::npos);
}

TEST(TestkitUlp, ExpectBitsCatchesSizeMismatch) {
  const Vec a = {1.0, 2.0};
  const Vec b = {1.0};
  EXPECT_NE(tk::expect_bits(a, b, "vec"), "");
}

TEST(TestkitUlp, ExpectUlpAllowsBoundedDrift) {
  const Vec a = {1.0, 2.0};
  Vec b = a;
  b[0] = std::nextafter(std::nextafter(1.0, 2.0), 2.0);  // 2 ulps up
  EXPECT_EQ(tk::expect_ulp(a, b, 2, "vec"), "");
  EXPECT_NE(tk::expect_ulp(a, b, 1, "vec"), "");
}

TEST(TestkitUlp, ComplexComparatorsCheckBothComponents) {
  const CVec a = {{1.0, -1.0}, {0.5, 0.25}};
  CVec b = a;
  EXPECT_EQ(tk::expect_bits(a, b, "cvec"), "");
  b[1] = {0.5, std::nextafter(0.25, 1.0)};
  EXPECT_NE(tk::expect_bits(a, b, "cvec"), "");
  EXPECT_EQ(tk::expect_ulp(a, b, 1, "cvec"), "");
}

TEST(TestkitUlp, ExpectCloseUsesMixedTolerance) {
  const Vec a = {1000.0, 0.0};
  const Vec b = {1000.0001, 1e-12};
  // rtol covers the first entry, atol the second.
  EXPECT_EQ(tk::expect_close(a, b, 1e-11, 1e-6, "vec"), "");
  EXPECT_NE(tk::expect_close(a, b, 1e-13, 1e-9, "vec"), "");
  // NaN never passes expect_close.
  const Vec with_nan = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  EXPECT_NE(tk::expect_close(with_nan, with_nan, 1.0, 1.0, "vec"), "");
}

TEST(TestkitUlp, MatrixComparatorChecksShape) {
  rcr::num::Matrix a(2, 3, 1.0);
  rcr::num::Matrix b(3, 2, 1.0);
  EXPECT_NE(tk::expect_bits(a, b, "matrix"), "");
  rcr::num::Matrix c(2, 3, 1.0);
  EXPECT_EQ(tk::expect_bits(a, c, "matrix"), "");
  c(1, 2) = std::nextafter(1.0, 2.0);
  EXPECT_NE(tk::expect_bits(a, c, "matrix"), "");
}

}  // namespace
