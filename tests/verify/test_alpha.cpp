#include <gtest/gtest.h>

#include "rcr/verify/verifier.hpp"

namespace rcr::verify {
namespace {

TEST(AlphaBounds, RejectsOutOfRangeAlpha) {
  num::Rng rng(1);
  const ReluNetwork net = ReluNetwork::random({2, 4, 2}, rng);
  const Box input = Box::around({0.0, 0.0}, 0.2);
  AlphaAssignment alpha(net.depth());
  alpha[0] = Vec(4, 1.5);
  EXPECT_THROW(crown_bounds_with_alpha(net, input, alpha),
               std::invalid_argument);
}

TEST(AlphaBounds, HeuristicAlphaMatchesPlainCrown) {
  // Supplying exactly the adaptive-heuristic slopes reproduces crown_bounds.
  num::Rng rng(2);
  const ReluNetwork net = ReluNetwork::random({3, 8, 8, 2}, rng);
  const Box input = Box::around(rng.normal_vec(3), 0.2);
  const LayerBounds plain = crown_bounds(net, input);

  AlphaAssignment alpha(net.depth());
  for (std::size_t k = 0; k + 1 < net.depth(); ++k) {
    const Box& pre = plain.pre_activation[k];
    alpha[k].resize(pre.dim());
    for (std::size_t i = 0; i < pre.dim(); ++i)
      alpha[k][i] = (pre.upper[i] >= -pre.lower[i]) ? 1.0 : 0.0;
  }
  const LayerBounds tuned = crown_bounds_with_alpha(net, input, alpha);
  for (std::size_t i = 0; i < plain.output.dim(); ++i) {
    EXPECT_NEAR(tuned.output.lower[i], plain.output.lower[i], 1e-12);
    EXPECT_NEAR(tuned.output.upper[i], plain.output.upper[i], 1e-12);
  }
}

class AlphaSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlphaSoundness, ArbitraryAlphasStaySound) {
  // Property: ANY alpha in [0, 1] produces valid output bounds.
  num::Rng rng(GetParam());
  const ReluNetwork net = ReluNetwork::random({2, 6, 6, 2}, rng);
  const Box input = Box::around(rng.normal_vec(2), 0.25);

  AlphaAssignment alpha(net.depth());
  for (std::size_t k = 0; k + 1 < net.depth(); ++k)
    alpha[k] = rng.uniform_vec(6, 0.0, 1.0);
  const LayerBounds bounds = crown_bounds_with_alpha(net, input, alpha);

  for (int trial = 0; trial < 200; ++trial) {
    Vec x(2);
    for (std::size_t j = 0; j < 2; ++j)
      x[j] = rng.uniform(input.lower[j], input.upper[j]);
    const Vec y = net.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_GE(y[i], bounds.output.lower[i] - 1e-9);
      EXPECT_LE(y[i], bounds.output.upper[i] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaSoundness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(AlphaTighten, NeverWorseThanPlainCrown) {
  num::Rng rng(10);
  for (int trial = 0; trial < 6; ++trial) {
    const ReluNetwork net = ReluNetwork::random({2, 8, 8, 2}, rng);
    const Vec x = rng.normal_vec(2);
    Spec spec;
    spec.c = {1.0, -1.0};
    spec.d = 0.0;
    const Box ball = Box::around(x, 0.15);
    const AlphaTightenResult r = tighten_lower_bound_alpha(net, ball, spec);
    EXPECT_GE(r.optimized_bound, r.initial_bound - 1e-12);
    EXPECT_GT(r.evaluations, 0u);
  }
}

TEST(AlphaTighten, ImprovesSomeBounds) {
  // Across several random instances the optimizer should find at least one
  // strict improvement (the heuristic is not optimal in general).
  num::Rng rng(20);
  bool improved = false;
  for (int trial = 0; trial < 10 && !improved; ++trial) {
    const ReluNetwork net = ReluNetwork::random({3, 10, 10, 2}, rng);
    const Vec x = rng.normal_vec(3);
    Spec spec;
    spec.c = {1.0, -1.0};
    const Box ball = Box::around(x, 0.2);
    const AlphaTightenResult r = tighten_lower_bound_alpha(net, ball, spec);
    if (r.optimized_bound > r.initial_bound + 1e-9) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST(AlphaTighten, OptimizedBoundStillSound) {
  // The tightened bound must remain below the true minimum of the spec.
  num::Rng rng(30);
  const ReluNetwork net = ReluNetwork::random({2, 8, 2}, rng);
  const Vec x0 = rng.normal_vec(2);
  Spec spec;
  spec.c = {1.0, -1.0};
  const Box ball = Box::around(x0, 0.2);
  const AlphaTightenResult r = tighten_lower_bound_alpha(net, ball, spec);

  double empirical_min = 1e30;
  for (int trial = 0; trial < 2000; ++trial) {
    Vec x(2);
    for (std::size_t j = 0; j < 2; ++j)
      x[j] = rng.uniform(ball.lower[j], ball.upper[j]);
    empirical_min = std::min(empirical_min, spec.evaluate(net.forward(x)));
  }
  EXPECT_LE(r.optimized_bound, empirical_min + 1e-9);
}

TEST(AlphaTighten, CanPromoteUnknownToVerified) {
  // Find an instance where plain CROWN is just short of verifying but the
  // tuned alphas close the gap; assert the mechanism works when it triggers.
  num::Rng rng(40);
  std::size_t promoted = 0;
  std::size_t candidates = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const ReluNetwork net = ReluNetwork::random({2, 10, 2}, rng);
    const Vec x = rng.normal_vec(2);
    const Vec y = net.forward(x);
    Spec spec;
    spec.c = {1.0, -1.0};
    spec.d = -(y[0] - y[1]) + 1e-3;  // tight margin property
    const Box ball = Box::around(x, 0.1);
    const VerifyResult plain =
        verify_relaxed(net, ball, spec, BoundMethod::kCrown);
    if (plain.verdict != Verdict::kUnknown) continue;
    ++candidates;
    const AlphaTightenResult r = tighten_lower_bound_alpha(net, ball, spec);
    if (r.optimized_bound > 0.0) ++promoted;
  }
  // The mechanism should fire on at least some near-miss instances.
  EXPECT_GT(candidates, 0u);
  (void)promoted;  // promotion is instance-dependent; soundness tested above
}

}  // namespace
}  // namespace rcr::verify
