#include "rcr/verify/attack.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/numerics/approx.hpp"
#include "rcr/verify/certified.hpp"
#include "rcr/verify/verifier.hpp"

namespace rcr::verify {
namespace {

TEST(MarginGradient, LabelOutOfRangeThrows) {
  num::Rng rng(1);
  const ReluNetwork net = ReluNetwork::random({2, 4, 3}, rng);
  EXPECT_THROW(margin_input_gradient(net, {0.0, 0.0}, 5),
               std::invalid_argument);
  EXPECT_THROW(pgd_attack(net, {0.0, 0.0}, 0.1, 5), std::invalid_argument);
}

TEST(MarginGradient, MatchesNumericalGradient) {
  num::Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    const ReluNetwork net = ReluNetwork::random({3, 8, 8, 3}, rng);
    const Vec x = rng.normal_vec(3);
    const Vec y = net.forward(x);
    std::size_t label = 0;
    for (std::size_t k = 1; k < 3; ++k)
      if (y[k] > y[label]) label = k;

    const Vec analytic = margin_input_gradient(net, x, label);
    const auto margin = [&](const Vec& p) {
      const Vec out = net.forward(p);
      double best_other = -1e300;
      for (std::size_t k = 0; k < out.size(); ++k)
        if (k != label) best_other = std::max(best_other, out[k]);
      return out[label] - best_other;
    };
    const Vec numeric = num::numerical_gradient(margin, x, 1e-7);
    EXPECT_TRUE(num::approx_equal(analytic, numeric, 1e-4)) << "trial " << trial;
  }
}

TEST(PgdAttack, AdversarialExampleStaysInBallAndFlips) {
  // A tight-margin point must be attackable.
  ReluNetwork net;
  AffineLayer l1;
  l1.w = {{1.0, 0.0}, {-1.0, 0.0}};
  l1.b = {5.0, 5.0};
  AffineLayer l2;
  l2.w = {{1.0, 0.0}, {0.0, 1.0}};
  l2.b = {-5.0, -5.0};
  net.layers = {l1, l2};
  // Logits (x0, -x0): label 0 iff x0 > 0.  Margin at x0 = 0.1 is 0.2.
  const Vec x = {0.1, 0.0};
  const AttackResult r = pgd_attack(net, x, 0.5, 0);
  ASSERT_TRUE(r.success);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_LE(std::abs(r.adversarial[j] - x[j]), 0.5 + 1e-12);
  }
  const Vec y = net.forward(r.adversarial);
  EXPECT_LT(y[0], y[1]);  // genuinely flipped
}

TEST(PgdAttack, CannotFlipCertifiedPoints) {
  // Soundness bracket: exact-verified robust points survive PGD.
  num::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const ReluNetwork net = ReluNetwork::random({2, 6, 3}, rng);
    const Vec x = rng.normal_vec(2);
    const Vec y = net.forward(x);
    std::size_t label = 0;
    for (std::size_t k = 1; k < 3; ++k)
      if (y[k] > y[label]) label = k;
    const double eps = 0.05;
    const RobustnessResult exact =
        certify_classification_exact(net, x, eps, label);
    if (exact.verdict != Verdict::kVerified) continue;
    const AttackResult attack = pgd_attack(net, x, eps, label);
    EXPECT_FALSE(attack.success) << "trial " << trial;
  }
}

TEST(PgdAttack, FindsWitnessWhereExactFalsifies) {
  // On points the exact verifier falsifies, PGD usually finds the flip too
  // (it is a strong first-order attack on these tiny nets).
  num::Rng rng(4);
  std::size_t falsified = 0;
  std::size_t attacked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const ReluNetwork net = ReluNetwork::random({2, 6, 3}, rng);
    const Vec x = rng.normal_vec(2);
    const Vec y = net.forward(x);
    std::size_t label = 0;
    for (std::size_t k = 1; k < 3; ++k)
      if (y[k] > y[label]) label = k;
    const double eps = 0.3;
    const RobustnessResult exact =
        certify_classification_exact(net, x, eps, label);
    if (exact.verdict != Verdict::kFalsified) continue;
    ++falsified;
    PgdOptions opts;
    opts.restarts = 8;
    opts.steps = 80;
    if (pgd_attack(net, x, eps, label, opts).success) ++attacked;
  }
  ASSERT_GT(falsified, 0u);
  EXPECT_GE(attacked * 10, falsified * 7);  // >= 70% attack success
}

TEST(AdversarialAccuracy, BracketsCertifiedAccuracy) {
  // certified(CROWN) <= empirical robust accuracy (PGD survivors).
  num::Rng rng(5);
  const auto train = make_blob_dataset(3, 25, 1.0, 0.15, rng);
  CertifiedTrainer trainer({2, 10, 3}, 6);
  CertifiedTrainConfig cfg;
  cfg.epochs = 80;
  cfg.epsilon = 0.12;
  trainer.train(train, train, cfg);

  std::vector<LabeledInput> points;
  for (const auto& p : train) points.push_back({p.x, p.label});

  const double eps = 0.2;
  const double certified =
      trainer.certified_accuracy(train, eps, BoundMethod::kCrown);
  const double empirical =
      adversarial_accuracy(trainer.network(), points, eps);
  EXPECT_LE(certified, empirical + 1e-12);
}

TEST(AdversarialAccuracy, DecreasesWithEps) {
  num::Rng rng(7);
  const auto train = make_blob_dataset(3, 20, 1.0, 0.15, rng);
  CertifiedTrainer trainer({2, 10, 3}, 8);
  CertifiedTrainConfig cfg;
  cfg.epochs = 60;
  trainer.train(train, train, cfg);
  std::vector<LabeledInput> points;
  for (const auto& p : train) points.push_back({p.x, p.label});

  const double small = adversarial_accuracy(trainer.network(), points, 0.05);
  const double large = adversarial_accuracy(trainer.network(), points, 0.6);
  EXPECT_GE(small, large);
}

TEST(AdversarialAccuracy, EmptySetIsZero) {
  num::Rng rng(9);
  const ReluNetwork net = ReluNetwork::random({2, 4, 2}, rng);
  EXPECT_DOUBLE_EQ(adversarial_accuracy(net, {}, 0.1), 0.0);
}

}  // namespace
}  // namespace rcr::verify
