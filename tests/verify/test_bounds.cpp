#include "rcr/verify/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::verify {
namespace {

TEST(Box, CenterRadiusAndValidation) {
  Box b;
  b.lower = {0.0, -2.0};
  b.upper = {1.0, 2.0};
  EXPECT_NO_THROW(b.validate());
  EXPECT_TRUE(num::approx_equal(b.center(), {0.5, 0.0}, 1e-15));
  EXPECT_TRUE(num::approx_equal(b.radius(), {0.5, 2.0}, 1e-15));
  EXPECT_DOUBLE_EQ(b.max_width(), 4.0);
  std::swap(b.lower, b.upper);
  EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(Box, AroundBuildsEpsBall) {
  const Box b = Box::around({1.0, -1.0}, 0.25);
  EXPECT_DOUBLE_EQ(b.lower[0], 0.75);
  EXPECT_DOUBLE_EQ(b.upper[1], -0.75);
}

TEST(ReluEnvelope, StableNeuronsAreExact) {
  const ReluEnvelope active = relu_envelope(0.5, 2.0);
  EXPECT_DOUBLE_EQ(active.upper_slope, 1.0);
  EXPECT_DOUBLE_EQ(active.max_gap, 0.0);
  const ReluEnvelope inactive = relu_envelope(-2.0, -0.5);
  EXPECT_DOUBLE_EQ(inactive.upper_slope, 0.0);
  EXPECT_DOUBLE_EQ(inactive.max_gap, 0.0);
}

TEST(ReluEnvelope, UnstableChordIsTightOverEstimator) {
  const double l = -1.0;
  const double u = 3.0;
  const ReluEnvelope e = relu_envelope(l, u);
  // Chord touches relu at both endpoints.
  EXPECT_NEAR(e.upper_slope * l + e.upper_intercept, 0.0, 1e-12);
  EXPECT_NEAR(e.upper_slope * u + e.upper_intercept, u, 1e-12);
  // Over-estimates everywhere between.
  for (double z = l; z <= u; z += 0.1)
    EXPECT_GE(e.upper_slope * z + e.upper_intercept, std::max(0.0, z) - 1e-12);
  // Gap is the intercept (attained at z = 0).
  EXPECT_NEAR(e.max_gap, e.upper_intercept, 1e-12);
}

TEST(ReluEnvelope, GapGrowsWithIntervalWidth) {
  const double g1 = relu_envelope(-1.0, 1.0).max_gap;
  const double g2 = relu_envelope(-2.0, 2.0).max_gap;
  const double g4 = relu_envelope(-4.0, 4.0).max_gap;
  EXPECT_LT(g1, g2);
  EXPECT_LT(g2, g4);
}

TEST(ReluEnvelope, RejectsInvertedInterval) {
  EXPECT_THROW(relu_envelope(1.0, -1.0), std::invalid_argument);
}

class BoundSoundness
    : public ::testing::TestWithParam<std::tuple<BoundMethod, std::uint64_t>> {
};

TEST_P(BoundSoundness, OutputsOfSampledInputsInsideBounds) {
  // Property test: for random networks and random boxes, every concrete
  // forward pass lands inside the computed bounds -- at every layer.
  const auto [method, seed] = GetParam();
  num::Rng rng(seed);
  const ReluNetwork net = ReluNetwork::random({3, 8, 6, 2}, rng);
  const Vec center = rng.normal_vec(3);
  const Box input = Box::around(center, 0.3);
  const LayerBounds bounds = compute_bounds(net, input, method);

  for (int trial = 0; trial < 200; ++trial) {
    Vec x(3);
    for (std::size_t j = 0; j < 3; ++j)
      x[j] = rng.uniform(input.lower[j], input.upper[j]);
    const auto pre = net.pre_activations(x);
    for (std::size_t k = 0; k < pre.size(); ++k) {
      for (std::size_t i = 0; i < pre[k].size(); ++i) {
        EXPECT_GE(pre[k][i], bounds.pre_activation[k].lower[i] - 1e-9)
            << "layer " << k << " neuron " << i;
        EXPECT_LE(pre[k][i], bounds.pre_activation[k].upper[i] + 1e-9)
            << "layer " << k << " neuron " << i;
      }
    }
    const Vec y = net.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_GE(y[i], bounds.output.lower[i] - 1e-9);
      EXPECT_LE(y[i], bounds.output.upper[i] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSeeds, BoundSoundness,
    ::testing::Combine(::testing::Values(BoundMethod::kIbp, BoundMethod::kCrown),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

class CrownTighter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrownTighter, CrownNeverLooserThanIbp) {
  // The E14/E8 tightening property: CROWN's per-layer widths are bounded by
  // IBP's.
  num::Rng rng(GetParam());
  const ReluNetwork net = ReluNetwork::random({4, 10, 10, 3}, rng);
  const Box input = Box::around(rng.normal_vec(4), 0.2);
  const LayerBounds ibp = ibp_bounds(net, input);
  const LayerBounds crown = crown_bounds(net, input);
  for (std::size_t k = 0; k < net.depth(); ++k) {
    for (std::size_t i = 0; i < ibp.pre_activation[k].dim(); ++i) {
      EXPECT_GE(crown.pre_activation[k].lower[i],
                ibp.pre_activation[k].lower[i] - 1e-9);
      EXPECT_LE(crown.pre_activation[k].upper[i],
                ibp.pre_activation[k].upper[i] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrownTighter,
                         ::testing::Values(10u, 11u, 12u, 13u, 14u, 15u));

TEST(Bounds, FirstLayerIsExactForBothMethods) {
  // No ReLU precedes layer 0: both methods give the exact affine image box.
  num::Rng rng(20);
  const ReluNetwork net = ReluNetwork::random({3, 5, 2}, rng);
  const Box input = Box::around(rng.normal_vec(3), 0.5);
  const LayerBounds ibp = ibp_bounds(net, input);
  const LayerBounds crown = crown_bounds(net, input);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(ibp.pre_activation[0].lower[i],
                crown.pre_activation[0].lower[i], 1e-9);
    EXPECT_NEAR(ibp.pre_activation[0].upper[i],
                crown.pre_activation[0].upper[i], 1e-9);
  }
}

TEST(Bounds, DeeperNetworksWidenIbpFaster) {
  // IBP's wrapping effect compounds with depth; CROWN resists it.  Measure
  // the output-layer width ratio on a deep narrow net.
  num::Rng rng(21);
  const ReluNetwork net = ReluNetwork::random({2, 8, 8, 8, 8, 2}, rng);
  const Box input = Box::around(rng.normal_vec(2), 0.1);
  const TightnessReport report = tightness_report(net, input);
  const std::size_t last = net.depth() - 1;
  EXPECT_GT(report.ibp_mean_width[last], report.crown_mean_width[last]);
}

TEST(Bounds, ZeroWidthBoxGivesPointEvaluation) {
  num::Rng rng(22);
  const ReluNetwork net = ReluNetwork::random({3, 6, 2}, rng);
  const Vec x = rng.normal_vec(3);
  const Box point = Box::around(x, 0.0);
  const Vec y = net.forward(x);
  for (BoundMethod m : {BoundMethod::kIbp, BoundMethod::kCrown}) {
    const LayerBounds b = compute_bounds(net, point, m);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(b.output.lower[i], y[i], 1e-9);
      EXPECT_NEAR(b.output.upper[i], y[i], 1e-9);
    }
  }
}

TEST(Bounds, PhaseClippingTightensCrown) {
  num::Rng rng(23);
  const ReluNetwork net = ReluNetwork::random({2, 6, 2}, rng);
  const Box input = Box::around(rng.normal_vec(2), 0.5);
  const LayerBounds free = crown_bounds(net, input);

  // Force the most unstable neuron of layer 0 inactive.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < 6; ++i)
    if (free.pre_activation[0].lower[i] < 0.0 &&
        free.pre_activation[0].upper[i] > 0.0)
      pick = i;
  PhaseAssignment phases(net.depth());
  phases[0].assign(6, 0);
  phases[0][pick] = -1;
  const LayerBounds clipped = crown_bounds_with_phases(net, input, phases);
  // Output interval cannot widen under an extra constraint.
  const double w_free = free.output.upper[0] - free.output.lower[0];
  const double w_clip = clipped.output.upper[0] - clipped.output.lower[0];
  EXPECT_LE(w_clip, w_free + 1e-9);
}

TEST(Bounds, UnstableCountsDecreaseWithTighterMethod) {
  num::Rng rng(24);
  const ReluNetwork net = ReluNetwork::random({3, 12, 12, 2}, rng);
  const Box input = Box::around(rng.normal_vec(3), 0.15);
  const TightnessReport report = tightness_report(net, input);
  for (std::size_t k = 0; k < net.depth(); ++k)
    EXPECT_LE(report.crown_unstable[k], report.ibp_unstable[k]);
}

TEST(Bounds, MethodNames) {
  EXPECT_EQ(to_string(BoundMethod::kIbp), "ibp");
  EXPECT_EQ(to_string(BoundMethod::kCrown), "crown");
}

}  // namespace
}  // namespace rcr::verify
