#include "rcr/verify/certified.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcr/verify/verifier.hpp"

namespace rcr::verify {
namespace {

TEST(BlobDataset, BalancedAndSeparated) {
  num::Rng rng(1);
  const auto data = make_blob_dataset(3, 10, 2.0, 0.1, rng);
  ASSERT_EQ(data.size(), 30u);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& p : data) {
    ASSERT_LT(p.label, 3u);
    ++counts[p.label];
    EXPECT_EQ(p.x.size(), 2u);
  }
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[2], 10u);
}

TEST(CertifiedTrainer, StandardTrainingReachesHighCleanAccuracy) {
  num::Rng rng(2);
  const auto train = make_blob_dataset(3, 30, 1.0, 0.15, rng);
  const auto test = make_blob_dataset(3, 15, 1.0, 0.15, rng);
  CertifiedTrainer trainer({2, 12, 12, 3}, 7);
  CertifiedTrainConfig cfg;
  cfg.epochs = 80;
  cfg.epsilon = 0.1;
  const auto report = trainer.train_standard(train, test, cfg);
  EXPECT_GT(report.clean_accuracy, 0.9);
  EXPECT_FALSE(report.loss_history.empty());
  EXPECT_LT(report.loss_history.back(), report.loss_history.front());
}

TEST(CertifiedTrainer, IbpGradientsMatchNumericalLoss) {
  // Spot-check the hand-written IBP backward pass: train one epoch with a
  // tiny learning rate and confirm the loss decreases (a broken gradient
  // would wander).  Deeper check: compare one-step loss delta against the
  // gradient-norm prediction.
  num::Rng rng(3);
  const auto data = make_blob_dataset(3, 20, 1.0, 0.2, rng);
  CertifiedTrainer trainer({2, 8, 3}, 9);
  CertifiedTrainConfig cfg;
  cfg.epochs = 60;
  cfg.kappa = 0.0;  // pure robust loss exercises the interval backward
  cfg.epsilon = 0.05;
  cfg.learning_rate = 2e-2;
  const auto report = trainer.train(data, data, cfg);
  EXPECT_LT(report.loss_history.back(), report.loss_history.front());
}

TEST(CertifiedTrainer, CertifiedTrainingBeatsStandardOnCertifiedAccuracy) {
  // The convex-relaxation adversarial training claim (Sec. II-B-2): training
  // against the relaxation's worst case buys certified robustness.
  num::Rng rng(4);
  const auto train = make_blob_dataset(3, 30, 1.0, 0.15, rng);
  const auto test = make_blob_dataset(3, 15, 1.0, 0.15, rng);

  CertifiedTrainConfig cfg;
  cfg.epochs = 120;
  cfg.epsilon = 0.15;
  cfg.kappa = 0.3;

  CertifiedTrainer robust({2, 12, 12, 3}, 11);
  const auto robust_report = robust.train(train, test, cfg);

  CertifiedTrainer standard({2, 12, 12, 3}, 11);
  const auto standard_report = standard.train_standard(train, test, cfg);

  EXPECT_GE(robust_report.certified_accuracy_ibp,
            standard_report.certified_accuracy_ibp);
  EXPECT_GT(robust_report.certified_accuracy_ibp, 0.5);
}

TEST(CertifiedTrainer, CrownCertifiesAtLeastAsMuchAsIbp) {
  num::Rng rng(5);
  const auto train = make_blob_dataset(3, 25, 1.0, 0.15, rng);
  const auto test = make_blob_dataset(3, 12, 1.0, 0.15, rng);
  CertifiedTrainer trainer({2, 10, 3}, 13);
  CertifiedTrainConfig cfg;
  cfg.epochs = 80;
  cfg.epsilon = 0.12;
  const auto report = trainer.train(train, test, cfg);
  EXPECT_GE(report.certified_accuracy_crown, report.certified_accuracy_ibp);
}

TEST(CertifiedTrainer, CertifiedAccuracyDecreasesWithEpsilon) {
  num::Rng rng(6);
  const auto train = make_blob_dataset(3, 25, 1.0, 0.15, rng);
  const auto test = make_blob_dataset(3, 12, 1.0, 0.15, rng);
  CertifiedTrainer trainer({2, 10, 3}, 15);
  CertifiedTrainConfig cfg;
  cfg.epochs = 80;
  cfg.epsilon = 0.1;
  trainer.train(train, test, cfg);
  const double at_small =
      trainer.certified_accuracy(test, 0.05, BoundMethod::kCrown);
  const double at_large =
      trainer.certified_accuracy(test, 0.5, BoundMethod::kCrown);
  EXPECT_GE(at_small, at_large);
}

TEST(CertifiedTrainer, EmptyTrainingSetThrows) {
  CertifiedTrainer trainer({2, 4, 2}, 1);
  EXPECT_THROW(trainer.train({}, {}, CertifiedTrainConfig{}),
               std::invalid_argument);
}

TEST(CertifiedTrainer, AccuracyHelpersOnEmptySets) {
  CertifiedTrainer trainer({2, 4, 2}, 1);
  EXPECT_DOUBLE_EQ(trainer.accuracy({}), 0.0);
  EXPECT_DOUBLE_EQ(trainer.certified_accuracy({}, 0.1, BoundMethod::kIbp),
                   0.0);
}

}  // namespace
}  // namespace rcr::verify
