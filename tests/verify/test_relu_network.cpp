#include "rcr/verify/relu_network.hpp"

#include <gtest/gtest.h>

#include "rcr/nn/layers_basic.hpp"

namespace rcr::verify {
namespace {

TEST(ReluNetwork, ValidationCatchesChainingErrors) {
  ReluNetwork net;
  EXPECT_THROW(net.validate(), std::invalid_argument);  // empty
  AffineLayer a;
  a.w = Matrix(3, 2);
  a.b = Vec(2);  // wrong bias length
  net.layers.push_back(a);
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

TEST(ReluNetwork, ForwardKnownValues) {
  // One hidden layer: y = W2 * relu(W1 x + b1) + b2.
  ReluNetwork net;
  AffineLayer l1;
  l1.w = {{1.0, 0.0}, {0.0, -1.0}};
  l1.b = {0.0, 0.0};
  AffineLayer l2;
  l2.w = {{1.0, 1.0}};
  l2.b = {0.5};
  net.layers = {l1, l2};
  // x = (2, 3): hidden = relu(2, -3) = (2, 0) -> y = 2.5.
  EXPECT_NEAR(net.forward({2.0, 3.0})[0], 2.5, 1e-12);
  // x = (-1, -4): hidden = relu(-1, 4) = (0, 4) -> y = 4.5.
  EXPECT_NEAR(net.forward({-1.0, -4.0})[0], 4.5, 1e-12);
}

TEST(ReluNetwork, PreActivationsMatchForward) {
  num::Rng rng(1);
  const ReluNetwork net = ReluNetwork::random({3, 5, 4, 2}, rng);
  const Vec x = rng.normal_vec(3);
  const auto pre = net.pre_activations(x);
  ASSERT_EQ(pre.size(), 3u);
  // Final pre-activation equals the output (no ReLU on the last layer).
  EXPECT_TRUE(num::approx_equal(pre.back(), net.forward(x), 1e-12));
}

TEST(ReluNetwork, RandomRespectsWidths) {
  num::Rng rng(2);
  const ReluNetwork net = ReluNetwork::random({4, 8, 3}, rng);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 3u);
  EXPECT_EQ(net.depth(), 2u);
  EXPECT_NO_THROW(net.validate());
  EXPECT_THROW(ReluNetwork::random({4}, rng), std::invalid_argument);
}

TEST(ReluNetwork, FromSequentialMatchesForward) {
  num::Rng rng(3);
  nn::Sequential seq;
  seq.emplace<nn::Dense>(3, 6, rng);
  seq.emplace<nn::Relu>();
  seq.emplace<nn::Dense>(6, 2, rng);
  ReluNetwork net = ReluNetwork::from_sequential(seq);

  num::Rng xr(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = xr.normal_vec(3);
    nn::Tensor xt({1, 3});
    for (std::size_t i = 0; i < 3; ++i) xt.at2(0, i) = x[i];
    const nn::Tensor y_seq = seq.forward(xt, false);
    const Vec y_net = net.forward(x);
    for (std::size_t k = 0; k < 2; ++k)
      EXPECT_NEAR(y_net[k], y_seq.at2(0, k), 1e-12);
  }
}

TEST(ReluNetwork, FromSequentialRejectsUnsupportedLayers) {
  num::Rng rng(5);
  nn::Sequential seq;
  seq.emplace<nn::Dense>(2, 2, rng);
  seq.emplace<nn::Sigmoid>();
  EXPECT_THROW(ReluNetwork::from_sequential(seq), std::invalid_argument);
}

}  // namespace
}  // namespace rcr::verify
