#include "rcr/verify/verifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcr::verify {
namespace {

// A hand-built network computing y = [x0 + x1, x0 - x1] (no hidden ReLU
// effect since weights route through an identity-like hidden layer).
ReluNetwork linear_like() {
  ReluNetwork net;
  AffineLayer l1;
  // Hidden: (x0+x1+10, x0-x1+10) -- +10 keeps both neurons always active on
  // small boxes, making the network affine there.
  l1.w = {{1.0, 1.0}, {1.0, -1.0}};
  l1.b = {10.0, 10.0};
  AffineLayer l2;
  l2.w = {{1.0, 0.0}, {0.0, 1.0}};
  l2.b = {-10.0, -10.0};
  net.layers = {l1, l2};
  return net;
}

TEST(VerifyRelaxed, VerifiesTrueLinearProperty) {
  // On the box around (1, 0) with eps 0.1: y0 = x0 + x1 in [0.9, 1.1] > 0.
  const ReluNetwork net = linear_like();
  Spec spec;
  spec.c = {1.0, 0.0};
  spec.d = 0.0;
  const Box ball = Box::around({1.0, 0.0}, 0.1);
  for (BoundMethod m : {BoundMethod::kIbp, BoundMethod::kCrown}) {
    const VerifyResult r = verify_relaxed(net, ball, spec, m);
    EXPECT_EQ(r.verdict, Verdict::kVerified) << to_string(m);
    EXPECT_GT(r.lower_bound, 0.0);
  }
}

TEST(VerifyRelaxed, FalsifiesWhenCenterViolates) {
  const ReluNetwork net = linear_like();
  Spec spec;
  spec.c = {1.0, 0.0};
  spec.d = 0.0;
  const Box ball = Box::around({-1.0, 0.0}, 0.1);  // y0 ~ -1 < 0
  const VerifyResult r =
      verify_relaxed(net, ball, spec, BoundMethod::kCrown);
  EXPECT_EQ(r.verdict, Verdict::kFalsified);
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(VerifyRelaxed, SpecDimensionMismatchThrows) {
  const ReluNetwork net = linear_like();
  Spec spec;
  spec.c = {1.0};  // wrong size
  EXPECT_THROW(
      verify_relaxed(net, Box::around({0.0, 0.0}, 0.1), spec,
                     BoundMethod::kIbp),
      std::invalid_argument);
}

TEST(VerifyExact, AgreesWithRelaxedOnEasyCase) {
  const ReluNetwork net = linear_like();
  Spec spec;
  spec.c = {1.0, 0.0};
  const Box ball = Box::around({1.0, 0.0}, 0.1);
  const VerifyResult r = verify_exact(net, ball, spec);
  EXPECT_EQ(r.verdict, Verdict::kVerified);
}

TEST(VerifyExact, FindsCounterexampleInsideBox) {
  // y0 = x0 + x1 over box around (0.05, 0) with eps 0.2: sign changes.
  const ReluNetwork net = linear_like();
  Spec spec;
  spec.c = {1.0, 0.0};
  const Box ball = Box::around({0.05, 0.0}, 0.2);
  const VerifyResult r = verify_exact(net, ball, spec);
  EXPECT_EQ(r.verdict, Verdict::kFalsified);
  ASSERT_EQ(r.counterexample.size(), 2u);
  EXPECT_LT(spec.evaluate(net.forward(r.counterexample)), 0.0);
}

class ExactVsSampling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsSampling, ExactVerdictConsistentWithDenseSampling) {
  // Property: when the exact verifier says "verified", no sampled point
  // violates; when "falsified", the counterexample genuinely violates.
  num::Rng rng(GetParam());
  const ReluNetwork net = ReluNetwork::random({2, 6, 6, 2}, rng);
  const Vec x = rng.normal_vec(2);
  Spec spec;
  spec.c = {1.0, -1.0};
  const Vec y = net.forward(x);
  spec.d = -(y[0] - y[1]) + 0.05;  // margin property around the point

  const Box ball = Box::around(x, 0.05);
  ExactOptions opts;
  opts.max_branches = 5000;
  const VerifyResult r = verify_exact(net, ball, spec, opts);

  if (r.verdict == Verdict::kVerified) {
    for (int trial = 0; trial < 500; ++trial) {
      Vec p(2);
      for (std::size_t j = 0; j < 2; ++j)
        p[j] = rng.uniform(ball.lower[j], ball.upper[j]);
      EXPECT_GE(spec.evaluate(net.forward(p)), -1e-9);
    }
  } else if (r.verdict == Verdict::kFalsified) {
    EXPECT_LT(spec.evaluate(net.forward(r.counterexample)), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsSampling,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(VerifyExact, ReluSplitUsesFewerBranchesThanInputOnly) {
  // ReLU splitting should generally resolve unstable neurons faster than
  // blind input bisection on a net with few unstable neurons.
  num::Rng rng(50);
  const ReluNetwork net = ReluNetwork::random({2, 8, 2}, rng);
  const Vec x = rng.normal_vec(2);
  Spec spec;
  spec.c = {1.0, -1.0};
  const Vec y = net.forward(x);
  spec.d = -(y[0] - y[1]) + 0.02;
  const Box ball = Box::around(x, 0.08);

  ExactOptions with_relu;
  with_relu.split_relu = true;
  ExactOptions without;
  without.split_relu = false;
  const VerifyResult a = verify_exact(net, ball, spec, with_relu);
  const VerifyResult b = verify_exact(net, ball, spec, without);
  EXPECT_EQ(a.verdict, b.verdict);  // same answer either way
}

TEST(VerifyExact, BudgetExhaustionReturnsUnknown) {
  num::Rng rng(51);
  const ReluNetwork net = ReluNetwork::random({3, 16, 16, 2}, rng);
  Spec spec;
  spec.c = {1.0, -1.0};
  spec.d = 0.0;
  const Box huge = Box::around(Vec(3, 0.0), 5.0);
  ExactOptions opts;
  opts.max_branches = 3;
  const VerifyResult r = verify_exact(net, huge, spec, opts);
  // With 3 branches on a huge box, either an early counterexample or
  // unknown; never a (wrong) verified.
  EXPECT_NE(r.verdict, Verdict::kVerified);
}

TEST(CertifyClassification, RobustPointCertifiedAndMarginPositive) {
  // Build a linear separator net: class 0 iff x0 > 0 with wide margin.
  ReluNetwork net;
  AffineLayer l1;
  l1.w = {{1.0, 0.0}, {-1.0, 0.0}};
  l1.b = {5.0, 5.0};  // keep ReLUs active near the data
  AffineLayer l2;
  l2.w = {{1.0, 0.0}, {0.0, 1.0}};
  l2.b = {-5.0, -5.0};
  net.layers = {l1, l2};

  const Vec x = {2.0, 0.0};  // logits (2, -2): label 0, margin 4
  const RobustnessResult relaxed =
      certify_classification(net, x, 0.5, 0, BoundMethod::kCrown);
  EXPECT_EQ(relaxed.verdict, Verdict::kVerified);
  EXPECT_GT(relaxed.worst_margin_bound, 0.0);

  const RobustnessResult exact = certify_classification_exact(net, x, 0.5, 0);
  EXPECT_EQ(exact.verdict, Verdict::kVerified);
}

TEST(CertifyClassification, NonRobustPointFalsifiedByExact) {
  ReluNetwork net;
  AffineLayer l1;
  l1.w = {{1.0, 0.0}, {-1.0, 0.0}};
  l1.b = {5.0, 5.0};
  AffineLayer l2;
  l2.w = {{1.0, 0.0}, {0.0, 1.0}};
  l2.b = {-5.0, -5.0};
  net.layers = {l1, l2};

  const Vec x = {0.1, 0.0};  // margin only 0.2, eps 0.5 crosses the boundary
  const RobustnessResult exact = certify_classification_exact(net, x, 0.5, 0);
  EXPECT_EQ(exact.verdict, Verdict::kFalsified);
}

TEST(CertifyClassification, RelaxedNeverContradictsExact) {
  // Soundness property of the paper's hybrid verification story: a relaxed
  // "verified" must be confirmed by the exact verifier.
  num::Rng rng(52);
  for (int trial = 0; trial < 10; ++trial) {
    const ReluNetwork net = ReluNetwork::random({2, 6, 3}, rng);
    const Vec x = rng.normal_vec(2);
    const Vec y = net.forward(x);
    std::size_t label = 0;
    for (std::size_t k = 1; k < 3; ++k)
      if (y[k] > y[label]) label = k;
    const RobustnessResult relaxed =
        certify_classification(net, x, 0.05, label, BoundMethod::kCrown);
    if (relaxed.verdict == Verdict::kVerified) {
      const RobustnessResult exact =
          certify_classification_exact(net, x, 0.05, label);
      EXPECT_EQ(exact.verdict, Verdict::kVerified);
    }
  }
}

TEST(VerdictNames, Distinct) {
  EXPECT_EQ(to_string(Verdict::kVerified), "verified");
  EXPECT_EQ(to_string(Verdict::kFalsified), "falsified");
  EXPECT_EQ(to_string(Verdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace rcr::verify
